# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/psdf_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/m2t_test[1]_include.cmake")
include("/root/repo/build/tests/emu_test[1]_include.cmake")
include("/root/repo/build/tests/emu_property_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/emu_trace_test[1]_include.cmake")
include("/root/repo/build/tests/analytic_test[1]_include.cmake")
include("/root/repo/build/tests/batch_test[1]_include.cmake")
include("/root/repo/build/tests/xml_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/svg_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_property_test[1]_include.cmake")
include("/root/repo/build/tests/stage_flow_test[1]_include.cmake")
include("/root/repo/build/tests/statistics_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/pipelined_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_diff_test[1]_include.cmake")
