# Empty compiler generated dependencies file for m2t_test.
# This may be replaced when dependencies are built.
