file(REMOVE_RECURSE
  "CMakeFiles/m2t_test.dir/m2t_test.cpp.o"
  "CMakeFiles/m2t_test.dir/m2t_test.cpp.o.d"
  "m2t_test"
  "m2t_test.pdb"
  "m2t_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2t_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
