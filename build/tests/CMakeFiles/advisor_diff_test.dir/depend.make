# Empty dependencies file for advisor_diff_test.
# This may be replaced when dependencies are built.
