file(REMOVE_RECURSE
  "CMakeFiles/advisor_diff_test.dir/advisor_diff_test.cpp.o"
  "CMakeFiles/advisor_diff_test.dir/advisor_diff_test.cpp.o.d"
  "advisor_diff_test"
  "advisor_diff_test.pdb"
  "advisor_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
