# Empty compiler generated dependencies file for stage_flow_test.
# This may be replaced when dependencies are built.
