file(REMOVE_RECURSE
  "CMakeFiles/stage_flow_test.dir/stage_flow_test.cpp.o"
  "CMakeFiles/stage_flow_test.dir/stage_flow_test.cpp.o.d"
  "stage_flow_test"
  "stage_flow_test.pdb"
  "stage_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
