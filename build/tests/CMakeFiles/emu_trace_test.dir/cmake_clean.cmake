file(REMOVE_RECURSE
  "CMakeFiles/emu_trace_test.dir/emu_trace_test.cpp.o"
  "CMakeFiles/emu_trace_test.dir/emu_trace_test.cpp.o.d"
  "emu_trace_test"
  "emu_trace_test.pdb"
  "emu_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emu_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
