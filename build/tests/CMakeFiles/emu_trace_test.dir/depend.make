# Empty dependencies file for emu_trace_test.
# This may be replaced when dependencies are built.
