
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/emu_property_test.cpp" "tests/CMakeFiles/emu_property_test.dir/emu_property_test.cpp.o" "gcc" "tests/CMakeFiles/emu_property_test.dir/emu_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/segbus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/segbus_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/m2t/CMakeFiles/segbus_m2t.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/segbus_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/segbus_place.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/segbus_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/psdf/CMakeFiles/segbus_psdf.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/segbus_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/segbus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
