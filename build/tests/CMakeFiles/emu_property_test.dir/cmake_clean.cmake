file(REMOVE_RECURSE
  "CMakeFiles/emu_property_test.dir/emu_property_test.cpp.o"
  "CMakeFiles/emu_property_test.dir/emu_property_test.cpp.o.d"
  "emu_property_test"
  "emu_property_test.pdb"
  "emu_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emu_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
