# Empty dependencies file for emu_property_test.
# This may be replaced when dependencies are built.
