# Empty dependencies file for xml_robustness_test.
# This may be replaced when dependencies are built.
