file(REMOVE_RECURSE
  "CMakeFiles/xml_robustness_test.dir/xml_robustness_test.cpp.o"
  "CMakeFiles/xml_robustness_test.dir/xml_robustness_test.cpp.o.d"
  "xml_robustness_test"
  "xml_robustness_test.pdb"
  "xml_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
