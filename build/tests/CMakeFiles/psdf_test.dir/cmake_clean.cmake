file(REMOVE_RECURSE
  "CMakeFiles/psdf_test.dir/psdf_test.cpp.o"
  "CMakeFiles/psdf_test.dir/psdf_test.cpp.o.d"
  "psdf_test"
  "psdf_test.pdb"
  "psdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
