# Empty compiler generated dependencies file for psdf_test.
# This may be replaced when dependencies are built.
