file(REMOVE_RECURSE
  "CMakeFiles/mp3_decoder.dir/mp3_decoder.cpp.o"
  "CMakeFiles/mp3_decoder.dir/mp3_decoder.cpp.o.d"
  "mp3_decoder"
  "mp3_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp3_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
