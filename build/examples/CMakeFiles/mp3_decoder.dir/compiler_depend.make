# Empty compiler generated dependencies file for mp3_decoder.
# This may be replaced when dependencies are built.
