file(REMOVE_RECURSE
  "CMakeFiles/package_size_study.dir/package_size_study.cpp.o"
  "CMakeFiles/package_size_study.dir/package_size_study.cpp.o.d"
  "package_size_study"
  "package_size_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/package_size_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
