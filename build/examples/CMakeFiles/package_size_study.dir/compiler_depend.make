# Empty compiler generated dependencies file for package_size_study.
# This may be replaced when dependencies are built.
