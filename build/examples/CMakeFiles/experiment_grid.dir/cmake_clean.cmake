file(REMOVE_RECURSE
  "CMakeFiles/experiment_grid.dir/experiment_grid.cpp.o"
  "CMakeFiles/experiment_grid.dir/experiment_grid.cpp.o.d"
  "experiment_grid"
  "experiment_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
