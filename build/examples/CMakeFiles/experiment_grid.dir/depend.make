# Empty dependencies file for experiment_grid.
# This may be replaced when dependencies are built.
