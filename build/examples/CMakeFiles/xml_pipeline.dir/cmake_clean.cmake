file(REMOVE_RECURSE
  "CMakeFiles/xml_pipeline.dir/xml_pipeline.cpp.o"
  "CMakeFiles/xml_pipeline.dir/xml_pipeline.cpp.o.d"
  "xml_pipeline"
  "xml_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
