# Empty dependencies file for xml_pipeline.
# This may be replaced when dependencies are built.
