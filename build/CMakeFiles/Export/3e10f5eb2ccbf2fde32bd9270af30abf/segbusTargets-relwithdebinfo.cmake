#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "segbus::segbus_support" for configuration "RelWithDebInfo"
set_property(TARGET segbus::segbus_support APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(segbus::segbus_support PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libsegbus_support.a"
  )

list(APPEND _cmake_import_check_targets segbus::segbus_support )
list(APPEND _cmake_import_check_files_for_segbus::segbus_support "${_IMPORT_PREFIX}/lib/libsegbus_support.a" )

# Import target "segbus::segbus_xml" for configuration "RelWithDebInfo"
set_property(TARGET segbus::segbus_xml APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(segbus::segbus_xml PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libsegbus_xml.a"
  )

list(APPEND _cmake_import_check_targets segbus::segbus_xml )
list(APPEND _cmake_import_check_files_for_segbus::segbus_xml "${_IMPORT_PREFIX}/lib/libsegbus_xml.a" )

# Import target "segbus::segbus_psdf" for configuration "RelWithDebInfo"
set_property(TARGET segbus::segbus_psdf APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(segbus::segbus_psdf PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libsegbus_psdf.a"
  )

list(APPEND _cmake_import_check_targets segbus::segbus_psdf )
list(APPEND _cmake_import_check_files_for_segbus::segbus_psdf "${_IMPORT_PREFIX}/lib/libsegbus_psdf.a" )

# Import target "segbus::segbus_platform" for configuration "RelWithDebInfo"
set_property(TARGET segbus::segbus_platform APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(segbus::segbus_platform PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libsegbus_platform.a"
  )

list(APPEND _cmake_import_check_targets segbus::segbus_platform )
list(APPEND _cmake_import_check_files_for_segbus::segbus_platform "${_IMPORT_PREFIX}/lib/libsegbus_platform.a" )

# Import target "segbus::segbus_place" for configuration "RelWithDebInfo"
set_property(TARGET segbus::segbus_place APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(segbus::segbus_place PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libsegbus_place.a"
  )

list(APPEND _cmake_import_check_targets segbus::segbus_place )
list(APPEND _cmake_import_check_files_for_segbus::segbus_place "${_IMPORT_PREFIX}/lib/libsegbus_place.a" )

# Import target "segbus::segbus_m2t" for configuration "RelWithDebInfo"
set_property(TARGET segbus::segbus_m2t APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(segbus::segbus_m2t PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libsegbus_m2t.a"
  )

list(APPEND _cmake_import_check_targets segbus::segbus_m2t )
list(APPEND _cmake_import_check_files_for_segbus::segbus_m2t "${_IMPORT_PREFIX}/lib/libsegbus_m2t.a" )

# Import target "segbus::segbus_emu" for configuration "RelWithDebInfo"
set_property(TARGET segbus::segbus_emu APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(segbus::segbus_emu PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libsegbus_emu.a"
  )

list(APPEND _cmake_import_check_targets segbus::segbus_emu )
list(APPEND _cmake_import_check_files_for_segbus::segbus_emu "${_IMPORT_PREFIX}/lib/libsegbus_emu.a" )

# Import target "segbus::segbus_core" for configuration "RelWithDebInfo"
set_property(TARGET segbus::segbus_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(segbus::segbus_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libsegbus_core.a"
  )

list(APPEND _cmake_import_check_targets segbus::segbus_core )
list(APPEND _cmake_import_check_files_for_segbus::segbus_core "${_IMPORT_PREFIX}/lib/libsegbus_core.a" )

# Import target "segbus::segbus_apps" for configuration "RelWithDebInfo"
set_property(TARGET segbus::segbus_apps APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(segbus::segbus_apps PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libsegbus_apps.a"
  )

list(APPEND _cmake_import_check_targets segbus::segbus_apps )
list(APPEND _cmake_import_check_files_for_segbus::segbus_apps "${_IMPORT_PREFIX}/lib/libsegbus_apps.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
