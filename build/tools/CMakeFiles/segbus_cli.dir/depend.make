# Empty dependencies file for segbus_cli.
# This may be replaced when dependencies are built.
