file(REMOVE_RECURSE
  "CMakeFiles/segbus_cli.dir/segbus_cli.cpp.o"
  "CMakeFiles/segbus_cli.dir/segbus_cli.cpp.o.d"
  "segbus_cli"
  "segbus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segbus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
