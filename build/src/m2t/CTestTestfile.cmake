# CMake generated Testfile for 
# Source directory: /root/repo/src/m2t
# Build directory: /root/repo/build/src/m2t
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
