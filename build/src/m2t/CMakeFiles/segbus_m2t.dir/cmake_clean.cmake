file(REMOVE_RECURSE
  "CMakeFiles/segbus_m2t.dir/codegen.cpp.o"
  "CMakeFiles/segbus_m2t.dir/codegen.cpp.o.d"
  "CMakeFiles/segbus_m2t.dir/template.cpp.o"
  "CMakeFiles/segbus_m2t.dir/template.cpp.o.d"
  "libsegbus_m2t.a"
  "libsegbus_m2t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segbus_m2t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
