# Empty dependencies file for segbus_m2t.
# This may be replaced when dependencies are built.
