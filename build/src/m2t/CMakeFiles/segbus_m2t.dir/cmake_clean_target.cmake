file(REMOVE_RECURSE
  "libsegbus_m2t.a"
)
