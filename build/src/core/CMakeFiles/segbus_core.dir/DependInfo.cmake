
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy.cpp" "src/core/CMakeFiles/segbus_core.dir/accuracy.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/accuracy.cpp.o.d"
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/segbus_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/analytic.cpp" "src/core/CMakeFiles/segbus_core.dir/analytic.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/analytic.cpp.o.d"
  "/root/repo/src/core/batch.cpp" "src/core/CMakeFiles/segbus_core.dir/batch.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/batch.cpp.o.d"
  "/root/repo/src/core/diff.cpp" "src/core/CMakeFiles/segbus_core.dir/diff.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/diff.cpp.o.d"
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/segbus_core.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/energy.cpp.o.d"
  "/root/repo/src/core/explore.cpp" "src/core/CMakeFiles/segbus_core.dir/explore.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/explore.cpp.o.d"
  "/root/repo/src/core/json_export.cpp" "src/core/CMakeFiles/segbus_core.dir/json_export.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/json_export.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/segbus_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/report.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/segbus_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/session.cpp.o.d"
  "/root/repo/src/core/svg_export.cpp" "src/core/CMakeFiles/segbus_core.dir/svg_export.cpp.o" "gcc" "src/core/CMakeFiles/segbus_core.dir/svg_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/segbus_support.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/segbus_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/psdf/CMakeFiles/segbus_psdf.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/segbus_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/segbus_place.dir/DependInfo.cmake"
  "/root/repo/build/src/m2t/CMakeFiles/segbus_m2t.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/segbus_emu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
