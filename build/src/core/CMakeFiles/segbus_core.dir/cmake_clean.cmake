file(REMOVE_RECURSE
  "CMakeFiles/segbus_core.dir/accuracy.cpp.o"
  "CMakeFiles/segbus_core.dir/accuracy.cpp.o.d"
  "CMakeFiles/segbus_core.dir/advisor.cpp.o"
  "CMakeFiles/segbus_core.dir/advisor.cpp.o.d"
  "CMakeFiles/segbus_core.dir/analytic.cpp.o"
  "CMakeFiles/segbus_core.dir/analytic.cpp.o.d"
  "CMakeFiles/segbus_core.dir/batch.cpp.o"
  "CMakeFiles/segbus_core.dir/batch.cpp.o.d"
  "CMakeFiles/segbus_core.dir/diff.cpp.o"
  "CMakeFiles/segbus_core.dir/diff.cpp.o.d"
  "CMakeFiles/segbus_core.dir/energy.cpp.o"
  "CMakeFiles/segbus_core.dir/energy.cpp.o.d"
  "CMakeFiles/segbus_core.dir/explore.cpp.o"
  "CMakeFiles/segbus_core.dir/explore.cpp.o.d"
  "CMakeFiles/segbus_core.dir/json_export.cpp.o"
  "CMakeFiles/segbus_core.dir/json_export.cpp.o.d"
  "CMakeFiles/segbus_core.dir/report.cpp.o"
  "CMakeFiles/segbus_core.dir/report.cpp.o.d"
  "CMakeFiles/segbus_core.dir/session.cpp.o"
  "CMakeFiles/segbus_core.dir/session.cpp.o.d"
  "CMakeFiles/segbus_core.dir/svg_export.cpp.o"
  "CMakeFiles/segbus_core.dir/svg_export.cpp.o.d"
  "libsegbus_core.a"
  "libsegbus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segbus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
