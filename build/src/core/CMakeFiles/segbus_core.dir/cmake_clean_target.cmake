file(REMOVE_RECURSE
  "libsegbus_core.a"
)
