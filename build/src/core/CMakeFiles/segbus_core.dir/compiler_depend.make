# Empty compiler generated dependencies file for segbus_core.
# This may be replaced when dependencies are built.
