# Empty compiler generated dependencies file for segbus_emu.
# This may be replaced when dependencies are built.
