file(REMOVE_RECURSE
  "libsegbus_emu.a"
)
