file(REMOVE_RECURSE
  "CMakeFiles/segbus_emu.dir/engine.cpp.o"
  "CMakeFiles/segbus_emu.dir/engine.cpp.o.d"
  "CMakeFiles/segbus_emu.dir/parallel.cpp.o"
  "CMakeFiles/segbus_emu.dir/parallel.cpp.o.d"
  "CMakeFiles/segbus_emu.dir/timing.cpp.o"
  "CMakeFiles/segbus_emu.dir/timing.cpp.o.d"
  "CMakeFiles/segbus_emu.dir/trace.cpp.o"
  "CMakeFiles/segbus_emu.dir/trace.cpp.o.d"
  "CMakeFiles/segbus_emu.dir/vcd.cpp.o"
  "CMakeFiles/segbus_emu.dir/vcd.cpp.o.d"
  "libsegbus_emu.a"
  "libsegbus_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segbus_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
