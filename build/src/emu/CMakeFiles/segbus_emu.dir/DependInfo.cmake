
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emu/engine.cpp" "src/emu/CMakeFiles/segbus_emu.dir/engine.cpp.o" "gcc" "src/emu/CMakeFiles/segbus_emu.dir/engine.cpp.o.d"
  "/root/repo/src/emu/parallel.cpp" "src/emu/CMakeFiles/segbus_emu.dir/parallel.cpp.o" "gcc" "src/emu/CMakeFiles/segbus_emu.dir/parallel.cpp.o.d"
  "/root/repo/src/emu/timing.cpp" "src/emu/CMakeFiles/segbus_emu.dir/timing.cpp.o" "gcc" "src/emu/CMakeFiles/segbus_emu.dir/timing.cpp.o.d"
  "/root/repo/src/emu/trace.cpp" "src/emu/CMakeFiles/segbus_emu.dir/trace.cpp.o" "gcc" "src/emu/CMakeFiles/segbus_emu.dir/trace.cpp.o.d"
  "/root/repo/src/emu/vcd.cpp" "src/emu/CMakeFiles/segbus_emu.dir/vcd.cpp.o" "gcc" "src/emu/CMakeFiles/segbus_emu.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/segbus_support.dir/DependInfo.cmake"
  "/root/repo/build/src/psdf/CMakeFiles/segbus_psdf.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/segbus_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/segbus_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
