file(REMOVE_RECURSE
  "libsegbus_apps.a"
)
