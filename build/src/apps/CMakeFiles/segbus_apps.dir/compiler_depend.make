# Empty compiler generated dependencies file for segbus_apps.
# This may be replaced when dependencies are built.
