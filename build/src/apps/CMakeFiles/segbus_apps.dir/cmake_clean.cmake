file(REMOVE_RECURSE
  "CMakeFiles/segbus_apps.dir/h263.cpp.o"
  "CMakeFiles/segbus_apps.dir/h263.cpp.o.d"
  "CMakeFiles/segbus_apps.dir/jpeg.cpp.o"
  "CMakeFiles/segbus_apps.dir/jpeg.cpp.o.d"
  "CMakeFiles/segbus_apps.dir/mp3.cpp.o"
  "CMakeFiles/segbus_apps.dir/mp3.cpp.o.d"
  "CMakeFiles/segbus_apps.dir/synthetic.cpp.o"
  "CMakeFiles/segbus_apps.dir/synthetic.cpp.o.d"
  "libsegbus_apps.a"
  "libsegbus_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segbus_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
