file(REMOVE_RECURSE
  "libsegbus_xml.a"
)
