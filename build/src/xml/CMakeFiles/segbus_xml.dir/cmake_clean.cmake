file(REMOVE_RECURSE
  "CMakeFiles/segbus_xml.dir/node.cpp.o"
  "CMakeFiles/segbus_xml.dir/node.cpp.o.d"
  "CMakeFiles/segbus_xml.dir/parser.cpp.o"
  "CMakeFiles/segbus_xml.dir/parser.cpp.o.d"
  "CMakeFiles/segbus_xml.dir/query.cpp.o"
  "CMakeFiles/segbus_xml.dir/query.cpp.o.d"
  "CMakeFiles/segbus_xml.dir/writer.cpp.o"
  "CMakeFiles/segbus_xml.dir/writer.cpp.o.d"
  "libsegbus_xml.a"
  "libsegbus_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segbus_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
