# Empty compiler generated dependencies file for segbus_xml.
# This may be replaced when dependencies are built.
