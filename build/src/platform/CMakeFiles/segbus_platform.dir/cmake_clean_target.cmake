file(REMOVE_RECURSE
  "libsegbus_platform.a"
)
