# Empty dependencies file for segbus_platform.
# This may be replaced when dependencies are built.
