file(REMOVE_RECURSE
  "CMakeFiles/segbus_platform.dir/constraints.cpp.o"
  "CMakeFiles/segbus_platform.dir/constraints.cpp.o.d"
  "CMakeFiles/segbus_platform.dir/model.cpp.o"
  "CMakeFiles/segbus_platform.dir/model.cpp.o.d"
  "CMakeFiles/segbus_platform.dir/platform_dot.cpp.o"
  "CMakeFiles/segbus_platform.dir/platform_dot.cpp.o.d"
  "CMakeFiles/segbus_platform.dir/platform_xml.cpp.o"
  "CMakeFiles/segbus_platform.dir/platform_xml.cpp.o.d"
  "libsegbus_platform.a"
  "libsegbus_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segbus_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
