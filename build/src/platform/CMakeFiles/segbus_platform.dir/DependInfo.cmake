
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/constraints.cpp" "src/platform/CMakeFiles/segbus_platform.dir/constraints.cpp.o" "gcc" "src/platform/CMakeFiles/segbus_platform.dir/constraints.cpp.o.d"
  "/root/repo/src/platform/model.cpp" "src/platform/CMakeFiles/segbus_platform.dir/model.cpp.o" "gcc" "src/platform/CMakeFiles/segbus_platform.dir/model.cpp.o.d"
  "/root/repo/src/platform/platform_dot.cpp" "src/platform/CMakeFiles/segbus_platform.dir/platform_dot.cpp.o" "gcc" "src/platform/CMakeFiles/segbus_platform.dir/platform_dot.cpp.o.d"
  "/root/repo/src/platform/platform_xml.cpp" "src/platform/CMakeFiles/segbus_platform.dir/platform_xml.cpp.o" "gcc" "src/platform/CMakeFiles/segbus_platform.dir/platform_xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/segbus_support.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/segbus_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/psdf/CMakeFiles/segbus_psdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
