file(REMOVE_RECURSE
  "libsegbus_support.a"
)
