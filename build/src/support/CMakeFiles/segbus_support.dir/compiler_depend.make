# Empty compiler generated dependencies file for segbus_support.
# This may be replaced when dependencies are built.
