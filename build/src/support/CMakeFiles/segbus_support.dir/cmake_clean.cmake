file(REMOVE_RECURSE
  "CMakeFiles/segbus_support.dir/cli.cpp.o"
  "CMakeFiles/segbus_support.dir/cli.cpp.o.d"
  "CMakeFiles/segbus_support.dir/csv.cpp.o"
  "CMakeFiles/segbus_support.dir/csv.cpp.o.d"
  "CMakeFiles/segbus_support.dir/diag.cpp.o"
  "CMakeFiles/segbus_support.dir/diag.cpp.o.d"
  "CMakeFiles/segbus_support.dir/json.cpp.o"
  "CMakeFiles/segbus_support.dir/json.cpp.o.d"
  "CMakeFiles/segbus_support.dir/log.cpp.o"
  "CMakeFiles/segbus_support.dir/log.cpp.o.d"
  "CMakeFiles/segbus_support.dir/rng.cpp.o"
  "CMakeFiles/segbus_support.dir/rng.cpp.o.d"
  "CMakeFiles/segbus_support.dir/statistics.cpp.o"
  "CMakeFiles/segbus_support.dir/statistics.cpp.o.d"
  "CMakeFiles/segbus_support.dir/status.cpp.o"
  "CMakeFiles/segbus_support.dir/status.cpp.o.d"
  "CMakeFiles/segbus_support.dir/strings.cpp.o"
  "CMakeFiles/segbus_support.dir/strings.cpp.o.d"
  "CMakeFiles/segbus_support.dir/table.cpp.o"
  "CMakeFiles/segbus_support.dir/table.cpp.o.d"
  "CMakeFiles/segbus_support.dir/time.cpp.o"
  "CMakeFiles/segbus_support.dir/time.cpp.o.d"
  "libsegbus_support.a"
  "libsegbus_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segbus_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
