file(REMOVE_RECURSE
  "libsegbus_psdf.a"
)
