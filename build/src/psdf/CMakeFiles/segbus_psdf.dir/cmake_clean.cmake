file(REMOVE_RECURSE
  "CMakeFiles/segbus_psdf.dir/comm_matrix.cpp.o"
  "CMakeFiles/segbus_psdf.dir/comm_matrix.cpp.o.d"
  "CMakeFiles/segbus_psdf.dir/dot.cpp.o"
  "CMakeFiles/segbus_psdf.dir/dot.cpp.o.d"
  "CMakeFiles/segbus_psdf.dir/model.cpp.o"
  "CMakeFiles/segbus_psdf.dir/model.cpp.o.d"
  "CMakeFiles/segbus_psdf.dir/psdf_xml.cpp.o"
  "CMakeFiles/segbus_psdf.dir/psdf_xml.cpp.o.d"
  "CMakeFiles/segbus_psdf.dir/validate.cpp.o"
  "CMakeFiles/segbus_psdf.dir/validate.cpp.o.d"
  "libsegbus_psdf.a"
  "libsegbus_psdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segbus_psdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
