# Empty dependencies file for segbus_psdf.
# This may be replaced when dependencies are built.
