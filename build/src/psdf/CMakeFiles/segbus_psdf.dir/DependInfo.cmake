
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psdf/comm_matrix.cpp" "src/psdf/CMakeFiles/segbus_psdf.dir/comm_matrix.cpp.o" "gcc" "src/psdf/CMakeFiles/segbus_psdf.dir/comm_matrix.cpp.o.d"
  "/root/repo/src/psdf/dot.cpp" "src/psdf/CMakeFiles/segbus_psdf.dir/dot.cpp.o" "gcc" "src/psdf/CMakeFiles/segbus_psdf.dir/dot.cpp.o.d"
  "/root/repo/src/psdf/model.cpp" "src/psdf/CMakeFiles/segbus_psdf.dir/model.cpp.o" "gcc" "src/psdf/CMakeFiles/segbus_psdf.dir/model.cpp.o.d"
  "/root/repo/src/psdf/psdf_xml.cpp" "src/psdf/CMakeFiles/segbus_psdf.dir/psdf_xml.cpp.o" "gcc" "src/psdf/CMakeFiles/segbus_psdf.dir/psdf_xml.cpp.o.d"
  "/root/repo/src/psdf/validate.cpp" "src/psdf/CMakeFiles/segbus_psdf.dir/validate.cpp.o" "gcc" "src/psdf/CMakeFiles/segbus_psdf.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/segbus_support.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/segbus_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
