file(REMOVE_RECURSE
  "CMakeFiles/segbus_place.dir/apply.cpp.o"
  "CMakeFiles/segbus_place.dir/apply.cpp.o.d"
  "CMakeFiles/segbus_place.dir/cost.cpp.o"
  "CMakeFiles/segbus_place.dir/cost.cpp.o.d"
  "CMakeFiles/segbus_place.dir/placer.cpp.o"
  "CMakeFiles/segbus_place.dir/placer.cpp.o.d"
  "libsegbus_place.a"
  "libsegbus_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segbus_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
