# Empty compiler generated dependencies file for segbus_place.
# This may be replaced when dependencies are built.
