file(REMOVE_RECURSE
  "libsegbus_place.a"
)
