
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/apply.cpp" "src/place/CMakeFiles/segbus_place.dir/apply.cpp.o" "gcc" "src/place/CMakeFiles/segbus_place.dir/apply.cpp.o.d"
  "/root/repo/src/place/cost.cpp" "src/place/CMakeFiles/segbus_place.dir/cost.cpp.o" "gcc" "src/place/CMakeFiles/segbus_place.dir/cost.cpp.o.d"
  "/root/repo/src/place/placer.cpp" "src/place/CMakeFiles/segbus_place.dir/placer.cpp.o" "gcc" "src/place/CMakeFiles/segbus_place.dir/placer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/segbus_support.dir/DependInfo.cmake"
  "/root/repo/build/src/psdf/CMakeFiles/segbus_psdf.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/segbus_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/segbus_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
