# Empty dependencies file for bench_activity.
# This may be replaced when dependencies are built.
