file(REMOVE_RECURSE
  "CMakeFiles/bench_config_sweep.dir/bench_config_sweep.cpp.o"
  "CMakeFiles/bench_config_sweep.dir/bench_config_sweep.cpp.o.d"
  "bench_config_sweep"
  "bench_config_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_config_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
