# Empty dependencies file for bench_config_sweep.
# This may be replaced when dependencies are built.
