file(REMOVE_RECURSE
  "CMakeFiles/bench_three_segments.dir/bench_three_segments.cpp.o"
  "CMakeFiles/bench_three_segments.dir/bench_three_segments.cpp.o.d"
  "bench_three_segments"
  "bench_three_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_three_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
