# Empty compiler generated dependencies file for bench_three_segments.
# This may be replaced when dependencies are built.
