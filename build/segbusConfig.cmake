include("${CMAKE_CURRENT_LIST_DIR}/segbusTargets.cmake")
