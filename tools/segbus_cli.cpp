// segbus_cli — command-line front end for the SegBus tool chain.
//
// Subcommands (first positional argument):
//   validate <psdf.xml> [<psm.xml>]     run the OCL-style model checks
//   check    <psdf.xml> [<psm.xml>] [--package S] [--reference] [--json]
//            [--no-bounds] [--emulator-host] [--explain SBxxx]
//                                       full static analysis: validation,
//                                       lint, deadlock detection and the
//                                       static performance bounds (same
//                                       engine as the segbus_lint tool;
//                                       exit 2 on diagnosed errors)
//   matrix   <psdf.xml>                 print the communication matrix
//   generate --app mp3|jpeg --segments N [--package S] <outdir>
//                                       run the M2T transformation
//   emulate  <psdf.xml> <psm.xml> [--package S] [--reference]
//            [--engine reference|parallel|fast [--threads N]] [--activity]
//            [--trace [--trace-max N]]
//            [--vcd out.vcd] [--json] [--metrics] [--telemetry DIR]
//                                       emulate and report; --metrics records
//                                       protocol counters/latency histograms,
//                                       --telemetry (implies --metrics and
//                                       --trace) also exports Prometheus/
//                                       JSON/CSV metrics and a Chrome
//                                       trace-event file under DIR
//   place    <psdf.xml> --segments N [--strategy greedy|anneal|exhaustive]
//            [--seed K] [--iterations I] search a device allocation
//   explore  <psdf.xml> [--segments 1,2,3] [--package S] [--seed K]
//            [--iterations I] [--candidates N] [--prune] [--json]
//            [--metrics-out FILE]
//                                       rank annealed configurations;
//                                       --candidates anneals N placements
//                                       per segment count (seeds K..K+N-1),
//                                       --prune skips engine runs whose v2
//                                       static lower bound already exceeds
//                                       the incumbent (identical best;
//                                       see docs/ANALYSIS.md)
//   analyze  <psdf.xml> <psm.xml> [--package S] closed-form bounds &
//            per-stage breakdown without emulating
//   search   <psdf.xml> | --app mp3|jpeg|h263 | --synthetic N
//            [--segments 1,2,3] [--packages 36,18] [--strategy
//            guided|exhaustive] [--seed K] [--budget N] [--nodes N]
//            [--beam W] [--restarts R] [--iterations I] [--wave W]
//            [--workers N] [--engine E] [--reference] [--json]
//            [--metrics-out FILE] [--socket PATH | --tcp-port N]
//                                       guided design-space search:
//                                       branch-and-bound over placements
//                                       with admissible v2 bounds, seeded
//                                       by annealing + beam heuristics,
//                                       reported as a Pareto front over
//                                       time/BU traffic/energy (see
//                                       docs/SEARCH.md); with --socket or
//                                       --tcp-port the search runs on a
//                                       server as a "search" wire request
//   estimate <psdf.xml> <psm.xml> | --app mp3|jpeg|h263 [--segments N]
//            [--compute-dist SPEC] [--items-dist SPEC] [--seed K]
//            [--replications N] [--min-replications N] [--round N]
//            [--confidence C] [--rhw TARGET] [--engine E] [--reference]
//            [--modes modes.xml [--schedule-len N]] [--workers N]
//            [--json] [--socket PATH | --tcp-port N]
//                                       replicated-run confidence
//                                       estimation under stochastic
//                                       workload scales (and optional
//                                       multi-mode schedules): mean/
//                                       p50/p95/p99 with a Student-t CI
//                                       and a relative-half-width stopping
//                                       rule (docs/WORKLOADS.md); with
//                                       --socket/--tcp-port the run ships
//                                       to a server as an "estimate" wire
//                                       request
//   serve    [--socket PATH] [--tcp [--port N]] [--workers N] [--queue N]
//            [--cache-entries N] [--cache-bytes N] [--max-ticks N]
//            [--deadline-ms N] [--metrics-out FILE]
//                                       estimation job server (NDJSON over
//                                       a unix socket and/or TCP loopback)
//                                       with the content-addressed result
//                                       cache; SIGINT/SIGTERM drains
//                                       gracefully (see docs/SERVICE.md)
//   submit   <psdf.xml> <psm.xml> [--socket PATH | --tcp-port N]
//            [--package S] [--reference]
//            [--engine reference|parallel|fast] [--max-ticks N]
//            [--id ID] [--json] [--trace out.json] | --ping | --stats
//                                       submit one job to a running server;
//                                       --trace asks the server for its
//                                       span tree and writes it to the file
//   stats    [--socket PATH | --tcp-port N] [--json]
//                                       pretty-print a running server's
//                                       live stats (queue, cache, phases,
//                                       trace, build)
//   fuzz     [--seed N] [--count N] [--workers N] [--time-budget S]
//            [--corpus DIR] [--log FILE] [--replay DIR] ...
//                                       seeded scenario fuzzing through the
//                                       differential oracle (same flags as
//                                       the segbus_fuzz tool; see
//                                       tools/fuzz_common.hpp and
//                                       docs/FUZZING.md)
//
// `segbus_cli --version` prints the build identity (version, git revision,
// compiler, build type) and exits 0.
//
// Exit status: 0 on success, 1 on any error (message on stderr); submit
// exits 2 when the server answered with a job-level error.
#include <cstdio>
#include <filesystem>
#include <string>

#include "apps/h263.hpp"
#include "apps/jpeg.hpp"
#include "apps/mp3.hpp"
#include "core/advisor.hpp"
#include "core/json_export.hpp"
#include "core/segbus.hpp"
#include "emu/vcd.hpp"
#include "obs/telemetry.hpp"
#include "support/build_info.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

#include "estimate_common.hpp"
#include "fuzz_common.hpp"
#include "lint_common.hpp"
#include "search_common.hpp"
#include "service_common.hpp"

using namespace segbus;

namespace {

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: segbus_cli "
               "<validate|check|matrix|generate|emulate|place|explore|"
               "search|analyze|estimate|serve|submit|stats|fuzz> "
               "...\n       segbus_cli --version\n"
               "(see the header comment of tools/segbus_cli.cpp)\n");
  return 1;
}

int cmd_validate(const CommandLine& cli) {
  if (cli.positional().size() < 2) return usage();
  auto app = psdf::read_psdf_file(cli.positional()[1]);
  if (!app.is_ok()) return fail(app.status());
  ValidationReport report = psdf::validate(*app);
  std::printf("PSDF %s: %s", cli.positional()[1].c_str(),
              report.to_string().c_str());
  bool ok = report.ok();
  if (cli.positional().size() >= 3) {
    auto platform = platform::read_platform_file(cli.positional()[2]);
    if (!platform.is_ok()) return fail(platform.status());
    ValidationReport mapping = platform::validate_mapping(*platform, *app);
    std::printf("PSM  %s: %s", cli.positional()[2].c_str(),
                mapping.to_string().c_str());
    ok = ok && mapping.ok();
  }
  return ok ? 0 : 1;
}

int cmd_matrix(const CommandLine& cli) {
  if (cli.positional().size() < 2) return usage();
  auto app = psdf::read_psdf_file(cli.positional()[1]);
  if (!app.is_ok()) return fail(app.status());
  psdf::CommMatrix matrix = psdf::CommMatrix::from_model(*app);
  std::printf("%s", matrix.render(*app).c_str());
  std::printf("\ntotal data items: %llu over %zu flows\n",
              static_cast<unsigned long long>(matrix.total()),
              app->flows().size());
  return 0;
}

int cmd_generate(const CommandLine& cli) {
  if (cli.positional().size() < 2) return usage();
  const std::string out_dir = cli.positional().back();
  const std::string which = cli.flag_or("app", "mp3");
  const auto segments =
      static_cast<std::uint32_t>(cli.int_flag_or("segments", 3));
  const auto package =
      static_cast<std::uint32_t>(cli.int_flag_or("package", 36));

  Result<psdf::PsdfModel> app = invalid_argument_error(
      "unknown --app '" + which + "' (expected mp3, jpeg or h263)");
  Result<platform::PlatformModel> platform = app.status();
  if (which == "mp3") {
    app = apps::mp3_decoder_psdf(package);
    if (app.is_ok()) {
      platform = apps::mp3_platform(*app, apps::mp3_allocation(segments),
                                    segments, package);
    }
  } else if (which == "jpeg") {
    app = apps::jpeg_encoder_psdf(package);
    if (app.is_ok()) {
      std::vector<std::uint32_t> allocation =
          segments == 2
              ? apps::jpeg_allocation_two_segments()
              : std::vector<std::uint32_t>(apps::kJpegProcesses, 0);
      platform = apps::jpeg_platform(*app, allocation,
                                     segments == 2 ? 2u : 1u, package);
    }
  } else if (which == "h263") {
    app = apps::h263_encoder_psdf(package);
    if (app.is_ok()) {
      const std::uint32_t n =
          segments == 2 ? 2u : segments >= 4 ? 4u : 1u;
      platform = apps::h263_platform(*app, apps::h263_allocation(n), n,
                                     package);
    }
  }
  if (!app.is_ok()) return fail(app.status());
  if (!platform.is_ok()) return fail(platform.status());

  std::filesystem::create_directories(out_dir);
  m2t::CodeEngineeringSet set(*app, *platform);
  if (Status status = set.write_to(out_dir); !status.is_ok()) {
    return fail(status);
  }
  std::printf("artifacts written to %s\n", out_dir.c_str());
  return 0;
}

int cmd_emulate(const CommandLine& cli) {
  if (cli.positional().size() < 3) return usage();
  obs::PhaseProfiler profiler;
  core::SessionConfig config;
  if (cli.bool_flag_or("reference", false)) {
    config.timing = emu::TimingModel::reference();
  }
  if (auto engine = cli.flag("engine")) {
    auto backend = emu::parse_engine_backend(*engine);
    if (!backend) {
      return fail(invalid_argument_error(
          "unknown --engine '" + *engine +
          "' (want reference | parallel | fast)"));
    }
    config.backend.backend = *backend;
  } else if (cli.bool_flag_or("parallel", false)) {
    // Legacy spelling of --engine parallel.
    config.backend.backend = emu::EngineBackend::kParallel;
  }
  if (config.backend.backend == emu::EngineBackend::kParallel) {
    config.backend.parallel_threads =
        static_cast<unsigned>(cli.int_flag_or("threads", 0));
  }
  config.engine.record_activity = cli.bool_flag_or("activity", false);
  const std::string vcd_path = cli.flag_or("vcd", "");
  const std::string telemetry_dir = cli.flag_or("telemetry", "");
  config.engine.record_trace = cli.bool_flag_or("trace", false) ||
                               !vcd_path.empty() || !telemetry_dir.empty();
  config.engine.record_metrics =
      cli.bool_flag_or("metrics", false) || !telemetry_dir.empty();

  auto parse_span = profiler.span("parse");
  auto session = core::EmulationSession::from_xml_files(
      cli.positional()[1], cli.positional()[2], config,
      static_cast<std::uint32_t>(cli.int_flag_or("package", 0)));
  parse_span.close();
  if (!session.is_ok()) return fail(session.status());
  if (!session->analysis().report.diagnostics.empty()) {
    std::fprintf(
        stderr, "static analysis:\n%s",
        analysis::render_text(session->analysis().report).c_str());
  }
  auto result = session->emulate(&profiler);
  if (!result.is_ok()) return fail(result.status());
  if (!result->completed) {
    return fail(internal_error("emulation hit the tick limit"));
  }
  auto report_span = profiler.span("report");

  if (!vcd_path.empty()) {
    if (Status status =
            emu::write_vcd_file(*result, session->platform(), vcd_path);
        !status.is_ok()) {
      return fail(status);
    }
    std::fprintf(stderr, "waveform written to %s\n", vcd_path.c_str());
  }
  if (cli.bool_flag_or("json", false)) {
    std::printf("%s",
                core::result_to_json(*result, session->platform())
                    .to_string(/*pretty=*/true)
                    .c_str());
    report_span.close();
    if (!telemetry_dir.empty()) {
      auto written =
          obs::export_telemetry(*result, session->platform(), &profiler,
                                telemetry_dir, "emulate");
      if (!written.is_ok()) return fail(written.status());
    }
    return 0;
  }
  std::printf("%s\n",
              core::render_summary(*result, session->platform()).c_str());
  std::printf("%s\n",
              core::render_paper_report(*result, session->platform())
                  .c_str());
  std::printf("%s\n",
              core::render_bu_analysis(*result, session->platform())
                  .c_str());
  std::printf("%s", core::render_timeline(*result).c_str());
  std::printf("\nper-flow latency:\n%s",
              core::render_flow_table(*result).c_str());
  std::printf("\nschedule stages:\n%s",
              core::render_stage_table(*result).c_str());
  if (auto advice = core::advise(session->application(),
                                 session->platform(), *result);
      advice.is_ok()) {
    std::printf("\nadvisor:\n%s", core::render_advice(*advice).c_str());
  }
  if (config.engine.record_activity) {
    std::printf("\n%s", core::render_activity(*result).c_str());
  }
  if (config.engine.record_trace) {
    auto max_events = static_cast<std::size_t>(
        cli.int_flag_or("trace-max", 200));
    std::printf("\nprotocol trace (%zu events):\n%s",
                result->trace.size(),
                emu::render_trace(result->trace, result->domain_names,
                                  max_events)
                    .c_str());
  }
  report_span.close();
  if (config.engine.record_metrics) {
    std::printf("\n%s", obs::render_telemetry_summary(*result, &profiler)
                            .c_str());
  }
  if (!telemetry_dir.empty()) {
    auto written = obs::export_telemetry(*result, session->platform(),
                                         &profiler, telemetry_dir, "emulate");
    if (!written.is_ok()) return fail(written.status());
    for (const std::string& path : *written) {
      std::fprintf(stderr, "telemetry written to %s\n", path.c_str());
    }
  }
  return 0;
}

int cmd_place(const CommandLine& cli) {
  if (cli.positional().size() < 2) return usage();
  auto app = psdf::read_psdf_file(cli.positional()[1]);
  if (!app.is_ok()) return fail(app.status());
  const auto segments =
      static_cast<std::uint32_t>(cli.int_flag_or("segments", 2));
  const std::string strategy = cli.flag_or("strategy", "anneal");
  psdf::CommMatrix matrix = psdf::CommMatrix::from_model(*app);
  place::CostModel cost;
  cost.package_size = app->package_size();

  Result<place::PlacementResult> result =
      invalid_argument_error("unknown --strategy '" + strategy +
                             "' (greedy|anneal|exhaustive)");
  if (strategy == "greedy") {
    result = place::greedy_place(matrix, segments, cost);
  } else if (strategy == "anneal") {
    place::AnnealOptions options;
    options.seed = static_cast<std::uint64_t>(cli.int_flag_or("seed", 1));
    options.iterations =
        static_cast<std::uint64_t>(cli.int_flag_or("iterations", 100000));
    result = place::anneal_place(matrix, segments, cost, options);
  } else if (strategy == "exhaustive") {
    result = place::exhaustive_place(matrix, segments, cost);
  }
  if (!result.is_ok()) return fail(result.status());
  std::printf("%s placement (cost %.0f, %llu evaluations):\n  %s\n",
              result->strategy.c_str(), result->cost,
              static_cast<unsigned long long>(result->evaluations),
              result->render(*app).c_str());
  return 0;
}

int cmd_explore(const CommandLine& cli) {
  if (cli.positional().size() < 2) return usage();
  auto app = psdf::read_psdf_file(cli.positional()[1]);
  if (!app.is_ok()) return fail(app.status());
  place::AnnealOptions anneal;
  anneal.seed = static_cast<std::uint64_t>(cli.int_flag_or("seed", 1));
  anneal.iterations =
      static_cast<std::uint64_t>(cli.int_flag_or("iterations", 50000));
  const auto package = static_cast<std::uint32_t>(
      cli.int_flag_or("package", app->package_size()));

  // --candidates N runs the annealer N times per segment count with
  // distinct seeds, widening the sweep so the prune oracle has real
  // losers to cut.
  const auto per_segment = static_cast<std::uint64_t>(
      cli.int_flag_or("candidates", 1));
  if (per_segment == 0) {
    return fail(invalid_argument_error("--candidates must be positive"));
  }
  std::vector<core::Candidate> candidates;
  const std::string segments_list = cli.flag_or("segments", "1,2,3");
  for (std::string_view part : split_skip_empty(segments_list, ',')) {
    auto segments = parse_uint(trim(part));
    if (!segments || *segments == 0) {
      return fail(invalid_argument_error("bad --segments list"));
    }
    for (std::uint64_t trial = 0; trial < per_segment; ++trial) {
      place::AnnealOptions trial_anneal = anneal;
      trial_anneal.seed = anneal.seed + trial;
      auto candidate = core::candidate_from_placement(
          *app, static_cast<std::uint32_t>(*segments),
          {Frequency::from_mhz(91), Frequency::from_mhz(98),
           Frequency::from_mhz(89)},
          Frequency::from_mhz(111), package, trial_anneal);
      if (!candidate.is_ok()) return fail(candidate.status());
      if (per_segment > 1) {
        candidate->label += str_format(" seed=%llu",
                                       static_cast<unsigned long long>(
                                           trial_anneal.seed));
      }
      candidates.push_back(std::move(*candidate));
    }
  }
  core::ExploreOptions options;
  options.prune = cli.bool_flag_or("prune", false);
  obs::MetricsRegistry metrics;
  const std::string metrics_out = cli.flag_or("metrics-out", "");
  if (!metrics_out.empty()) options.metrics = &metrics;
  auto report = core::explore(*app, std::move(candidates), options);
  if (!report.is_ok()) return fail(report.status());
  if (cli.bool_flag_or("json", false)) {
    std::printf("%s\n",
                core::exploration_to_json(*report).to_string(true).c_str());
  } else {
    std::printf("%s", report->render().c_str());
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary);
    out << obs::to_prometheus(metrics);
    if (!out) return fail(internal_error("cannot write " + metrics_out));
    std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}

int cmd_analyze(const CommandLine& cli) {
  if (cli.positional().size() < 3) return usage();
  const auto package =
      static_cast<std::uint32_t>(cli.int_flag_or("package", 0));
  auto app = psdf::read_psdf_file(cli.positional()[1], package);
  if (!app.is_ok()) return fail(app.status());
  auto platform = platform::read_platform_file(cli.positional()[2]);
  if (!platform.is_ok()) return fail(platform.status());
  if (package != 0) {
    if (Status status = platform->set_package_size(package);
        !status.is_ok()) {
      return fail(status);
    }
  }
  const emu::TimingModel timing = cli.bool_flag_or("reference", false)
                                      ? emu::TimingModel::reference()
                                      : emu::TimingModel::emulator();
  auto bounds = analysis::compute_static_bounds(*app, *platform, timing);
  if (!bounds.is_ok()) return fail(bounds.status());
  auto estimate = core::analytic_estimate(*app, *platform, timing);
  if (!estimate.is_ok()) return fail(estimate.status());
  std::printf("analytic lower bound: %s  (v1: %s)\n",
              format_us(bounds->lower).c_str(),
              format_us(bounds->lower_v1).c_str());
  std::printf("analytic estimate   : %s\n",
              format_us(estimate->total).c_str());
  std::printf("serialization upper : %s  (v1: %s)\n",
              format_us(bounds->upper).c_str(),
              format_us(bounds->upper_v1).c_str());
  std::printf("\nper-stage lower bound breakdown:\n");
  for (const analysis::StageBounds& stage : bounds->stages) {
    std::printf("  stage T=%u: %12s  (bound: %s)\n", stage.ordering,
                format_us(stage.lower).c_str(),
                stage.lower_binding.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = CommandLine::parse(argc, argv);
  if (!cli.is_ok()) return fail(cli.status());
  if (cli->bool_flag_or("version", false)) {
    std::printf("%s\n", build_info_line().c_str());
    return 0;
  }
  if (cli->positional().empty()) return usage();
  const std::string& command = cli->positional()[0];
  if (command == "validate") return cmd_validate(*cli);
  if (command == "check") return tools::run_lint(*cli, 1);
  if (command == "matrix") return cmd_matrix(*cli);
  if (command == "generate") return cmd_generate(*cli);
  if (command == "emulate") return cmd_emulate(*cli);
  if (command == "place") return cmd_place(*cli);
  if (command == "explore") return cmd_explore(*cli);
  if (command == "search") return tools::run_search_cmd(*cli);
  if (command == "analyze") return cmd_analyze(*cli);
  if (command == "estimate") return tools::run_estimate_cmd(*cli);
  if (command == "serve") return tools::run_serve(*cli);
  if (command == "submit") return tools::run_submit(*cli);
  if (command == "stats") return tools::run_stats(*cli);
  if (command == "fuzz") return tools::run_fuzz(*cli);
  return usage();
}
