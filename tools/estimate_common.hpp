// Shared implementation of the `segbus_cli estimate` subcommand.
//
//   estimate <psdf.xml> <psm.xml> | --app mp3|jpeg|h263 [--segments N]
//            [--package S] [--compute-dist SPEC] [--items-dist SPEC]
//            [--seed K] [--replications N] [--min-replications N]
//            [--round N] [--confidence C] [--rhw TARGET]
//            [--engine reference|parallel|fast] [--reference]
//            [--max-ticks N] [--workers N]
//            [--modes modes.xml [--schedule-len N]]
//            [--json] [--socket PATH | --tcp-port N]
//
// Distribution SPECs use the stoch::Distribution grammar
// ("point:1", "uniform:0.8,1.2", "normal:1,0.2", "lognormal:-0.08,0.4",
// "pareto:3,0.667" — see docs/WORKLOADS.md). Replications fan through a
// local worker pool; with --socket/--tcp-port the whole estimation ships
// to a running server as an `"estimate"` wire request and the pool is the
// server's. The report JSON is deterministic for a fixed request —
// byte-identical across worker counts and engine backends.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/h263.hpp"
#include "apps/jpeg.hpp"
#include "apps/mp3.hpp"
#include "platform/platform_xml.hpp"
#include "psdf/modes.hpp"
#include "psdf/psdf_xml.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "stoch/estimator.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "xml/writer.hpp"

namespace segbus::tools {

namespace estimate_detail {

struct Models {
  psdf::PsdfModel application;
  platform::PlatformModel platform;
};

/// Loads the (application, platform) pair: two positional XML paths, or a
/// named --app with its canonical platform for --segments.
inline Result<Models> load_models(const CommandLine& cli) {
  const auto package =
      static_cast<std::uint32_t>(cli.int_flag_or("package", 0));
  if (const auto app_name = cli.flag("app")) {
    const auto segments =
        static_cast<std::uint32_t>(cli.int_flag_or("segments", 3));
    const std::uint32_t pkg = package != 0 ? package : 36;
    Result<psdf::PsdfModel> app = invalid_argument_error(
        "unknown --app '" + *app_name + "' (expected mp3, jpeg or h263)");
    Result<platform::PlatformModel> psm = app.status();
    if (*app_name == "mp3") {
      app = apps::mp3_decoder_psdf(pkg);
      if (app.is_ok()) {
        psm = apps::mp3_platform(*app, apps::mp3_allocation(segments),
                                 segments, pkg);
      }
    } else if (*app_name == "jpeg") {
      app = apps::jpeg_encoder_psdf(pkg);
      if (app.is_ok()) {
        std::vector<std::uint32_t> allocation =
            segments == 2
                ? apps::jpeg_allocation_two_segments()
                : std::vector<std::uint32_t>(apps::kJpegProcesses, 0);
        psm = apps::jpeg_platform(*app, allocation, segments == 2 ? 2u : 1u,
                                  pkg);
      }
    } else if (*app_name == "h263") {
      app = apps::h263_encoder_psdf(pkg);
      if (app.is_ok()) {
        const std::uint32_t n = segments == 2 ? 2u : segments >= 4 ? 4u : 1u;
        psm = apps::h263_platform(*app, apps::h263_allocation(n), n, pkg);
      }
    }
    if (!app.is_ok()) return app.status();
    if (!psm.is_ok()) return psm.status();
    return Models{std::move(*app), std::move(*psm)};
  }
  if (cli.positional().size() < 3) {
    return invalid_argument_error(
        "estimate needs <psdf.xml> <psm.xml> or --app NAME");
  }
  SEGBUS_ASSIGN_OR_RETURN(psdf::PsdfModel app,
                          psdf::read_psdf_file(cli.positional()[1], package));
  SEGBUS_ASSIGN_OR_RETURN(platform::PlatformModel psm,
                          platform::read_platform_file(cli.positional()[2]));
  if (package != 0) {
    SEGBUS_RETURN_IF_ERROR(psm.set_package_size(package));
  }
  return Models{std::move(app), std::move(psm)};
}

inline void print_estimate(const stoch::Estimate& estimate) {
  std::printf("replications : %zu (%llu unique schemes emulated)\n",
              estimate.replications.size(),
              static_cast<unsigned long long>(estimate.unique_runs));
  std::printf("mean TCT     : %.3f us  (stddev %.3f us)\n",
              estimate.mean_ps / 1e6, estimate.stddev_ps / 1e6);
  std::printf("%2.0f%% CI       : [%.3f, %.3f] us  (half-width %.3f us, "
              "%.2f%% of mean)%s\n",
              estimate.confidence * 100.0, estimate.ci_low_ps / 1e6,
              estimate.ci_high_ps / 1e6, estimate.half_width_ps / 1e6,
              estimate.relative_half_width * 100.0,
              estimate.converged ? "" : "  [NOT converged]");
  std::printf("percentiles  : p50 %.3f us, p95 %.3f us, p99 %.3f us\n",
              estimate.p50_ps / 1e6, estimate.p95_ps / 1e6,
              estimate.p99_ps / 1e6);
  if (estimate.mean_model_ps >= 0.0) {
    std::printf("mean model   : %.3f us  (%s the CI)\n",
                estimate.mean_model_ps / 1e6,
                estimate.ci_contains_mean_model ? "inside" : "OUTSIDE");
  }
}

}  // namespace estimate_detail

/// `segbus_cli estimate`: replicated-run confidence estimation.
inline int run_estimate_cmd(const CommandLine& cli) {
  auto fail = [](const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return 1;
  };

  auto models = estimate_detail::load_models(cli);
  if (!models.is_ok()) return fail(models.status());

  const std::string compute = cli.flag_or("compute-dist", "point:1");
  const std::string items = cli.flag_or("items-dist", "point:1");
  const auto seed = static_cast<std::uint64_t>(cli.int_flag_or("seed", 1));
  const auto max_replications =
      static_cast<std::uint32_t>(cli.int_flag_or("replications", 64));
  const auto min_replications = static_cast<std::uint32_t>(
      cli.int_flag_or("min-replications", 8));
  const auto round_replications =
      static_cast<std::uint32_t>(cli.int_flag_or("round", 8));
  const double confidence = cli.double_flag_or("confidence", 0.95);
  const double target_rhw = cli.double_flag_or("rhw", 0.0);
  const std::string modes_path = cli.flag_or("modes", "");
  std::string modes_xml;
  if (!modes_path.empty()) {
    std::ifstream in(modes_path, std::ios::binary);
    if (!in) return fail(not_found_error("cannot open " + modes_path));
    std::ostringstream text;
    text << in.rdbuf();
    modes_xml = std::move(text).str();
  }

  // Client mode: ship the estimation to a running server over the wire.
  const auto tcp_port =
      static_cast<std::uint16_t>(cli.int_flag_or("tcp-port", 0));
  const std::string socket = cli.flag_or("socket", "");
  if (tcp_port != 0 || !socket.empty()) {
    service::JobRequest request;
    request.id = cli.flag_or("id", "cli-estimate");
    request.kind = "estimate";
    request.psdf_xml =
        xml::write_document(psdf::to_xml(models->application));
    request.psm_xml =
        xml::write_document(platform::to_xml(models->platform));
    request.engine = cli.flag_or("engine", "");
    request.reference_timing = cli.bool_flag_or("reference", false);
    request.max_ticks =
        static_cast<std::uint64_t>(cli.int_flag_or("max-ticks", 0));
    request.estimate.compute = compute;
    request.estimate.items = items;
    request.estimate.seed = seed;
    request.estimate.min_replications = min_replications;
    request.estimate.max_replications = max_replications;
    request.estimate.round_replications = round_replications;
    request.estimate.confidence = confidence;
    request.estimate.target_relative_half_width = target_rhw;
    request.estimate.modes_xml = modes_xml;
    request.estimate.schedule_length =
        static_cast<std::uint32_t>(cli.int_flag_or("schedule-len", 4));

    Result<service::Client> client =
        tcp_port != 0 ? service::Client::connect_tcp(tcp_port)
                      : service::Client::connect_unix(socket);
    if (!client.is_ok()) return fail(client.status());
    if (cli.bool_flag_or("json", false)) {
      // The full raw response line (digest/execution_ps envelope plus
      // report), exactly as `submit --json` behaves.
      auto line = client->call_raw(service::encode_request(request));
      if (!line.is_ok()) return fail(line.status());
      std::printf("%s\n", line->c_str());
      auto parsed = service::parse_response(*line);
      return parsed.is_ok() && parsed->ok ? 0 : 2;
    }
    auto response = client->call(request);
    if (!response.is_ok()) return fail(response.status());
    if (!response->ok) {
      std::fprintf(stderr, "estimate failed [%s]: %s\n",
                   response->error_code.c_str(),
                   response->error_message.c_str());
      return 2;
    }
    auto report = JsonValue::parse(response->report_json);
    if (!report.is_ok()) return fail(report.status());
    std::printf("%s\n", report->to_string(/*pretty=*/true).c_str());
    std::printf("base digest: %s\n", response->digest.c_str());
    return 0;
  }

  // Local mode: an in-process worker pool runs the replications.
  stoch::EstimatorOptions options;
  auto compute_dist = stoch::Distribution::parse(compute);
  if (!compute_dist.is_ok()) return fail(compute_dist.status());
  options.spec.compute_scale = *compute_dist;
  auto items_dist = stoch::Distribution::parse(items);
  if (!items_dist.is_ok()) return fail(items_dist.status());
  options.spec.items_scale = *items_dist;
  options.seed = seed;
  options.min_replications = min_replications;
  options.max_replications = max_replications;
  options.round_replications = round_replications;
  options.confidence = confidence;
  options.target_relative_half_width = target_rhw;
  options.engine = cli.flag_or("engine", "");
  options.reference_timing = cli.bool_flag_or("reference", false);
  options.max_ticks =
      static_cast<std::uint64_t>(cli.int_flag_or("max-ticks", 0));

  psdf::ModeTable table;
  if (!modes_xml.empty()) {
    auto parsed = psdf::modes_from_xml(modes_xml);
    if (!parsed.is_ok()) return fail(parsed.status());
    table = std::move(*parsed);
    options.mode_table = &table;
    options.mode_schedule = table.generate_schedule(
        seed, static_cast<std::size_t>(
                  std::max<std::int64_t>(1, cli.int_flag_or("schedule-len",
                                                            4))));
  }

  service::ServerConfig pool_config;
  pool_config.workers =
      static_cast<unsigned>(cli.int_flag_or("workers", 4));
  pool_config.queue_depth = std::max<std::size_t>(16, max_replications);
  service::JobServer pool(pool_config);
  stoch::Estimator estimator(pool);
  auto estimate =
      estimator.run(models->application, models->platform, options);
  if (!estimate.is_ok()) return fail(estimate.status());

  if (cli.bool_flag_or("json", false)) {
    std::printf("%s\n", estimate->to_json().to_string().c_str());
    return 0;
  }
  estimate_detail::print_estimate(*estimate);
  return 0;
}

}  // namespace segbus::tools
