// Shared implementation of the `segbus_cli search` subcommand.
//
//   search  <psdf.xml> | --app mp3|jpeg|h263 | --synthetic N
//           [--segments 1,2,3] [--packages 36,18 | --package S]
//           [--strategy guided|exhaustive] [--seed K]
//           [--budget N] [--nodes N] [--beam W] [--restarts R]
//           [--iterations I] [--wave W] [--workers N]
//           [--engine reference|parallel|fast] [--reference]
//           [--max-ticks N] [--json] [--metrics-out FILE]
//           [--socket PATH | --tcp-port N]
//
// Without --socket/--tcp-port the search runs in-process (its own worker
// pool); with one of them the request is sent to a running server as a
// `"search"` wire request (docs/SERVICE.md). The report JSON is
// deterministic for a fixed spec — byte-identical across worker counts
// and engine backends — which is what the CI determinism smoke compares;
// wall-clock time goes to stderr only.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/h263.hpp"
#include "apps/jpeg.hpp"
#include "apps/mp3.hpp"
#include "apps/synthetic.hpp"
#include "obs/export.hpp"
#include "psdf/psdf_xml.hpp"
#include "search/search.hpp"
#include "service/client.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "xml/writer.hpp"

namespace segbus::tools {

namespace search_detail {

inline Result<std::vector<std::uint32_t>> parse_u32_list(
    std::string_view text, std::string_view what) {
  std::vector<std::uint32_t> values;
  for (const std::string_view item : split_skip_empty(text, ',')) {
    const std::optional<std::uint64_t> value = parse_uint(trim(item));
    if (!value.has_value() || *value == 0) {
      return invalid_argument_error("invalid --" + std::string(what) +
                                    " entry '" + std::string(item) + "'");
    }
    values.push_back(static_cast<std::uint32_t>(*value));
  }
  if (values.empty()) {
    return invalid_argument_error("empty --" + std::string(what) + " list");
  }
  return values;
}

/// Loads the application: a positional PSDF path, a named --app, or a
/// --synthetic N random layered workload (width 5, so N rounds up to the
/// next multiple of five; seeded by --synth-seed).
inline Result<psdf::PsdfModel> load_application(const CommandLine& cli) {
  const auto package =
      static_cast<std::uint32_t>(cli.int_flag_or("package", 36));
  if (const auto synthetic = cli.int_flag_or("synthetic", 0);
      synthetic > 0) {
    apps::RandomWorkloadOptions options;
    options.seed =
        static_cast<std::uint64_t>(cli.int_flag_or("synth-seed", 7));
    options.min_width = 5;
    options.max_width = 5;
    options.min_layers = options.max_layers = static_cast<std::uint32_t>(
        std::max<std::int64_t>(2, (synthetic + 4) / 5));
    options.package_size = package;
    return apps::synthetic_random(options);
  }
  if (const auto app = cli.flag("app")) {
    if (*app == "mp3") return apps::mp3_decoder_psdf(package);
    if (*app == "jpeg") return apps::jpeg_encoder_psdf(package);
    if (*app == "h263") return apps::h263_encoder_psdf(package);
    return invalid_argument_error("unknown --app '" + *app +
                                  "' (expected mp3, jpeg or h263)");
  }
  if (cli.positional().size() >= 2) {
    return psdf::read_psdf_file(cli.positional()[1]);
  }
  return invalid_argument_error(
      "search needs a <psdf.xml>, --app NAME or --synthetic N");
}

}  // namespace search_detail

/// `segbus_cli search`: guided (or exhaustive) design-space exploration.
inline int run_search_cmd(const CommandLine& cli) {
  auto fail = [](const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return 1;
  };

  auto app = search_detail::load_application(cli);
  if (!app.is_ok()) return fail(app.status());

  const std::string segments = cli.flag_or("segments", "1,2,3");
  std::string packages = cli.flag_or("packages", "");
  if (packages.empty() && cli.flag("package").has_value()) {
    packages = *cli.flag("package");
  }
  const std::string strategy = cli.flag_or("strategy", "guided");

  // Client mode: ship the search to a running server over the wire.
  const auto tcp_port =
      static_cast<std::uint16_t>(cli.int_flag_or("tcp-port", 0));
  const std::string socket = cli.flag_or("socket", "");
  if (tcp_port != 0 || !socket.empty()) {
    service::JobRequest request;
    request.id = cli.flag_or("id", "cli-search");
    request.kind = "search";
    request.psdf_xml = xml::write_document(psdf::to_xml(*app));
    request.engine = cli.flag_or("engine", "");
    request.reference_timing = cli.bool_flag_or("reference", false);
    request.max_ticks =
        static_cast<std::uint64_t>(cli.int_flag_or("max-ticks", 0));
    request.search.segments = segments;
    request.search.packages = packages;
    request.search.strategy = strategy;
    request.search.seed =
        static_cast<std::uint64_t>(cli.int_flag_or("seed", 1));
    request.search.max_emulations =
        static_cast<std::uint64_t>(cli.int_flag_or("budget", 0));
    request.search.max_nodes =
        static_cast<std::uint64_t>(cli.int_flag_or("nodes", 0));
    request.search.beam_width =
        static_cast<std::uint32_t>(cli.int_flag_or("beam", 8));
    request.search.anneal_restarts =
        static_cast<std::uint32_t>(cli.int_flag_or("restarts", 4));
    request.search.anneal_iterations =
        static_cast<std::uint64_t>(cli.int_flag_or("iterations", 20000));

    Result<service::Client> client =
        tcp_port != 0 ? service::Client::connect_tcp(tcp_port)
                      : service::Client::connect_unix(socket);
    if (!client.is_ok()) return fail(client.status());
    auto response = client->call(request);
    if (!response.is_ok()) return fail(response.status());
    if (!response->ok) {
      std::fprintf(stderr, "search failed [%s]: %s\n",
                   response->error_code.c_str(),
                   response->error_message.c_str());
      return 2;
    }
    if (cli.bool_flag_or("json", false)) {
      std::printf("%s\n", response->report_json.c_str());
      return 0;
    }
    auto report = JsonValue::parse(response->report_json);
    if (!report.is_ok()) return fail(report.status());
    std::printf("%s\n", report->to_string(/*pretty=*/true).c_str());
    std::printf("winner digest: %s (%.3f us)\n", response->digest.c_str(),
                static_cast<double>(response->execution_time.count()) /
                    1e6);
    return 0;
  }

  // Local mode.
  search::SearchSpec spec;
  auto segment_counts =
      search_detail::parse_u32_list(segments, "segments");
  if (!segment_counts.is_ok()) return fail(segment_counts.status());
  spec.segment_counts = std::move(*segment_counts);
  if (!packages.empty()) {
    auto package_sizes =
        search_detail::parse_u32_list(packages, "packages");
    if (!package_sizes.is_ok()) return fail(package_sizes.status());
    spec.package_sizes = std::move(*package_sizes);
  }
  auto parsed_strategy = search::parse_strategy(strategy);
  if (!parsed_strategy.is_ok()) return fail(parsed_strategy.status());
  spec.strategy = *parsed_strategy;
  spec.seed = static_cast<std::uint64_t>(cli.int_flag_or("seed", 1));
  spec.max_emulations =
      static_cast<std::uint64_t>(cli.int_flag_or("budget", 0));
  spec.max_nodes = static_cast<std::uint64_t>(cli.int_flag_or("nodes", 0));
  spec.beam_width = static_cast<std::uint32_t>(cli.int_flag_or("beam", 8));
  spec.anneal_restarts =
      static_cast<std::uint32_t>(cli.int_flag_or("restarts", 4));
  spec.anneal_iterations =
      static_cast<std::uint64_t>(cli.int_flag_or("iterations", 20000));
  spec.wave_size = static_cast<std::size_t>(cli.int_flag_or("wave", 16));
  spec.workers = static_cast<unsigned>(cli.int_flag_or("workers", 4));
  spec.engine = cli.flag_or("engine", "fast");
  spec.reference_timing = cli.bool_flag_or("reference", false);
  spec.max_ticks =
      static_cast<std::uint64_t>(cli.int_flag_or("max-ticks", 20'000'000));

  obs::MetricsRegistry metrics;
  const std::string metrics_out = cli.flag_or("metrics-out", "");
  if (!metrics_out.empty()) spec.metrics = &metrics;

  const auto started = std::chrono::steady_clock::now();
  auto report = search::run_search(*app, spec);
  if (!report.is_ok()) return fail(report.status());
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();

  if (cli.bool_flag_or("json", false)) {
    std::printf("%s\n", search::search_to_json(*report).to_string().c_str());
  } else {
    std::printf("%s", report->render().c_str());
  }
  std::fprintf(stderr, "search wall clock: %.1f ms (%u workers)\n",
               elapsed_ms, spec.workers);
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary);
    out << obs::to_prometheus(metrics);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}

}  // namespace segbus::tools
