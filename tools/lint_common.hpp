// Shared implementation of the static-analysis front ends: the standalone
// segbus_lint tool and `segbus_cli check` parse their own argv but run the
// same analyzer pipeline and use the same output/exit-code contract.
//
// Exit codes:
//   0  analysis ran; no error-severity diagnostics (warnings/notes allowed)
//   1  usage or I/O failure (bad flags, unreadable scheme files)
//   2  analysis ran and found at least one error
#pragma once

#include <cstdio>
#include <string>

#include "analysis/analyzer.hpp"
#include "emu/backend.hpp"
#include "platform/platform_xml.hpp"
#include "psdf/psdf_xml.hpp"
#include "support/cli.hpp"

namespace segbus::tools {

inline int lint_fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

/// `--explain SBxxx`: print the catalogue entry for one code.
inline int explain_code(const std::string& code) {
  const analysis::CatalogEntry* entry = analysis::find_code(code);
  if (entry == nullptr) {
    std::fprintf(stderr, "error: unknown diagnostic code '%s'\n",
                 code.c_str());
    return 1;
  }
  std::printf("%s [%s] (%s)\n  %s\n  (docs/ANALYSIS.md documents a minimal "
              "triggering model)\n",
              std::string(entry->code).c_str(),
              std::string(entry->constraint).c_str(),
              std::string(severity_name(entry->severity)).c_str(),
              std::string(entry->summary).c_str());
  return 0;
}

/// Runs the analyzer over the positional scheme files starting at
/// `arg_offset` (<psdf.xml> [<psm.xml>]). See the exit-code contract above.
inline int run_lint(const CommandLine& cli, std::size_t arg_offset) {
  if (auto code = cli.flag("explain")) return explain_code(*code);
  if (cli.positional().size() <= arg_offset) {
    std::fprintf(stderr,
                 "usage: ... <psdf.xml> [<psm.xml>] [--package S] "
                 "[--reference] [--json] [--no-bounds] [--emulate] "
                 "[--emulator-host] [--explain SBxxx]\n");
    return 1;
  }

  const auto package =
      static_cast<std::uint32_t>(cli.int_flag_or("package", 0));
  analysis::AnalyzerOptions options;
  options.psdf_file = cli.positional()[arg_offset];
  options.include_bounds = cli.bool_flag_or("bounds", true);
  if (cli.bool_flag_or("reference", false)) {
    options.timing = emu::TimingModel::reference();
  }
  // --emulator-host: the bundled emulator's CA reserves whole paths
  // atomically, so the SB050 reservation cycle cannot bite there.
  if (cli.bool_flag_or("emulator-host", false)) {
    options.severity_overrides.emplace("SB050", Severity::kWarning);
  }

  auto app = psdf::read_psdf_file(options.psdf_file, package);
  if (!app.is_ok()) return lint_fail(app.status());

  analysis::AnalysisReport result;
  // --emulate: also run the scheme and report the v2 lower bound's
  // tightness against the measured TCT (only meaningful with a platform).
  Picoseconds emulated{0};
  bool have_emulated = false;
  if (cli.positional().size() > arg_offset + 1) {
    options.psm_file = cli.positional()[arg_offset + 1];
    auto platform = platform::read_platform_file(options.psm_file);
    if (!platform.is_ok()) return lint_fail(platform.status());
    if (package != 0) {
      if (Status status = platform->set_package_size(package);
          !status.is_ok()) {
        return lint_fail(status);
      }
    }
    result = analysis::analyze_system(*app, *platform, options);
    if (cli.bool_flag_or("emulate", false)) {
      auto run = emu::run_emulation(*app, *platform, options.timing);
      if (!run.is_ok()) return lint_fail(run.status());
      emulated = run->total_execution_time;
      have_emulated = run->completed;
    }
  } else {
    result = analysis::analyze_model(*app, options);
  }

  if (cli.bool_flag_or("json", false)) {
    JsonValue root = analysis::report_to_json(result.report);
    if (result.bounds) {
      root.set("bounds", analysis::bounds_to_json(*result.bounds));
      if (have_emulated) {
        root.set("emulated_ps", JsonValue::integer(emulated.count()));
        root.set("tightness",
                 JsonValue::number(result.bounds->tightness(emulated)));
      }
    }
    if (result.occupancy) {
      root.set("occupancy", analysis::occupancy_to_json(*result.occupancy));
    }
    std::printf("%s\n", root.to_string(/*pretty=*/true).c_str());
  } else {
    std::printf("%s", analysis::render_text(result.report).c_str());
    if (result.bounds) {
      std::printf("%s\n", result.bounds->to_string().c_str());
      if (have_emulated) {
        std::printf("emulated = %lld ps, lower-bound tightness = %.3f\n",
                    static_cast<long long>(emulated.count()),
                    result.bounds->tightness(emulated));
      }
    }
    if (result.occupancy && !result.occupancy->border_units.empty()) {
      std::printf("%s", result.occupancy->render().c_str());
    }
  }
  return result.ok() ? 0 : 2;
}

}  // namespace segbus::tools
