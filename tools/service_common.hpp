// Shared implementation of the `segbus_cli serve` and `segbus_cli submit`
// subcommands (kept out of segbus_cli.cpp so the service wiring — signal
// handling in particular — stays reviewable in one place).
//
//   serve  [--socket PATH] [--tcp [--port N]] [--workers N] [--queue N]
//          [--cache-entries N] [--cache-bytes N] [--max-ticks N]
//          [--engine reference|parallel|fast] [--deadline-ms N]
//          [--metrics-out FILE] [--trace-sample R]
//          [--flight-recorder [--flight-dir DIR]]
//   submit <psdf.xml> <psm.xml> [--socket PATH | --tcp-port N]
//          [--package S] [--reference] [--engine reference|parallel|fast]
//          [--max-ticks N] [--id ID] [--json] [--trace out.json]
//   submit --ping|--stats [--socket PATH | --tcp-port N]
//   stats  [--socket PATH | --tcp-port N] [--json]
//
// `serve` installs SIGINT/SIGTERM handlers that trigger a *graceful drain*:
// new submissions are rejected with "draining", queued and in-flight jobs
// finish, final metrics are flushed (stderr summary, plus --metrics-out as
// a Prometheus text file), and the process exits 0.
#pragma once

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "emu/backend.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "search/service.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "stoch/service.hpp"
#include "support/build_info.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/status.hpp"
#include "support/strings.hpp"

namespace segbus::tools {

namespace service_detail {

/// Write end of the self-pipe the signal handler pokes. The handler runs
/// async-signal-safely: one write(2), nothing else.
inline int g_signal_pipe_write = -1;

inline void on_shutdown_signal(int) {
  const char byte = 's';
  if (g_signal_pipe_write >= 0) {
    (void)!::write(g_signal_pipe_write, &byte, 1);
  }
}

inline Result<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found_error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

/// Writes the server's span tree to `path` and prints the indented tree.
/// Returns false (with a message) when the server sent no trace back.
inline bool report_trace(const std::string& trace_json,
                         const std::string& path) {
  if (trace_json.empty()) {
    std::fprintf(stderr,
                 "warning: server returned no trace (span was not "
                 "sampled?); nothing written to %s\n",
                 path.c_str());
    return false;
  }
  auto doc = JsonValue::parse(trace_json);
  if (!doc.is_ok()) {
    std::fprintf(stderr, "warning: bad trace payload: %s\n",
                 doc.status().to_string().c_str());
    return false;
  }
  if (Status written =
          obs::write_text_file(path, doc->to_string(/*pretty=*/true) + "\n");
      !written.is_ok()) {
    std::fprintf(stderr, "warning: %s\n", written.to_string().c_str());
    return false;
  }
  if (auto spans = obs::span_records_from_json(*doc); spans.is_ok()) {
    std::printf("server span tree:\n%s", obs::render_span_tree(*spans).c_str());
  }
  std::printf("trace written to %s\n", path.c_str());
  return true;
}

}  // namespace service_detail

/// `segbus_cli serve`: blocks until SIGINT/SIGTERM, then drains.
inline int run_serve(const CommandLine& cli) {
  service::ServerConfig config;
  config.workers = static_cast<unsigned>(cli.int_flag_or("workers", 2));
  config.queue_depth =
      static_cast<std::size_t>(cli.int_flag_or("queue", 16));
  config.cache_entries =
      static_cast<std::size_t>(cli.int_flag_or("cache-entries", 256));
  config.cache_bytes =
      static_cast<std::size_t>(cli.int_flag_or("cache-bytes", 0));
  config.max_ticks =
      static_cast<std::uint64_t>(cli.int_flag_or("max-ticks", 20'000'000));
  config.queue_deadline_ms = cli.int_flag_or("deadline-ms", 30'000);
  config.trace_sample_ratio = cli.double_flag_or("trace-sample", 0.0);
  config.flight_recorder = cli.bool_flag_or("flight-recorder", false);
  config.flight_recorder_dir = cli.flag_or("flight-dir", ".");
  // The search and stoch subsystems sit above the service layer; the
  // hooks break the dependency cycle (see ServerConfig::search_handler
  // and ServerConfig::estimate_handler).
  config.search_handler = search::service_search_handler;
  config.estimate_handler = stoch::service_estimate_handler;
  if (auto engine = cli.flag("engine")) {
    auto backend = emu::parse_engine_backend(*engine);
    if (!backend) {
      std::fprintf(stderr,
                   "error: unknown --engine '%s' (want reference | "
                   "parallel | fast)\n",
                   engine->c_str());
      return 1;
    }
    config.default_backend.backend = *backend;
  }

  service::ListenConfig listen;
  listen.tcp = cli.bool_flag_or("tcp", false);
  listen.tcp_port = static_cast<std::uint16_t>(cli.int_flag_or("port", 0));
  listen.unix_path = cli.flag_or("socket", "");
  if (listen.unix_path.empty() && !listen.tcp) {
    listen.unix_path = "segbus-service.sock";
  }

  auto server = service::SocketServer::start(config, std::move(listen));
  if (!server.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 server.status().to_string().c_str());
    return 1;
  }
  if (!(*server)->unix_path().empty()) {
    std::fprintf(stderr, "serving on unix socket %s\n",
                 (*server)->unix_path().c_str());
  }
  if ((*server)->tcp_port() != 0) {
    std::fprintf(stderr, "serving on 127.0.0.1:%u\n",
                 (*server)->tcp_port());
  }

  // Self-pipe: the handler only writes a byte; the main thread blocks on
  // the read end and performs the actual drain outside signal context.
  int signal_pipe[2] = {-1, -1};
  if (::pipe(signal_pipe) != 0) {
    std::fprintf(stderr, "error: pipe: signal wiring failed\n");
    return 1;
  }
  service_detail::g_signal_pipe_write = signal_pipe[1];
  struct sigaction action {};
  action.sa_handler = service_detail::on_shutdown_signal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  char byte = 0;
  while (::read(signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::fprintf(stderr, "draining: rejecting new jobs, finishing %s\n",
               "queued and in-flight work");
  (*server)->jobs().begin_drain();
  (*server)->shutdown(/*drain=*/true);

  const std::string stats =
      (*server)->jobs().stats_json().to_string(/*pretty=*/true);
  std::fprintf(stderr, "final stats:\n%s\n", stats.c_str());
  const std::string metrics_out = cli.flag_or("metrics-out", "");
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary);
    out << obs::to_prometheus((*server)->jobs().metrics_snapshot());
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
  }
  ::close(signal_pipe[0]);
  ::close(signal_pipe[1]);
  service_detail::g_signal_pipe_write = -1;
  return 0;
}

/// `segbus_cli submit`: one request against a running server.
inline int run_submit(const CommandLine& cli) {
  auto fail = [](const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return 1;
  };

  service::JobRequest request;
  request.id = cli.flag_or("id", "cli");
  if (cli.bool_flag_or("ping", false)) {
    request.kind = "ping";
  } else if (cli.bool_flag_or("stats", false)) {
    request.kind = "stats";
  } else {
    if (cli.positional().size() < 3) {
      std::fprintf(stderr,
                   "usage: segbus_cli submit <psdf.xml> <psm.xml> "
                   "[--socket PATH | --tcp-port N] [--package S] "
                   "[--reference] [--engine reference|parallel|fast] "
                   "[--max-ticks N] [--json]\n");
      return 1;
    }
    auto psdf = service_detail::read_text_file(cli.positional()[1]);
    if (!psdf.is_ok()) return fail(psdf.status());
    auto psm = service_detail::read_text_file(cli.positional()[2]);
    if (!psm.is_ok()) return fail(psm.status());
    request.psdf_xml = std::move(*psdf);
    request.psm_xml = std::move(*psm);
    request.package_size =
        static_cast<std::uint32_t>(cli.int_flag_or("package", 0));
    request.reference_timing = cli.bool_flag_or("reference", false);
    request.engine = cli.flag_or("engine", "");
    // --parallel is the legacy spelling of --engine parallel.
    if (request.engine.empty() && cli.bool_flag_or("parallel", false)) {
      request.engine = "parallel";
    }
    request.max_ticks =
        static_cast<std::uint64_t>(cli.int_flag_or("max-ticks", 0));
  }
  const std::string trace_out = cli.flag_or("trace", "");
  request.trace = !trace_out.empty();

  const auto tcp_port =
      static_cast<std::uint16_t>(cli.int_flag_or("tcp-port", 0));
  Result<service::Client> client =
      tcp_port != 0
          ? service::Client::connect_tcp(tcp_port)
          : service::Client::connect_unix(
                cli.flag_or("socket", "segbus-service.sock"));
  if (!client.is_ok()) return fail(client.status());

  if (cli.bool_flag_or("json", false)) {
    auto line = client->call_raw(service::encode_request(request));
    if (!line.is_ok()) return fail(line.status());
    std::printf("%s\n", line->c_str());
    // Exit status still reflects the outcome inside the line.
    auto response = service::parse_response(*line);
    if (request.trace && response.is_ok() && response->ok) {
      service_detail::report_trace(response->trace_json, trace_out);
    }
    return response.is_ok() && response->ok ? 0 : 2;
  }

  auto response = client->call(request);
  if (!response.is_ok()) return fail(response.status());
  if (!response->ok) {
    std::fprintf(stderr, "job failed [%s]: %s\n",
                 response->error_code.c_str(),
                 response->error_message.c_str());
    return 2;
  }
  if (request.kind == "ping") {
    std::printf("pong (queue %.2f ms)\n", response->queue_ms);
    return 0;
  }
  if (request.kind == "stats") {
    std::printf("%s\n", response->report_json.c_str());
    return 0;
  }
  std::printf("execution time: %.3f us%s\n",
              static_cast<double>(response->execution_time.count()) / 1e6,
              response->cache_hit ? "  (cache hit)" : "");
  std::printf("digest: %s\n", response->digest.c_str());
  std::printf("queue %.2f ms, run %.2f ms\n", response->queue_ms,
              response->run_ms);
  if (!response->trace_id.empty()) {
    std::printf("trace id: %s\n", response->trace_id.c_str());
  }
  if (request.trace) {
    service_detail::report_trace(response->trace_json, trace_out);
  }
  return 0;
}

/// `segbus_cli stats`: fetches the live-introspection payload from a
/// running server and pretty-prints it (or dumps the raw JSON with
/// --json).
inline int run_stats(const CommandLine& cli) {
  auto fail = [](const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return 1;
  };

  service::JobRequest request;
  request.id = cli.flag_or("id", "cli-stats");
  request.kind = "stats";
  const auto tcp_port =
      static_cast<std::uint16_t>(cli.int_flag_or("tcp-port", 0));
  Result<service::Client> client =
      tcp_port != 0
          ? service::Client::connect_tcp(tcp_port)
          : service::Client::connect_unix(
                cli.flag_or("socket", "segbus-service.sock"));
  if (!client.is_ok()) return fail(client.status());
  auto response = client->call(request);
  if (!response.is_ok()) return fail(response.status());
  if (!response->ok) {
    std::fprintf(stderr, "stats failed [%s]: %s\n",
                 response->error_code.c_str(),
                 response->error_message.c_str());
    return 2;
  }
  auto doc = JsonValue::parse(response->report_json);
  if (!doc.is_ok()) return fail(doc.status());
  if (cli.bool_flag_or("json", false)) {
    std::printf("%s\n", doc->to_string(/*pretty=*/true).c_str());
    return 0;
  }

  auto u64 = [&](const char* section, std::string_view key) {
    const JsonValue* group = doc->find(section);
    const JsonValue* value = group == nullptr ? nullptr : group->find(key);
    return value != nullptr && value->is_number() ? value->as_uint64() : 0;
  };
  auto num = [&](const char* section, std::string_view key) {
    const JsonValue* group = doc->find(section);
    const JsonValue* value = group == nullptr ? nullptr : group->find(key);
    return value != nullptr && value->is_number() ? value->as_number() : 0.0;
  };
  auto text = [&](const char* section, std::string_view key) {
    const JsonValue* group = doc->find(section);
    const JsonValue* value = group == nullptr ? nullptr : group->find(key);
    return std::string(value != nullptr && value->is_string()
                           ? value->as_string()
                           : "?");
  };

  std::printf("build    %s (%s, %s, %s)\n", text("build", "version").c_str(),
              text("build", "revision").c_str(),
              text("build", "compiler").c_str(),
              text("build", "build_type").c_str());
  std::printf("queue    depth %llu/%llu, %llu in flight, %u workers%s\n",
              static_cast<unsigned long long>(u64("queue", "depth")),
              static_cast<unsigned long long>(u64("queue", "capacity")),
              static_cast<unsigned long long>(u64("queue", "in_flight")),
              static_cast<unsigned>(u64("queue", "workers")),
              [&] {
                const JsonValue* group = doc->find("queue");
                const JsonValue* draining =
                    group == nullptr ? nullptr : group->find("draining");
                return draining != nullptr && draining->is_bool() &&
                               draining->as_bool()
                           ? " [draining]"
                           : "";
              }());
  std::printf("jobs     %llu completed, %llu cache hits, %llu failed, "
              "%llu tick-limit\n",
              static_cast<unsigned long long>(u64("jobs", "completed")),
              static_cast<unsigned long long>(u64("jobs", "cache_hit")),
              static_cast<unsigned long long>(u64("jobs", "failed")),
              static_cast<unsigned long long>(u64("jobs", "tick_limit")));
  std::printf("rejected %llu backpressure, %llu draining, %llu deadline, "
              "%llu malformed\n",
              static_cast<unsigned long long>(
                  u64("jobs", "rejected_backpressure")),
              static_cast<unsigned long long>(
                  u64("jobs", "rejected_draining")),
              static_cast<unsigned long long>(
                  u64("jobs", "rejected_deadline")),
              static_cast<unsigned long long>(
                  u64("jobs", "rejected_requests")));
  std::printf("cache    %llu hits / %llu misses (%.0f%%), %llu entries, "
              "%llu evictions, %llu bytes\n",
              static_cast<unsigned long long>(u64("cache", "hits")),
              static_cast<unsigned long long>(u64("cache", "misses")),
              num("cache", "hit_rate") * 100.0,
              static_cast<unsigned long long>(u64("cache", "entries")),
              static_cast<unsigned long long>(u64("cache", "evictions")),
              static_cast<unsigned long long>(u64("cache", "bytes")));
  std::printf("latency  run p50 %.2f ms, p99 %.2f ms; queue p50 %.2f ms, "
              "p99 %.2f ms (n=%llu)\n",
              num("latency", "run_p50_ms"), num("latency", "run_p99_ms"),
              num("latency", "queue_p50_ms"), num("latency", "queue_p99_ms"),
              static_cast<unsigned long long>(u64("latency", "count")));
  if (const JsonValue* phases = doc->find("phases");
      phases != nullptr && phases->is_object() && !phases->keys().empty()) {
    std::printf("phases\n");
    for (std::string_view phase : phases->keys()) {
      const JsonValue& snapshot = phases->get(phase);
      const JsonValue* count = snapshot.find("count");
      const JsonValue* p50 = snapshot.find("p50_ms");
      const JsonValue* p99 = snapshot.find("p99_ms");
      std::printf("  %-12s p50 %8.3f ms  p99 %8.3f ms  (n=%llu)\n",
                  std::string(phase).c_str(),
                  p50 != nullptr ? p50->as_number() : 0.0,
                  p99 != nullptr ? p99->as_number() : 0.0,
                  static_cast<unsigned long long>(
                      count != nullptr ? count->as_uint64() : 0));
    }
  }
  if (const JsonValue* search = doc->find("search");
      search != nullptr && search->is_object()) {
    std::printf("search   %llu emulated, %llu deduplicated, %llu "
                "bound-pruned, %llu oracle-pruned\n",
                static_cast<unsigned long long>(u64("search", "emulated")),
                static_cast<unsigned long long>(
                    u64("search", "deduplicated")),
                static_cast<unsigned long long>(
                    u64("search", "bound_pruned")),
                static_cast<unsigned long long>(
                    u64("search", "oracle_pruned")));
  }
  if (const JsonValue* estimate = doc->find("estimate");
      estimate != nullptr && estimate->is_object()) {
    std::printf("estimate %llu replications emulated, %llu deduplicated\n",
                static_cast<unsigned long long>(
                    u64("estimate", "emulated")),
                static_cast<unsigned long long>(
                    u64("estimate", "deduplicated")));
  }
  std::printf("trace    sample ratio %.3f, %llu dropped spans, flight "
              "recorder %s\n",
              num("trace", "sample_ratio"),
              static_cast<unsigned long long>(
                  u64("trace", "dropped_spans")),
              [&] {
                const JsonValue* group = doc->find("trace");
                const JsonValue* fr =
                    group == nullptr ? nullptr : group->find("flight_recorder");
                return fr != nullptr && fr->is_bool() && fr->as_bool()
                           ? "on"
                           : "off";
              }());
  return 0;
}

}  // namespace segbus::tools
