// segbus_lint — static analysis of SegBus models without emulating them.
//
// usage: segbus_lint <psdf.xml> [<psm.xml>] [options]
//        segbus_lint --explain SBxxx
//
// With only a PSDF scheme it validates and lints the application model;
// with a PSM scheme as well it additionally checks the platform structure,
// the mapping, the clock domains and the inter-segment path reservations,
// and prints the static performance bounds for the mapped system.
//
// Options:
//   --package S       override both schemes' package size
//   --reference       use the reference timing model for the upper bound
//   --json            machine-readable report (diagnostics + bounds)
//   --no-bounds       skip the static performance bounds
//   --emulator-host   downgrade SB050 to a warning (atomic path reservation)
//   --explain SBxxx   describe one catalogue code and exit
//   --version         print the build identity and exit
//
// Exit status: 0 clean, 1 usage/I/O failure, 2 diagnosed errors.
#include <cstdio>

#include "lint_common.hpp"
#include "support/build_info.hpp"

int main(int argc, char** argv) {
  auto cli = segbus::CommandLine::parse(argc, argv);
  if (!cli.is_ok()) return segbus::tools::lint_fail(cli.status());
  if (cli->bool_flag_or("version", false)) {
    std::printf("%s\n", segbus::build_info_line().c_str());
    return 0;
  }
  return segbus::tools::run_lint(*cli, 0);
}
