// segbus_fuzz — scenario fuzzing harness for the SegBus estimation stack.
//
// Generates seeded random (PSDF, platform, timing) scenarios, runs each
// through the differential oracle (static bounds vs. emulation, package
// conservation, fingerprint equivalence, clock scaling, serial-vs-parallel
// engine), shrinks failures to minimal repros and archives them as corpus
// entries. `--replay DIR` re-checks a corpus instead. All flags are shared
// with `segbus_cli fuzz` — see tools/fuzz_common.hpp for the reference
// list, docs/FUZZING.md for the workflow.
#include <cstdio>

#include "fuzz_common.hpp"
#include "support/build_info.hpp"

int main(int argc, char** argv) {
  auto cli = segbus::CommandLine::parse(argc, argv);
  if (!cli.is_ok()) return segbus::tools::fuzz_fail(cli.status());
  if (cli->bool_flag_or("version", false)) {
    std::printf("%s\n", segbus::build_info_line().c_str());
    return 0;
  }
  return segbus::tools::run_fuzz(*cli);
}
