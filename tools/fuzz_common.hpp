// Shared implementation of the fuzzing front ends: the standalone
// segbus_fuzz tool and `segbus_cli fuzz` parse their own argv but run the
// same campaign/replay pipeline with the same flags and exit codes.
//
// Campaign mode (default):
//   --seed N            campaign seed (default 1); scenario i uses
//                       derive_seed(seed, i)
//   --count N           scenarios to check (default 1000)
//   --workers N         worker threads (default 0 = hardware concurrency)
//   --time-budget S     stop after S wall-clock seconds (default 0 = none)
//   --max-failures N    stop after N failing scenarios (default 8, 0 = all)
//   --parallel-every N  run the parallel-equivalence check on every Nth
//                       scenario (default 16, 0 = never)
//   --engine NAME       backend for the oracle's base run: reference
//                       (default) | parallel | fast. The fast-equivalence
//                       invariant always compares against whichever of
//                       {reference, fast} the base run did not use.
//   --no-shrink         keep failing scenarios unshrunk
//   --corpus DIR        archive shrunken repros as corpus entries
//   --log FILE          JSONL campaign log (one line per failure + summary)
//   --metrics-out FILE  Prometheus text export of the campaign counters
//   --max-processes N / --max-segments N / --max-items N
//                       generator distribution caps
//   --no-bounds / --no-conservation / --no-fingerprint / --no-clock-scaling
//   / --no-fast / --no-dominance / --no-stoch-degenerate
//   / --no-mode-chaining / --no-replication-bounds
//                       disable individual oracle invariants
//   --replication-samples N
//                       stochastic replications checked per scenario by the
//                       replication-bounds invariant (default 3)
//   --stoch-prob P / --modes-prob P
//                       generator probability of a stochastic spec /
//                       a mode table per scenario (defaults 0.35 / 0.3)
//   --trace             tag every scenario with its seed-derived trace id,
//                       record per-check oracle spans, and archive the span
//                       tree (<stem>.trace.json) plus a flight-recorder
//                       dump (<stem>.flightrec.jsonl) next to each corpus
//                       repro that still violates
//
// Replay mode:
//   --replay DIR        re-run every corpus entry under DIR through the
//                       oracle instead of fuzzing (honours --trace too)
//
// Exit codes: 0 all checks passed, 1 usage or harness failure, 2 at least
// one invariant violation (campaign) or non-waived replay failure.
#pragma once

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "emu/backend.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "scen/campaign.hpp"
#include "scen/corpus.hpp"
#include "support/cli.hpp"

namespace segbus::tools {

inline int fuzz_fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

inline scen::OracleOptions fuzz_oracle_options(const CommandLine& cli) {
  scen::OracleOptions oracle;
  oracle.check_bounds = cli.bool_flag_or("bounds", true);
  oracle.check_conservation = cli.bool_flag_or("conservation", true);
  oracle.check_fingerprint = cli.bool_flag_or("fingerprint", true);
  oracle.check_clock_scaling = cli.bool_flag_or("clock-scaling", true);
  oracle.check_fast = cli.bool_flag_or("fast", true);
  oracle.check_dominance = cli.bool_flag_or("dominance", true);
  oracle.check_stoch_degenerate = cli.bool_flag_or("stoch-degenerate", true);
  oracle.check_mode_chaining = cli.bool_flag_or("mode-chaining", true);
  oracle.check_replication_bounds =
      cli.bool_flag_or("replication-bounds", true);
  oracle.replication_samples = static_cast<std::uint32_t>(
      cli.int_flag_or("replication-samples", 3));
  if (auto engine = cli.flag("engine")) {
    if (auto backend = emu::parse_engine_backend(*engine)) {
      oracle.backend.backend = *backend;
    } else {
      std::fprintf(stderr,
                   "warning: unknown --engine '%s' (want reference | "
                   "parallel | fast); using reference\n",
                   engine->c_str());
    }
  }
  return oracle;
}

/// Tracer config for `--trace` runs. Scenario spans are opened
/// force-sampled, so the ratio only governs incidental traces; the flight
/// recorder backs every span with a crash-dumpable event ring.
inline obs::Tracer::Config fuzz_tracer_config() {
  obs::Tracer::Config config;
  config.sample_ratio = 1.0;
  config.flight_recorder = true;
  return config;
}

inline int run_replay(const CommandLine& cli, const std::string& directory) {
  scen::OracleOptions oracle = fuzz_oracle_options(cli);
  std::optional<obs::Tracer> tracer;
  if (cli.bool_flag_or("trace", false)) {
    obs::FlightRecorder::instance().enable();
    tracer.emplace(fuzz_tracer_config());
    oracle.tracer = &*tracer;
  }
  auto report = scen::replay_corpus(directory, oracle);
  if (!report.is_ok()) return fuzz_fail(report.status());
  for (const scen::ReplayOutcome& outcome : report->outcomes) {
    if (outcome.passed()) {
      std::printf("%-40s %s\n", outcome.stem.c_str(),
                  outcome.waived ? "pass (waived — waiver may be stale)"
                                 : "pass");
      continue;
    }
    for (const scen::Violation& violation : outcome.violations) {
      std::printf("%-40s %s: %s [%s]\n", outcome.stem.c_str(),
                  std::string(scen::invariant_name(violation.invariant))
                      .c_str(),
                  violation.detail.c_str(),
                  outcome.waived ? "waived" : "FAIL");
    }
    if (!outcome.trace_id.empty()) {
      std::printf("%-40s trace %s (%s/%s.trace.json)\n", "",
                  outcome.trace_id.c_str(), directory.c_str(),
                  outcome.stem.c_str());
    }
  }
  std::printf("replayed %zu corpus entries: %zu failed, %zu stale waivers\n",
              report->entries, report->failures, report->stale_waivers);
  return report->passed() ? 0 : 2;
}

inline int run_fuzz(const CommandLine& cli) {
  if (auto replay = cli.flag("replay")) return run_replay(cli, *replay);

  scen::CampaignOptions options;
  options.seed = static_cast<std::uint64_t>(cli.int_flag_or("seed", 1));
  options.count = static_cast<std::uint64_t>(cli.int_flag_or("count", 1000));
  options.workers = static_cast<unsigned>(cli.int_flag_or("workers", 0));
  options.time_budget_seconds = cli.double_flag_or("time-budget", 0.0);
  options.max_failures =
      static_cast<std::uint64_t>(cli.int_flag_or("max-failures", 8));
  options.parallel_sample_period =
      static_cast<std::uint64_t>(cli.int_flag_or("parallel-every", 16));
  options.shrink = cli.bool_flag_or("shrink", true);
  options.corpus_dir = cli.flag_or("corpus", "");
  options.oracle = fuzz_oracle_options(cli);
  options.generator.max_processes = static_cast<std::uint32_t>(
      cli.int_flag_or("max-processes",
                      options.generator.max_processes));
  options.generator.max_segments = static_cast<std::uint32_t>(
      cli.int_flag_or("max-segments", options.generator.max_segments));
  options.generator.max_items = static_cast<std::uint64_t>(
      cli.int_flag_or("max-items",
                      static_cast<std::int64_t>(options.generator.max_items)));
  options.generator.stochastic_probability = cli.double_flag_or(
      "stoch-prob", options.generator.stochastic_probability);
  options.generator.multimode_probability = cli.double_flag_or(
      "modes-prob", options.generator.multimode_probability);
  std::optional<obs::Tracer> tracer;
  if (cli.bool_flag_or("trace", false)) {
    obs::FlightRecorder::instance().enable();
    tracer.emplace(fuzz_tracer_config());
    options.tracer = &*tracer;
  }

  std::ofstream log_file;
  std::ostream* log = nullptr;
  if (auto log_path = cli.flag("log")) {
    log_file.open(*log_path, std::ios::trunc);
    if (!log_file) {
      std::fprintf(stderr, "error: cannot open log '%s'\n", log_path->c_str());
      return 1;
    }
    log = &log_file;
  }

  auto report = scen::run_campaign(options, log);
  if (!report.is_ok()) return fuzz_fail(report.status());

  for (const scen::CampaignFailure& failure : report->failures) {
    std::printf("FAIL #%llu seed=%llu %s: %s\n  scenario: %s\n",
                static_cast<unsigned long long>(failure.index),
                static_cast<unsigned long long>(failure.scenario_seed),
                std::string(scen::invariant_name(failure.invariant)).c_str(),
                failure.detail.c_str(), failure.original.c_str());
    if (!failure.shrunk.empty()) {
      std::printf("  shrunk:   %s\n", failure.shrunk.c_str());
    }
    if (!failure.corpus_stem.empty()) {
      std::printf("  corpus:   %s\n", failure.corpus_stem.c_str());
    }
    if (!failure.trace_id.empty()) {
      std::printf("  trace:    %s\n", failure.trace_id.c_str());
    }
  }
  std::printf(
      "%llu scenarios, %llu invariant checks (%llu skipped), "
      "%llu violations in %.1fs%s%s\n",
      static_cast<unsigned long long>(report->scenarios),
      static_cast<unsigned long long>(report->invariants_checked),
      static_cast<unsigned long long>(report->invariants_skipped),
      static_cast<unsigned long long>(report->violations),
      report->elapsed_seconds,
      report->time_budget_hit ? " [time budget hit]" : "",
      report->failure_cap_hit ? " [failure cap hit]" : "");

  if (auto metrics_path = cli.flag("metrics-out")) {
    Status written = obs::write_text_file(
        *metrics_path, obs::to_prometheus(report->metrics));
    if (!written.is_ok()) return fuzz_fail(written);
  }
  return report->passed() ? 0 : 2;
}

}  // namespace segbus::tools
