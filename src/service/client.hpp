// Blocking NDJSON client for the estimation service. One connection, one
// outstanding request at a time (the protocol answers in order, so callers
// wanting pipelining open one Client per worker thread — see
// bench/bench_service.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"
#include "support/status.hpp"

namespace segbus::service {

/// Move-only connection handle to a SocketServer endpoint.
class Client {
 public:
  static Result<Client> connect_unix(const std::string& path);
  static Result<Client> connect_tcp(std::uint16_t port,
                                    const std::string& host = "127.0.0.1");

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request line and blocks for its response line.
  Result<JobResponse> call(const JobRequest& request);

  /// Raw variant: sends `line` (newline appended) and returns the response
  /// line verbatim. Used by tests probing wire-level behaviour.
  Result<std::string> call_raw(const std::string& line);

  bool connected() const noexcept { return fd_ >= 0; }
  void close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last newline
};

}  // namespace segbus::service
