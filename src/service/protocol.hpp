// Wire protocol of the estimation service: newline-delimited JSON over a
// byte stream (TCP loopback or a unix-domain socket). One request line in,
// one response line out, in order; see docs/SERVICE.md for the full field
// reference and example sessions.
//
// Request (kind "submit" unless stated):
//   {"id":"j1","psdf_xml":"<...>","psm_xml":"<...>","package_size":36,
//    "reference":false,"engine":"fast","max_ticks":0}
//   {"id":"s1","kind":"stats"}        server counters snapshot
//   {"id":"p1","kind":"ping"}         liveness probe
//   {"id":"q1","kind":"search","psdf_xml":"<...>","segments":"2,3",
//    "packages":"36,18","strategy":"guided","seed":1}   guided search
//   {"id":"e1","kind":"estimate","psdf_xml":"<...>","psm_xml":"<...>",
//    "compute":"pareto:3,0.667","replications":64,"rhw":0.05,"seed":1}
//                                     replicated-run confidence estimation
//
// Response:
//   {"id":"j1","ok":true,"cache_hit":false,"digest":"<sha256>",
//    "execution_ps":489792303,"queue_ms":0.1,"run_ms":12.7,
//    "report":{...result_to_json...}}
//   {"id":"j2","ok":false,"error":{"code":"backpressure",
//    "message":"job queue is full (depth 16)"}}
//
// Error codes: "parse" (bad request line), "validation" (model analysis
// failed), "backpressure" (bounded queue full), "draining" (server is
// shutting down), "deadline" (queue-wait deadline exceeded), "tick-limit"
// (per-job tick budget exhausted — the cancellation mechanism), and
// "internal".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/json.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::service {

/// Parameters of a `"search"` request (kind == "search") — a guided
/// design-space search over placements, platform sizes and package sizes
/// (see docs/SEARCH.md). List-valued fields are comma-separated strings.
struct SearchParams {
  std::string segments = "1,2,3";   ///< platform sizes to explore
  std::string packages;             ///< package sizes ("" = the scheme's)
  std::string strategy = "guided";  ///< "guided" | "exhaustive"
  std::uint64_t seed = 1;            ///< heuristic substream seed
  std::uint64_t max_emulations = 0;  ///< engine-run budget (0 = unlimited)
  std::uint64_t max_nodes = 0;       ///< node-expansion budget (0 = unlimited)
  std::uint32_t beam_width = 8;
  std::uint32_t anneal_restarts = 4;
  std::uint64_t anneal_iterations = 20000;
};

/// Parameters of an `"estimate"` request (kind == "estimate") — a
/// replicated-run estimation over a stochastic workload spec, optionally
/// multi-mode (see docs/WORKLOADS.md). Distribution fields use the
/// stoch::Distribution spec-string grammar ("pareto:3,0.667").
struct EstimateParams {
  std::string compute = "point:1";  ///< compute-scale distribution
  std::string items = "point:1";    ///< item-count-scale distribution
  std::uint64_t seed = 1;           ///< replication/schedule substream seed
  std::uint32_t min_replications = 8;
  std::uint32_t max_replications = 64;
  std::uint32_t round_replications = 8;
  double confidence = 0.95;
  /// Stopping target for half_width / mean (0 = run max_replications).
  double target_relative_half_width = 0.0;
  /// Mode table document (psdf::modes_to_xml); "" = static estimation.
  std::string modes_xml;
  /// Seeded mode-schedule length (modes_xml only).
  std::uint32_t schedule_length = 4;
};

/// One estimation job (or control request) as submitted by a client.
struct JobRequest {
  std::string id;            ///< client correlation id, echoed back
  /// "submit" | "stats" | "ping" | "search" | "estimate"
  std::string kind = "submit";
  std::string psdf_xml;      ///< PSDF scheme document
  std::string psm_xml;       ///< PSM scheme document
  std::uint32_t package_size = 0;  ///< nonzero overrides both documents
  bool reference_timing = false;   ///< reference instead of emulator preset
  /// Engine backend: "reference" | "parallel" | "fast" ("" = server
  /// default). The pre-engine boolean `"parallel": true` alias was
  /// removed; requests still sending it are rejected (legacy_parallel).
  std::string engine;
  std::uint64_t max_ticks = 0;     ///< per-job tick budget (0 = server default)
  std::string trace_id;  ///< 32-hex trace id to propagate ("" = server picks)
  bool trace = false;    ///< force-sample and return the span tree
  SearchParams search;   ///< meaningful when kind == "search"
  EstimateParams estimate;  ///< meaningful when kind == "estimate"
  /// True when the request line carried the removed legacy "parallel"
  /// key; the server answers a "validation" diagnostic pointing at the
  /// "engine" field instead of running the job.
  bool legacy_parallel = false;

  // Not on the wire — filled by the transport for the server's spans.
  std::string peer;      ///< client address ("pipe" for in-process calls)
  double parse_ms = 0.0;  ///< host time spent parsing the request line
};

/// The server's answer to one request.
struct JobResponse {
  std::string id;
  bool ok = false;
  std::string error_code;     ///< set when !ok (see header comment)
  std::string error_message;  ///< set when !ok
  bool cache_hit = false;
  std::string digest;             ///< scheme fingerprint (submit only)
  std::string report_json;        ///< compact result/stats JSON payload
  Picoseconds execution_time{0};  ///< emulated execution time (submit only)
  double queue_ms = 0.0;          ///< host time spent queued
  double run_ms = 0.0;            ///< host time spent emulating/reporting
  std::string trace_id;    ///< trace id the server used for this request
  std::string trace_json;  ///< span tree (obs::span_tree_json) when traced

  /// Builds an error response echoing `id`.
  static JobResponse failure(std::string id, std::string code,
                             std::string message);
};

/// Encodes a request as one NDJSON line (no trailing newline).
std::string encode_request(const JobRequest& request);

/// Parses one request line.
Result<JobRequest> parse_request(std::string_view line);

/// Encodes a response as one NDJSON line (no trailing newline). The
/// report payload is spliced in verbatim, preserving the server's
/// byte-exact report serialization.
std::string encode_response(const JobResponse& response);

/// Parses one response line. The embedded report object is re-serialized
/// compactly into report_json (bit-identical for payloads produced by
/// this tool chain's serializer).
Result<JobResponse> parse_response(std::string_view line);

}  // namespace segbus::service
