#include "service/protocol.hpp"

#include <utility>

namespace segbus::service {

JobResponse JobResponse::failure(std::string id, std::string code,
                                 std::string message) {
  JobResponse response;
  response.id = std::move(id);
  response.ok = false;
  response.error_code = std::move(code);
  response.error_message = std::move(message);
  return response;
}

std::string encode_request(const JobRequest& request) {
  JsonValue doc = JsonValue::object();
  doc.set("id", JsonValue::string(request.id));
  if (request.kind != "submit") {
    doc.set("kind", JsonValue::string(request.kind));
  }
  if (!request.psdf_xml.empty()) {
    doc.set("psdf_xml", JsonValue::string(request.psdf_xml));
  }
  if (!request.psm_xml.empty()) {
    doc.set("psm_xml", JsonValue::string(request.psm_xml));
  }
  if (request.package_size != 0) {
    doc.set("package_size", JsonValue::unsigned_integer(request.package_size));
  }
  if (request.reference_timing) {
    doc.set("reference", JsonValue::boolean(true));
  }
  if (!request.engine.empty()) {
    doc.set("engine", JsonValue::string(request.engine));
  }
  if (request.max_ticks != 0) {
    doc.set("max_ticks", JsonValue::unsigned_integer(request.max_ticks));
  }
  if (!request.trace_id.empty()) {
    doc.set("trace_id", JsonValue::string(request.trace_id));
  }
  if (request.trace) doc.set("trace", JsonValue::boolean(true));
  if (request.kind == "search") {
    const SearchParams& search = request.search;
    doc.set("segments", JsonValue::string(search.segments));
    if (!search.packages.empty()) {
      doc.set("packages", JsonValue::string(search.packages));
    }
    doc.set("strategy", JsonValue::string(search.strategy));
    doc.set("seed", JsonValue::unsigned_integer(search.seed));
    if (search.max_emulations != 0) {
      doc.set("max_emulations",
              JsonValue::unsigned_integer(search.max_emulations));
    }
    if (search.max_nodes != 0) {
      doc.set("max_nodes", JsonValue::unsigned_integer(search.max_nodes));
    }
    doc.set("beam_width", JsonValue::unsigned_integer(search.beam_width));
    doc.set("anneal_restarts",
            JsonValue::unsigned_integer(search.anneal_restarts));
    doc.set("anneal_iterations",
            JsonValue::unsigned_integer(search.anneal_iterations));
  }
  if (request.kind == "estimate") {
    const EstimateParams& estimate = request.estimate;
    doc.set("compute", JsonValue::string(estimate.compute));
    doc.set("items", JsonValue::string(estimate.items));
    doc.set("seed", JsonValue::unsigned_integer(estimate.seed));
    doc.set("min_replications",
            JsonValue::unsigned_integer(estimate.min_replications));
    doc.set("replications",
            JsonValue::unsigned_integer(estimate.max_replications));
    doc.set("round_replications",
            JsonValue::unsigned_integer(estimate.round_replications));
    doc.set("confidence", JsonValue::number(estimate.confidence));
    if (estimate.target_relative_half_width != 0.0) {
      doc.set("rhw", JsonValue::number(estimate.target_relative_half_width));
    }
    if (!estimate.modes_xml.empty()) {
      doc.set("modes_xml", JsonValue::string(estimate.modes_xml));
      doc.set("schedule_length",
              JsonValue::unsigned_integer(estimate.schedule_length));
    }
  }
  return doc.to_string();
}

Result<JobRequest> parse_request(std::string_view line) {
  SEGBUS_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::parse(line));
  if (!doc.is_object()) {
    return parse_error("service request must be a JSON object");
  }
  JobRequest request;
  request.id = doc.get("id").as_string();
  const std::string& kind = doc.get("kind").as_string();
  if (!kind.empty()) request.kind = kind;
  if (request.kind != "submit" && request.kind != "stats" &&
      request.kind != "ping" && request.kind != "search" &&
      request.kind != "estimate") {
    return invalid_argument_error("unknown request kind '" + request.kind +
                                  "'");
  }
  request.psdf_xml = doc.get("psdf_xml").as_string();
  request.psm_xml = doc.get("psm_xml").as_string();
  request.package_size =
      static_cast<std::uint32_t>(doc.get("package_size").as_uint64());
  request.reference_timing = doc.get("reference").as_bool();
  request.engine = doc.get("engine").as_string();
  // The pre-engine boolean alias ({"parallel": true} meaning
  // "engine":"parallel") was removed after its deprecation release; the
  // server answers such requests with a validation diagnostic instead of
  // silently guessing (see JobServer::run_submit).
  request.legacy_parallel = doc.find("parallel") != nullptr;
  request.max_ticks = doc.get("max_ticks").as_uint64();
  request.trace_id = doc.get("trace_id").as_string();
  request.trace = doc.get("trace").as_bool();
  if (request.kind == "search") {
    SearchParams& search = request.search;
    if (const JsonValue* v = doc.find("segments")) {
      search.segments = v->as_string();
    }
    search.packages = doc.get("packages").as_string();
    if (const JsonValue* v = doc.find("strategy")) {
      search.strategy = v->as_string();
    }
    if (const JsonValue* v = doc.find("seed")) search.seed = v->as_uint64();
    search.max_emulations = doc.get("max_emulations").as_uint64();
    search.max_nodes = doc.get("max_nodes").as_uint64();
    if (const JsonValue* v = doc.find("beam_width")) {
      search.beam_width = static_cast<std::uint32_t>(v->as_uint64());
    }
    if (const JsonValue* v = doc.find("anneal_restarts")) {
      search.anneal_restarts = static_cast<std::uint32_t>(v->as_uint64());
    }
    if (const JsonValue* v = doc.find("anneal_iterations")) {
      search.anneal_iterations = v->as_uint64();
    }
    if (request.psdf_xml.empty()) {
      return invalid_argument_error("search requests need psdf_xml");
    }
  }
  if (request.kind == "estimate") {
    EstimateParams& estimate = request.estimate;
    if (const JsonValue* v = doc.find("compute")) {
      estimate.compute = v->as_string();
    }
    if (const JsonValue* v = doc.find("items")) {
      estimate.items = v->as_string();
    }
    if (const JsonValue* v = doc.find("seed")) estimate.seed = v->as_uint64();
    if (const JsonValue* v = doc.find("min_replications")) {
      estimate.min_replications = static_cast<std::uint32_t>(v->as_uint64());
    }
    if (const JsonValue* v = doc.find("replications")) {
      estimate.max_replications = static_cast<std::uint32_t>(v->as_uint64());
    }
    if (const JsonValue* v = doc.find("round_replications")) {
      estimate.round_replications = static_cast<std::uint32_t>(v->as_uint64());
    }
    if (const JsonValue* v = doc.find("confidence")) {
      estimate.confidence = v->as_number();
    }
    if (const JsonValue* v = doc.find("rhw")) {
      estimate.target_relative_half_width = v->as_number();
    }
    estimate.modes_xml = doc.get("modes_xml").as_string();
    if (const JsonValue* v = doc.find("schedule_length")) {
      estimate.schedule_length = static_cast<std::uint32_t>(v->as_uint64());
    }
    if (request.psdf_xml.empty() || request.psm_xml.empty()) {
      return invalid_argument_error(
          "estimate requests need psdf_xml and psm_xml");
    }
  }
  if (request.kind == "submit" &&
      (request.psdf_xml.empty() || request.psm_xml.empty())) {
    return invalid_argument_error(
        "submit requests need psdf_xml and psm_xml");
  }
  return request;
}

std::string encode_response(const JobResponse& response) {
  JsonValue doc = JsonValue::object();
  doc.set("id", JsonValue::string(response.id));
  doc.set("ok", JsonValue::boolean(response.ok));
  if (!response.ok) {
    JsonValue error = JsonValue::object();
    error.set("code", JsonValue::string(response.error_code));
    error.set("message", JsonValue::string(response.error_message));
    doc.set("error", std::move(error));
  }
  if (response.cache_hit) doc.set("cache_hit", JsonValue::boolean(true));
  if (!response.digest.empty()) {
    doc.set("digest", JsonValue::string(response.digest));
  }
  if (response.execution_time.count() != 0) {
    doc.set("execution_ps",
            JsonValue::integer(response.execution_time.count()));
  }
  doc.set("queue_ms", JsonValue::number(response.queue_ms));
  doc.set("run_ms", JsonValue::number(response.run_ms));
  if (!response.trace_id.empty()) {
    doc.set("trace_id", JsonValue::string(response.trace_id));
  }
  std::string line = doc.to_string();
  // Splice pre-serialized payloads in verbatim so the report stays
  // byte-exact (re-serializing through the JSON tree would also work —
  // the serializer round-trips — but this keeps hits zero-copy).
  auto splice = [&line](const char* key, const std::string& payload) {
    if (payload.empty()) return;
    line.pop_back();  // trailing '}'
    line += ",\"";
    line += key;
    line += "\":";
    line += payload;
    line += '}';
  };
  splice("report", response.report_json);
  splice("trace", response.trace_json);
  return line;
}

Result<JobResponse> parse_response(std::string_view line) {
  SEGBUS_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::parse(line));
  if (!doc.is_object()) {
    return parse_error("service response must be a JSON object");
  }
  JobResponse response;
  response.id = doc.get("id").as_string();
  response.ok = doc.get("ok").as_bool();
  if (const JsonValue* error = doc.find("error"); error != nullptr) {
    response.error_code = error->get("code").as_string();
    response.error_message = error->get("message").as_string();
  }
  response.cache_hit = doc.get("cache_hit").as_bool();
  response.digest = doc.get("digest").as_string();
  response.execution_time = Picoseconds(doc.get("execution_ps").as_int64());
  response.queue_ms = doc.get("queue_ms").as_number();
  response.run_ms = doc.get("run_ms").as_number();
  response.trace_id = doc.get("trace_id").as_string();
  if (const JsonValue* report = doc.find("report"); report != nullptr) {
    response.report_json = report->to_string();
  }
  if (const JsonValue* trace = doc.find("trace"); trace != nullptr) {
    response.trace_json = trace->to_string();
  }
  return response;
}

}  // namespace segbus::service
