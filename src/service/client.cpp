#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/trace.hpp"

namespace segbus::service {

Result<Client> Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return invalid_argument_error("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return internal_error(std::string("socket(AF_UNIX): ") +
                          std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status =
        internal_error("connect to " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Result<Client> Client::connect_tcp(std::uint16_t port,
                                   const std::string& host) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return invalid_argument_error("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return internal_error(std::string("socket(AF_INET): ") +
                          std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status =
        internal_error("connect to " + host + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<std::string> Client::call_raw(const std::string& line) {
  if (fd_ < 0) return failed_precondition_error("client is not connected");
  std::string out = line;
  out += '\n';
  std::size_t written = 0;
  while (written < out.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
    // not kill the process with SIGPIPE.
    const ssize_t n = ::send(fd_, out.data() + written,
                             out.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return internal_error(std::string("send: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return internal_error(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return internal_error("server closed the connection mid-response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<JobResponse> Client::call(const JobRequest& request) {
  // Every request carries a trace id so the server-side span tree is
  // correlatable with client logs even when the caller never set one.
  std::string encoded;
  if (request.trace_id.empty()) {
    JobRequest stamped = request;
    stamped.trace_id = obs::TraceId::generate().to_hex();
    encoded = encode_request(stamped);
  } else {
    encoded = encode_request(request);
  }
  SEGBUS_ASSIGN_OR_RETURN(std::string line, call_raw(encoded));
  return parse_response(line);
}

}  // namespace segbus::service
