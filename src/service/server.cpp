#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <optional>
#include <utility>

#include "core/fingerprint.hpp"
#include "core/json_export.hpp"
#include "core/session.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "support/build_info.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace segbus::service {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// The job outcomes stats_json reports (and count_outcome records).
constexpr const char* kOutcomes[] = {
    "completed",           "cache_hit",        "failed",
    "tick_limit",          "rejected_backpressure",
    "rejected_draining",   "rejected_deadline"};

/// The pipeline phases stats_json snapshots (observe_phase records).
constexpr const char* kPhases[] = {"parse",     "queue-wait", "cache-lookup",
                                   "analyze",   "emulation",  "serialize"};

/// The guided-search candidate outcomes stats_json reports (count_search
/// records; the search handler feeds them).
constexpr const char* kSearchOutcomes[] = {"emulated", "deduplicated",
                                           "bound_pruned", "oracle_pruned"};

/// The replicated-estimation outcomes stats_json reports (count_estimate
/// records; the estimate handler feeds them).
constexpr const char* kEstimateOutcomes[] = {"emulated", "deduplicated"};

obs::Tracer::Config tracer_config(const ServerConfig& config) {
  obs::Tracer::Config out;
  out.sample_ratio = config.trace_sample_ratio;
  out.buffer_capacity = config.trace_buffer_capacity;
  out.flight_recorder = config.flight_recorder;
  return out;
}

}  // namespace

// --- JobServer --------------------------------------------------------------

struct JobServer::Job {
  JobRequest request;
  Clock::time_point enqueued;
  std::promise<JobResponse> promise;
};

JobServer::JobServer(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_entries, config_.cache_bytes),
      tracer_(tracer_config(config_)) {
  if (config_.flight_recorder) obs::FlightRecorder::instance().enable();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    queue_wait_ms_ = metrics_.histogram(
        "segbus_service_queue_wait_ms", obs::exponential_bounds(0.05, 2.0, 22),
        {}, "host milliseconds jobs spent in the queue");
    run_ms_ = metrics_.histogram(
        "segbus_service_run_ms", obs::exponential_bounds(0.05, 2.0, 22), {},
        "host milliseconds jobs spent being processed");
  }
  const unsigned workers = std::max(1u, config_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobServer::~JobServer() { stop(true); }

void JobServer::count_outcome(std::string_view outcome) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_
      .counter("segbus_service_jobs_total",
               {{"outcome", std::string(outcome)}},
               "service jobs by final outcome")
      .inc();
}

void JobServer::count_rejected_request() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_
      .counter("segbus_service_requests_rejected_total", {},
               "request lines rejected before reaching the job queue "
               "(malformed NDJSON)")
      .inc();
}

void JobServer::count_search(std::string_view outcome, std::uint64_t delta) {
  if (delta == 0) return;
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_
      .counter("segbus_search_candidates_total",
               {{"outcome", std::string(outcome)}},
               "guided-search candidates by evaluation outcome")
      .inc(delta);
}

void JobServer::count_estimate(std::string_view outcome,
                               std::uint64_t delta) {
  if (delta == 0) return;
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_
      .counter("segbus_estimate_replications_total",
               {{"outcome", std::string(outcome)}},
               "replicated-estimation replications by resolution outcome")
      .inc(delta);
}

void JobServer::observe_phase(std::string_view phase, double ms) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_
      .histogram("segbus_service_phase_ms",
                 obs::exponential_bounds(0.01, 2.0, 24),
                 {{"phase", std::string(phase)}},
                 "host milliseconds per pipeline phase")
      .observe(ms);
}

JobResponse JobServer::submit(JobRequest request) {
  return submit_async(std::move(request)).get();
}

std::future<JobResponse> JobServer::submit_async(JobRequest request) {
  std::string id = request.id;
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->enqueued = Clock::now();
  std::future<JobResponse> done = job->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || draining_) {
      count_outcome("rejected_draining");
      job->promise.set_value(JobResponse::failure(
          std::move(id), "draining",
          "server is draining and not accepting new jobs"));
      return done;
    }
    if (queue_.size() >= config_.queue_depth) {
      count_outcome("rejected_backpressure");
      job->promise.set_value(JobResponse::failure(
          std::move(id), "backpressure",
          str_format("job queue is full (depth %zu)", config_.queue_depth)));
      return done;
    }
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return done;
}

void JobServer::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    const double queue_ms = elapsed_ms(job->enqueued);

    // Root span of the request. The trace id comes from the client when
    // it sent one (propagation), else is freshly generated; an explicit
    // `trace` request force-samples so the tree can be returned.
    obs::TraceId trace_id;
    if (auto parsed = obs::TraceId::from_hex(job->request.trace_id)) {
      trace_id = *parsed;
    } else {
      trace_id = obs::TraceId::generate();
    }
    obs::Span job_span =
        tracer_.start_trace("job", trace_id, job->request.trace);
    job_span.set_attribute("id", std::string_view(job->request.id));
    job_span.set_attribute("kind", std::string_view(job->request.kind));
    if (!job->request.peer.empty()) {
      job_span.set_attribute("peer", std::string_view(job->request.peer));
    }
    // Back-date the root to when the transport started parsing the line,
    // then record parse and queue-wait as already-finished children.
    const auto parse_us =
        static_cast<std::uint64_t>(job->request.parse_ms * 1000.0);
    const auto queue_us = static_cast<std::uint64_t>(queue_ms * 1000.0);
    if (job_span.recording()) {
      const std::uint64_t dequeued_us = job_span.now_us();
      const std::uint64_t root_us =
          dequeued_us > parse_us + queue_us ? dequeued_us - parse_us - queue_us
                                            : 0;
      job_span.set_start_us(root_us);
      job_span.add_child("parse", root_us, parse_us);
      job_span.add_child("queue-wait", root_us + parse_us, queue_us);
    }
    observe_phase("parse", job->request.parse_ms);
    observe_phase("queue-wait", queue_ms);

    JobResponse response;
    if (config_.queue_deadline_ms > 0 &&
        queue_ms > static_cast<double>(config_.queue_deadline_ms)) {
      count_outcome("rejected_deadline");
      response = JobResponse::failure(
          job->request.id, "deadline",
          str_format("job waited %.0f ms in the queue (deadline %lld ms)",
                     queue_ms,
                     static_cast<long long>(config_.queue_deadline_ms)));
    } else {
      if (config_.before_job_hook) config_.before_job_hook(job->request);
      const Clock::time_point started = Clock::now();
      response = process(job->request, job_span);
      response.run_ms = elapsed_ms(started);
    }
    response.queue_ms = queue_ms;
    response.trace_id = trace_id.to_hex();
    job_span.set_attribute("ok", std::string_view(response.ok ? "true"
                                                              : "false"));
    if (!response.ok) {
      job_span.set_attribute("error", std::string_view(response.error_code));
    }
    const bool collect_trace = job->request.trace && job_span.recording();
    job_span.end();
    if (collect_trace) {
      response.trace_json =
          obs::span_tree_json(tracer_.collect(trace_id)).to_string();
    }
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      queue_wait_ms_.observe(response.queue_ms);
      run_ms_.observe(response.run_ms);
    }
    job->promise.set_value(std::move(response));

    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

JobResponse JobServer::process(const JobRequest& request,
                               obs::Span& job_span) {
  if (request.kind == "ping") {
    JobResponse response;
    response.id = request.id;
    response.ok = true;
    return response;
  }
  if (request.kind == "stats") {
    JobResponse response;
    response.id = request.id;
    response.ok = true;
    response.report_json = stats_json().to_string();
    return response;
  }
  if (request.legacy_parallel) {
    // The {"parallel": true} alias had its deprecation release (the
    // "engine" field shipped alongside it); silently honoring *or*
    // ignoring it now would mask a stale client, so reject loudly.
    count_outcome("failed");
    return JobResponse::failure(
        request.id, "validation",
        "the legacy \"parallel\" field was removed; select the backend "
        "with \"engine\":\"parallel\" instead");
  }
  if (request.kind == "search") {
    if (!config_.search_handler) {
      count_outcome("failed");
      return JobResponse::failure(
          request.id, "validation",
          "this server has no search handler installed");
    }
    JobResponse response = config_.search_handler(request, *this, job_span);
    count_outcome(response.ok ? "completed" : "failed");
    return response;
  }
  if (request.kind == "estimate") {
    if (!config_.estimate_handler) {
      count_outcome("failed");
      return JobResponse::failure(
          request.id, "validation",
          "this server has no estimate handler installed");
    }
    JobResponse response = config_.estimate_handler(request, *this, job_span);
    count_outcome(response.ok ? "completed" : "failed");
    return response;
  }
  return run_submit(request, job_span);
}

JobResponse JobServer::run_submit(const JobRequest& request,
                                  obs::Span& job_span) {
  core::SessionConfig config;
  config.timing = request.reference_timing ? emu::TimingModel::reference()
                                           : emu::TimingModel::emulator();
  config.backend = config_.default_backend;
  if (!request.engine.empty()) {
    auto backend = emu::parse_engine_backend(request.engine);
    if (!backend) {
      count_outcome("failed");
      return JobResponse::failure(
          request.id, "validation",
          "unknown engine '" + request.engine +
              "' (want reference | parallel | fast)");
    }
    config.backend.backend = *backend;
    if (*backend != emu::EngineBackend::kParallel) {
      config.backend.parallel_threads = 0;
    }
  }
  // The request may tighten the tick budget but never exceed the server's.
  config.engine.max_ticks_per_domain =
      request.max_ticks != 0 ? std::min(request.max_ticks, config_.max_ticks)
                             : config_.max_ticks;
  config.engine.flight_recorder = config_.flight_recorder;

  Clock::time_point phase_start = Clock::now();
  obs::Span analyze_span = job_span.child("analyze");
  auto session = core::EmulationSession::from_xml_strings(
      request.psdf_xml, request.psm_xml, config, request.package_size);
  analyze_span.end();
  observe_phase("analyze", elapsed_ms(phase_start));
  if (!session.is_ok()) {
    count_outcome("failed");
    const StatusCode code = session.status().code();
    return JobResponse::failure(
        request.id,
        code == StatusCode::kParseError ? "parse" : "validation",
        session.status().to_string());
  }

  phase_start = Clock::now();
  obs::Span lookup_span = job_span.child("cache-lookup");
  std::string key;
  std::optional<CachedResult> hit;
  if (auto digest = core::scheme_digest(session->application(),
                                        session->platform(), config);
      digest.is_ok()) {
    key = std::move(*digest);
    lookup_span.set_attribute("digest", std::string_view(key));
    hit = cache_.lookup(key);
  }
  lookup_span.set_attribute("hit", std::string_view(hit ? "true" : "false"));
  lookup_span.end();
  observe_phase("cache-lookup", elapsed_ms(phase_start));
  if (hit) {
    count_outcome("cache_hit");
    JobResponse response;
    response.id = request.id;
    response.ok = true;
    response.cache_hit = true;
    response.digest = key;
    response.report_json = std::move(hit->report_json);
    response.execution_time = hit->execution_time;
    return response;
  }

  phase_start = Clock::now();
  obs::Span emulation_span = job_span.child("emulation");
  auto result = session->emulate(emulation_span);
  emulation_span.end();
  observe_phase("emulation", elapsed_ms(phase_start));
  if (!result.is_ok()) {
    count_outcome("failed");
    return JobResponse::failure(request.id, "internal",
                                result.status().to_string());
  }
  if (!result->completed) {
    count_outcome("tick_limit");
    if (config_.flight_recorder && !config_.flight_recorder_dir.empty()) {
      // The cancelled job's last recorded events are the evidence; dump
      // them next to nothing else this job will produce.
      const std::string path = config_.flight_recorder_dir + "/flightrec-" +
                               job_span.context().trace.to_hex() + ".jsonl";
      obs::FlightRecorder::instance().dump_to_file(path.c_str());
      SEGBUS_LOG(kWarn, "service")
          << "job " << request.id
          << " cancelled at its tick budget; flight recorder dumped to "
          << path;
    }
    return JobResponse::failure(
        request.id, "tick-limit",
        str_format("emulation cancelled: exceeded the %llu-tick job budget",
                   static_cast<unsigned long long>(
                       config.engine.max_ticks_per_domain)));
  }

  phase_start = Clock::now();
  obs::Span serialize_span = job_span.child("serialize");
  JobResponse response;
  response.id = request.id;
  response.ok = true;
  response.digest = key;
  response.execution_time = result->total_execution_time;
  response.report_json =
      core::result_to_json(*result, session->platform()).to_string();
  serialize_span.set_attribute(
      "bytes", static_cast<std::uint64_t>(response.report_json.size()));
  serialize_span.end();
  observe_phase("serialize", elapsed_ms(phase_start));
  if (!key.empty()) {
    cache_.insert({key, response.report_json, response.execution_time});
  }
  count_outcome("completed");
  return response;
}

void JobServer::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool JobServer::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void JobServer::stop(bool drain) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    if (drain) {
      idle_cv_.wait(lock,
                    [this] { return queue_.empty() && in_flight_ == 0; });
    } else {
      for (const std::shared_ptr<Job>& job : queue_) {
        job->promise.set_value(JobResponse::failure(
            job->request.id, "draining", "server stopped before the job ran"));
      }
      queue_.clear();
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

JsonValue JobServer::stats_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("engine",
          JsonValue::string(std::string(
              emu::to_string(config_.default_backend.backend))));

  JsonValue jobs = JsonValue::object();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const char* outcome : kOutcomes) {
      const obs::Metric* metric = metrics_.find(
          "segbus_service_jobs_total", {{"outcome", outcome}});
      jobs.set(outcome, JsonValue::unsigned_integer(
                            metric == nullptr ? 0 : metric->counter_value));
    }
    const obs::Metric* rejected =
        metrics_.find("segbus_service_requests_rejected_total");
    jobs.set("rejected_requests",
             JsonValue::unsigned_integer(
                 rejected == nullptr ? 0 : rejected->counter_value));
  }
  doc.set("jobs", std::move(jobs));

  JsonValue queue = JsonValue::object();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue.set("depth", JsonValue::unsigned_integer(queue_.size()));
    queue.set("in_flight", JsonValue::unsigned_integer(in_flight_));
    queue.set("draining", JsonValue::boolean(draining_));
  }
  queue.set("capacity", JsonValue::unsigned_integer(config_.queue_depth));
  queue.set("workers",
            JsonValue::unsigned_integer(std::max(1u, config_.workers)));
  doc.set("queue", std::move(queue));

  JsonValue latency = JsonValue::object();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    latency.set("count", JsonValue::unsigned_integer(run_ms_.count()));
    latency.set("run_p50_ms", JsonValue::number(run_ms_.quantile(0.5)));
    latency.set("run_p99_ms", JsonValue::number(run_ms_.quantile(0.99)));
    latency.set("queue_p50_ms",
                JsonValue::number(queue_wait_ms_.quantile(0.5)));
    latency.set("queue_p99_ms",
                JsonValue::number(queue_wait_ms_.quantile(0.99)));
  }
  doc.set("latency", std::move(latency));

  const CacheStats cache = cache_.stats();
  JsonValue cache_doc = JsonValue::object();
  cache_doc.set("hits", JsonValue::unsigned_integer(cache.hits));
  cache_doc.set("misses", JsonValue::unsigned_integer(cache.misses));
  cache_doc.set("insertions", JsonValue::unsigned_integer(cache.insertions));
  cache_doc.set("evictions", JsonValue::unsigned_integer(cache.evictions));
  cache_doc.set("entries", JsonValue::unsigned_integer(cache.entries));
  cache_doc.set("bytes", JsonValue::unsigned_integer(cache.bytes));
  cache_doc.set("hit_rate", JsonValue::number(cache.hit_rate()));
  doc.set("cache", std::move(cache_doc));

  JsonValue phases = JsonValue::object();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const char* phase : kPhases) {
      const obs::Metric* metric =
          metrics_.find("segbus_service_phase_ms", {{"phase", phase}});
      if (metric == nullptr) continue;
      JsonValue snapshot = JsonValue::object();
      snapshot.set("count", JsonValue::unsigned_integer(metric->observations));
      snapshot.set("p50_ms", JsonValue::number(metric->quantile(0.5)));
      snapshot.set("p99_ms", JsonValue::number(metric->quantile(0.99)));
      phases.set(phase, std::move(snapshot));
    }
  }
  doc.set("phases", std::move(phases));

  JsonValue search = JsonValue::object();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const char* outcome : kSearchOutcomes) {
      const obs::Metric* metric = metrics_.find(
          "segbus_search_candidates_total", {{"outcome", outcome}});
      search.set(outcome,
                 JsonValue::unsigned_integer(
                     metric == nullptr ? 0 : metric->counter_value));
    }
  }
  doc.set("search", std::move(search));

  JsonValue estimate = JsonValue::object();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const char* outcome : kEstimateOutcomes) {
      const obs::Metric* metric = metrics_.find(
          "segbus_estimate_replications_total", {{"outcome", outcome}});
      estimate.set(outcome,
                   JsonValue::unsigned_integer(
                       metric == nullptr ? 0 : metric->counter_value));
    }
  }
  doc.set("estimate", std::move(estimate));

  JsonValue trace = JsonValue::object();
  trace.set("sample_ratio", JsonValue::number(config_.trace_sample_ratio));
  trace.set("dropped_spans", JsonValue::unsigned_integer(tracer_.dropped()));
  trace.set("flight_recorder", JsonValue::boolean(config_.flight_recorder));
  doc.set("trace", std::move(trace));

  const BuildInfo& info = build_info();
  JsonValue build = JsonValue::object();
  build.set("version", JsonValue::string(info.version));
  build.set("revision", JsonValue::string(info.git_hash));
  build.set("compiler", JsonValue::string(info.compiler));
  build.set("build_type", JsonValue::string(info.build_type));
  doc.set("build", std::move(build));

  return doc;
}

obs::MetricsRegistry JobServer::metrics_snapshot() const {
  obs::MetricsRegistry snapshot;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    (void)snapshot.merge_from(metrics_);
  }
  cache_.export_metrics(snapshot);
  std::size_t depth = 0;
  std::size_t in_flight = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    depth = queue_.size();
    in_flight = in_flight_;
  }
  snapshot
      .gauge("segbus_service_queue_depth", {},
             "jobs currently waiting in the queue")
      .set(static_cast<double>(depth));
  snapshot
      .gauge("segbus_service_jobs_in_flight", {},
             "jobs currently being processed by workers")
      .set(static_cast<double>(in_flight));
  snapshot
      .gauge("segbus_service_trace_dropped_spans", {},
             "finished spans lost to full per-thread trace buffers")
      .set(static_cast<double>(tracer_.dropped()));
  obs::add_build_info(snapshot);
  return snapshot;
}

// --- SocketServer -----------------------------------------------------------

namespace {

Status write_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a client that vanished mid-response must surface as
    // EPIPE, not kill the server with SIGPIPE.
    const ssize_t n = ::send(fd, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return internal_error(std::string("send: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

SocketServer::SocketServer(ServerConfig server_config)
    : jobs_(std::move(server_config)) {}

Result<std::unique_ptr<SocketServer>> SocketServer::start(
    ServerConfig server_config, ListenConfig listen_config) {
  if (listen_config.unix_path.empty() && !listen_config.tcp) {
    return invalid_argument_error(
        "SocketServer needs a unix socket path and/or TCP enabled");
  }
  std::unique_ptr<SocketServer> server(
      new SocketServer(std::move(server_config)));

  if (!listen_config.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (listen_config.unix_path.size() >= sizeof(addr.sun_path)) {
      return invalid_argument_error("unix socket path too long: " +
                                    listen_config.unix_path);
    }
    std::strncpy(addr.sun_path, listen_config.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return internal_error(std::string("socket(AF_UNIX): ") +
                            std::strerror(errno));
    }
    // A previous instance may have left a stale socket file behind.
    ::unlink(listen_config.unix_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, SOMAXCONN) != 0) {
      const Status status = internal_error(
          "bind/listen on " + listen_config.unix_path + ": " +
          std::strerror(errno));
      ::close(fd);
      return status;
    }
    server->unix_listen_fd_ = fd;
    server->unix_path_ = listen_config.unix_path;
  }

  if (listen_config.tcp) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return internal_error(std::string("socket(AF_INET): ") +
                            std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(listen_config.tcp_port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, SOMAXCONN) != 0) {
      const Status status = internal_error(
          str_format("bind/listen on 127.0.0.1:%u: %s",
                     listen_config.tcp_port, std::strerror(errno)));
      ::close(fd);
      return status;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) != 0) {
      const Status status = internal_error(std::string("getsockname: ") +
                                           std::strerror(errno));
      ::close(fd);
      return status;
    }
    server->tcp_listen_fd_ = fd;
    server->tcp_port_ = ntohs(bound.sin_port);
  }

  if (::pipe(server->wake_pipe_) != 0) {
    return internal_error(std::string("pipe: ") + std::strerror(errno));
  }
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->accept_loop();
  });
  return server;
}

SocketServer::~SocketServer() { shutdown(false); }

void SocketServer::accept_loop() {
  for (;;) {
    pollfd fds[3];
    nfds_t count = 0;
    fds[count++] = {wake_pipe_[0], POLLIN, 0};
    if (unix_listen_fd_ >= 0) fds[count++] = {unix_listen_fd_, POLLIN, 0};
    if (tcp_listen_fd_ >= 0) fds[count++] = {tcp_listen_fd_, POLLIN, 0};
    if (::poll(fds, count, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) return;
    for (nfds_t i = 1; i < count; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      sockaddr_storage addr{};
      socklen_t addr_len = sizeof(addr);
      const int conn = ::accept(
          fds[i].fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
      if (conn < 0) continue;
      std::string peer = "unix:" + unix_path_;
      if (addr.ss_family == AF_INET) {
        const auto* in = reinterpret_cast<const sockaddr_in*>(&addr);
        char host[INET_ADDRSTRLEN] = {};
        ::inet_ntop(AF_INET, &in->sin_addr, host, sizeof(host));
        peer = str_format("%s:%u", host,
                          static_cast<unsigned>(ntohs(in->sin_port)));
      }
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (stopping_) {
        ::close(conn);
        continue;
      }
      conn_fds_.push_back(conn);
      conn_threads_.emplace_back([this, conn, peer = std::move(peer)] {
        handle_connection(conn, peer);
      });
    }
  }
}

void SocketServer::handle_connection(int fd, const std::string& peer) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    bool write_failed = false;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty() ||
          line.find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      JobResponse response;
      const Clock::time_point parse_start = Clock::now();
      if (auto request = parse_request(line); request.is_ok()) {
        request->peer = peer;
        request->parse_ms = elapsed_ms(parse_start);
        response = jobs_.submit(std::move(*request));
      } else {
        jobs_.count_rejected_request();
        SEGBUS_LOG(kWarn, "service")
            << "rejected malformed request from " << peer << " ("
            << line.size() << " bytes): " << request.status().to_string();
        response = JobResponse::failure("", "parse",
                                        request.status().to_string());
      }
      if (!write_all(fd, encode_response(response) + "\n").is_ok()) {
        write_failed = true;
        break;
      }
    }
    if (write_failed) break;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

void SocketServer::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    stopping_ = true;
  }
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  close_fd(unix_listen_fd_);
  close_fd(tcp_listen_fd_);

  // Finish (drain) or fail queued work; in-flight submits complete either
  // way, so connection handlers flush their final responses first.
  jobs_.stop(drain);

  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads = std::move(conn_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

}  // namespace segbus::service
