// Estimation-as-a-service: a concurrent job server over the existing
// pipeline (static analysis -> core::EmulationSession -> JSON report),
// fronted by the content-addressed result cache.
//
// Architecture:
//
//   submit() ──> bounded job queue ──> worker pool ──> ResultCache
//       │            │                    │                │
//       │            │ full: immediate    │ fingerprint    │ hit: reply
//       │            │ "backpressure"     │ lookup first   │ without an
//       │            ▼                    ▼                ▼ engine run
//       └──── JobResponse promise fulfilled by the worker thread
//
// Admission control / backpressure: the queue depth is bounded; a full
// queue rejects immediately instead of blocking the caller forever. Each
// job carries a queue-wait deadline ("deadline" rejection at dequeue) and
// a tick budget — the engine's max_ticks_per_domain — which is the
// cooperative cancellation mechanism for runaway emulations
// ("tick-limit" failure). Graceful drain (begin_drain/stop): new jobs are
// rejected with "draining" while queued and in-flight jobs finish.
//
// SocketServer wraps a JobServer with the NDJSON wire protocol
// (protocol.hpp) on a TCP loopback port and/or a unix-domain socket; one
// handler thread per connection, responses in request order per
// connection.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "emu/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "support/json.hpp"
#include "support/status.hpp"

namespace segbus::service {

class JobServer;

/// Worker-pool / queue / cache sizing and job budgets.
struct ServerConfig {
  /// Worker threads emulating jobs (0 = 1).
  unsigned workers = 2;
  /// Bounded queue depth; a full queue answers "backpressure" immediately.
  std::size_t queue_depth = 16;
  /// Result cache capacity in entries (LRU beyond it).
  std::size_t cache_entries = 256;
  /// Result cache capacity in payload bytes (0 = unbounded).
  std::size_t cache_bytes = 0;
  /// Per-job engine tick budget; requests may lower but never raise it.
  /// Exhausting it aborts the emulation ("tick-limit") — the cooperative
  /// per-job cancellation mechanism. Tick budgets are backend-independent:
  /// the fast engine counts skipped-tick-equivalents.
  std::uint64_t max_ticks = 20'000'000;
  /// Engine backend jobs run on unless the request's "engine" field
  /// overrides it. All backends are bit-identical and share one cache
  /// (the fingerprint excludes the backend).
  emu::BackendOptions default_backend;
  /// Queue-wait deadline; jobs older than this are rejected ("deadline")
  /// at dequeue instead of running against a client that gave up.
  std::int64_t queue_deadline_ms = 30'000;
  /// Instrumentation/test seam: invoked on the worker thread right before
  /// a job is processed (after dequeue). Must be thread-safe.
  std::function<void(const JobRequest&)> before_job_hook;
  /// Head-sampling ratio for request traces (0 = only explicitly traced
  /// requests record spans; trace ids still propagate).
  double trace_sample_ratio = 0.0;
  /// Per-thread finished-span buffer capacity (see obs::Tracer::Config).
  std::size_t trace_buffer_capacity = 4096;
  /// Enable the process-wide flight recorder: span begin/end and engine
  /// progress events land in bounded per-thread rings, dumped as JSONL
  /// when a job hits its tick budget (below) or the process crashes.
  bool flight_recorder = false;
  /// Directory for tick-limit flight dumps ("" = no dump on tick-limit);
  /// files are named flightrec-<trace_id>.jsonl.
  std::string flight_recorder_dir;
  /// Handler for `"search"` requests. The guided-search subsystem
  /// (src/search) sits *above* the service layer — it fans its candidate
  /// waves out through a JobServer — so the dependency cannot point the
  /// other way; embedding binaries install search::service_search_handler
  /// here (see tools/service_common.hpp). Unset, "search" requests fail
  /// with a "validation" diagnostic.
  std::function<JobResponse(const JobRequest&, JobServer&, obs::Span&)>
      search_handler;
  /// Handler for `"estimate"` requests — the replicated-run confidence
  /// estimator (src/stoch), which, like search, fans jobs *through* a
  /// JobServer and therefore sits above the service layer. Embedding
  /// binaries install stoch::service_estimate_handler. Unset, "estimate"
  /// requests fail with a "validation" diagnostic.
  std::function<JobResponse(const JobRequest&, JobServer&, obs::Span&)>
      estimate_handler;
};

/// The in-process job server. Thread-safe; submit() may be called from any
/// number of threads concurrently.
class JobServer {
 public:
  explicit JobServer(ServerConfig config = {});
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Runs one request to completion: enqueues and blocks until a worker
  /// answers. Returns immediately (without blocking) with an error
  /// response when the queue is full ("backpressure") or the server is
  /// draining ("draining").
  JobResponse submit(JobRequest request);

  /// Enqueues without blocking and returns the response future; rejections
  /// ("backpressure"/"draining") resolve the future immediately. The
  /// search subsystem fans whole candidate waves out through this and
  /// collects them in submission order, so results stay deterministic
  /// regardless of worker count.
  std::future<JobResponse> submit_async(JobRequest request);

  /// Starts a graceful drain: new submissions are rejected, queued and
  /// in-flight jobs keep running. Idempotent.
  void begin_drain();
  bool draining() const;

  /// Stops the worker pool. With `drain` (the default) queued jobs finish
  /// first; otherwise they are failed with "draining". Idempotent; the
  /// destructor calls stop(true).
  void stop(bool drain = true);

  const ServerConfig& config() const noexcept { return config_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  obs::Tracer& tracer() noexcept { return tracer_; }

  /// Counts one transport-level rejection (malformed request line) into
  /// segbus_service_requests_rejected_total.
  void count_rejected_request();

  /// Accumulates guided-search candidate counters (outcome = "emulated" |
  /// "deduplicated" | "bound_pruned" | "oracle_pruned") into
  /// segbus_search_candidates_total; surfaced by stats_json() and the
  /// Prometheus snapshot. Called by the installed search handler.
  void count_search(std::string_view outcome, std::uint64_t delta = 1);

  /// Accumulates replicated-estimation counters (outcome = "emulated" |
  /// "deduplicated") into segbus_estimate_replications_total; surfaced by
  /// stats_json() and the Prometheus snapshot. Called by the installed
  /// estimate handler.
  void count_estimate(std::string_view outcome, std::uint64_t delta = 1);

  /// Point-in-time counters: jobs by outcome, queue depth, latency
  /// quantiles, cache stats.
  JsonValue stats_json() const;

  /// The same counters as an obs registry snapshot (Prometheus export).
  obs::MetricsRegistry metrics_snapshot() const;

 private:
  struct Job;

  void worker_loop();
  JobResponse process(const JobRequest& request, obs::Span& job_span);
  JobResponse run_submit(const JobRequest& request, obs::Span& job_span);
  void count_outcome(std::string_view outcome);
  void observe_phase(std::string_view phase, double ms);

  ServerConfig config_;
  ResultCache cache_;
  obs::Tracer tracer_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::size_t in_flight_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  mutable std::mutex metrics_mutex_;
  obs::MetricsRegistry metrics_;
  obs::Histogram queue_wait_ms_;
  obs::Histogram run_ms_;
};

/// Socket endpoints to listen on. At least one must be enabled.
struct ListenConfig {
  /// Unix-domain socket path (empty = disabled). Unlinked on shutdown.
  std::string unix_path;
  /// Listen on TCP loopback (127.0.0.1).
  bool tcp = false;
  /// TCP port; 0 picks an ephemeral port (see SocketServer::tcp_port).
  std::uint16_t tcp_port = 0;
};

/// NDJSON socket front end over a JobServer.
class SocketServer {
 public:
  /// Binds the endpoints and starts the accept loop.
  static Result<std::unique_ptr<SocketServer>> start(
      ServerConfig server_config, ListenConfig listen_config);

  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  JobServer& jobs() noexcept { return jobs_; }
  const JobServer& jobs() const noexcept { return jobs_; }

  /// Resolved TCP port (0 when TCP is disabled).
  std::uint16_t tcp_port() const noexcept { return tcp_port_; }
  const std::string& unix_path() const noexcept { return unix_path_; }

  /// Stops accepting, closes live connections, and stops the job server
  /// (draining by default). Idempotent; the destructor calls
  /// shutdown(false) — callers wanting a graceful drain call
  /// shutdown(true) themselves.
  void shutdown(bool drain = true);

 private:
  explicit SocketServer(ServerConfig server_config);

  void accept_loop();
  void handle_connection(int fd, const std::string& peer);

  JobServer jobs_;
  int tcp_listen_fd_ = -1;
  int unix_listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t tcp_port_ = 0;
  std::string unix_path_;
  std::thread accept_thread_;

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  bool stopping_ = false;
  bool shut_down_ = false;
};

}  // namespace segbus::service
