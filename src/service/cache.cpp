#include "service/cache.hpp"

#include <algorithm>
#include <utility>

namespace segbus::service {

ResultCache::ResultCache(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_(std::max<std::size_t>(1, max_entries)),
      max_bytes_(max_bytes) {}

std::optional<CachedResult> ResultCache::lookup(const std::string& digest) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = index_.find(digest);
  if (found == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, found->second);
  return *found->second;
}

void ResultCache::insert(CachedResult entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = index_.find(entry.digest);
  if (found != index_.end()) {
    bytes_ -= entry_bytes(*found->second);
    bytes_ += entry_bytes(entry);
    *found->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, found->second);
    evict_locked();
    return;
  }
  bytes_ += entry_bytes(entry);
  lru_.push_front(std::move(entry));
  index_.emplace(lru_.front().digest, lru_.begin());
  ++insertions_;
  evict_locked();
}

void ResultCache::evict_locked() {
  while (lru_.size() > max_entries_ ||
         (max_bytes_ != 0 && bytes_ > max_bytes_ && lru_.size() > 1)) {
    const CachedResult& victim = lru_.back();
    bytes_ -= entry_bytes(victim);
    index_.erase(victim.digest);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  return stats;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void ResultCache::export_metrics(obs::MetricsRegistry& registry) const {
  const CacheStats stats = this->stats();
  registry
      .counter("segbus_service_cache_hits_total", {},
               "result cache lookups served without an engine run")
      .inc(stats.hits);
  registry
      .counter("segbus_service_cache_misses_total", {},
               "result cache lookups that required an engine run")
      .inc(stats.misses);
  registry
      .counter("segbus_service_cache_insertions_total", {},
               "entries added to the result cache")
      .inc(stats.insertions);
  registry
      .counter("segbus_service_cache_evictions_total", {},
               "entries evicted from the result cache (LRU)")
      .inc(stats.evictions);
  registry
      .gauge("segbus_service_cache_entries", {},
             "entries currently resident in the result cache")
      .set(static_cast<double>(stats.entries));
  registry
      .gauge("segbus_service_cache_bytes", {},
             "payload bytes currently resident in the result cache")
      .set(static_cast<double>(stats.bytes));
}

}  // namespace segbus::service
