// Content-addressed result cache of the estimation service.
//
// Keys are scheme fingerprints (core/fingerprint.hpp): the SHA-256 of a
// canonical (PSDF, PSM, configuration) serialization, so byte-different
// but semantically identical schemes — shuffled XML attribute order,
// whitespace, renumbered internal ids — address the same entry. Values
// are the finished report payloads, so a hit skips the engine entirely.
//
// Eviction is LRU over a bounded entry count (and, optionally, a bounded
// total payload byte size — whichever bound is hit first evicts). All
// operations are thread-safe; hit/miss/insert/evict counters are kept
// internally and exported through the obs metrics registry.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "support/time.hpp"

namespace segbus::service {

/// One cached estimation outcome.
struct CachedResult {
  std::string digest;       ///< scheme fingerprint (cache key)
  std::string report_json;  ///< compact result_to_json payload
  Picoseconds execution_time{0};
};

/// Counter snapshot (monotonic except entries/bytes, which are levels).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Thread-safe LRU cache keyed by fingerprint digest.
class ResultCache {
 public:
  /// `max_entries` must be >= 1; `max_bytes` of 0 disables the byte bound.
  explicit ResultCache(std::size_t max_entries, std::size_t max_bytes = 0);

  /// Returns (and refreshes the recency of) the entry for `digest`.
  /// Counts a hit or a miss.
  std::optional<CachedResult> lookup(const std::string& digest);

  /// Inserts or refreshes an entry, evicting LRU entries as needed.
  void insert(CachedResult entry);

  CacheStats stats() const;
  void clear();

  /// Exports the counters as segbus_service_cache_* series.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  std::size_t entry_bytes(const CachedResult& entry) const noexcept {
    return entry.digest.size() + entry.report_json.size();
  }
  void evict_locked();

  const std::size_t max_entries_;
  const std::size_t max_bytes_;

  mutable std::mutex mutex_;
  std::list<CachedResult> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<CachedResult>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace segbus::service
