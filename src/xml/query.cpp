#include "xml/query.hpp"

#include "support/strings.hpp"

namespace segbus::xml {

namespace {

bool step_matches(const QueryStep& step, const Element& element) {
  if (step.name != "*" && element.name() != step.name &&
      element.local_name() != step.name) {
    return false;
  }
  if (!step.attr_name.empty()) {
    auto value = element.attribute(step.attr_name);
    if (!value || *value != step.attr_value) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<QueryStep>> parse_query(std::string_view path) {
  if (trim(path).empty()) {
    return parse_error("empty query path");
  }
  std::vector<QueryStep> steps;
  for (std::string_view raw : split(path, '/')) {
    raw = trim(raw);
    if (raw.empty()) {
      return parse_error("empty step in query path '" + std::string(path) +
                         "'");
    }
    QueryStep step;
    std::size_t bracket = raw.find('[');
    if (bracket == std::string_view::npos) {
      step.name = std::string(raw);
    } else {
      step.name = std::string(trim(raw.substr(0, bracket)));
      std::string_view pred = raw.substr(bracket);
      // Expect [@name='value'] or [@name="value"].
      if (pred.size() < 6 || !starts_with(pred, "[@") || !ends_with(pred, "]")) {
        return parse_error("malformed predicate in step '" + std::string(raw) +
                           "'");
      }
      pred = pred.substr(2, pred.size() - 3);  // name='value'
      std::size_t eq = pred.find('=');
      if (eq == std::string_view::npos) {
        return parse_error("predicate missing '=' in step '" +
                           std::string(raw) + "'");
      }
      step.attr_name = std::string(trim(pred.substr(0, eq)));
      std::string_view value = trim(pred.substr(eq + 1));
      if (value.size() < 2 ||
          !((value.front() == '\'' && value.back() == '\'') ||
            (value.front() == '"' && value.back() == '"'))) {
        return parse_error("predicate value must be quoted in step '" +
                           std::string(raw) + "'");
      }
      step.attr_value = std::string(value.substr(1, value.size() - 2));
      if (step.attr_name.empty()) {
        return parse_error("predicate with empty attribute name in step '" +
                           std::string(raw) + "'");
      }
    }
    if (step.name.empty()) {
      return parse_error("step with empty element name in '" +
                         std::string(path) + "'");
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

Result<std::vector<const Element*>> select_all(const Element& root,
                                               std::string_view path) {
  SEGBUS_ASSIGN_OR_RETURN(std::vector<QueryStep> steps, parse_query(path));
  std::vector<const Element*> frontier = {&root};
  for (const QueryStep& step : steps) {
    std::vector<const Element*> next;
    for (const Element* node : frontier) {
      for (const Element* child : node->child_elements()) {
        if (step_matches(step, *child)) next.push_back(child);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

Result<const Element*> select_first(const Element& root,
                                    std::string_view path) {
  SEGBUS_ASSIGN_OR_RETURN(std::vector<const Element*> all,
                          select_all(root, path));
  return all.empty() ? nullptr : all.front();
}

Result<const Element*> require_first(const Element& root,
                                     std::string_view path) {
  SEGBUS_ASSIGN_OR_RETURN(const Element* found, select_first(root, path));
  if (found == nullptr) {
    return not_found_error("no element matches query '" + std::string(path) +
                           "'");
  }
  return found;
}

}  // namespace segbus::xml
