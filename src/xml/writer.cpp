#include "xml/writer.hpp"

#include <fstream>

namespace segbus::xml {

namespace {

void append_escaped(std::string& out, std::string_view text,
                    bool for_attribute) {
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"':
        if (for_attribute) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      default: out += c;
    }
  }
}

/// True when the element contains only text/CDATA children (rendered on one
/// line, like <name>value</name>).
bool is_textual_only(const Element& element) {
  for (const Node& node : element.children()) {
    if (node.is_element()) return false;
  }
  return true;
}

void write_node(std::string& out, const Element& element,
                const WriteOptions& options, int depth) {
  auto emit_indent = [&](int d) {
    if (options.indent.empty()) return;
    for (int i = 0; i < d; ++i) out += options.indent;
  };

  emit_indent(depth);
  out += '<';
  out += element.name();
  for (const Attribute& attr : element.attributes()) {
    out += ' ';
    out += attr.name;
    out += "=\"";
    append_escaped(out, attr.value, /*for_attribute=*/true);
    out += '"';
  }
  if (element.children().empty()) {
    out += "/>";
    if (!options.indent.empty()) out += '\n';
    return;
  }
  out += '>';
  if (is_textual_only(element)) {
    for (const Node& node : element.children()) {
      if (node.kind() == NodeKind::kCData) {
        out += "<![CDATA[";
        out += node.text();
        out += "]]>";
      } else if (node.kind() == NodeKind::kComment) {
        out += "<!--";
        out += node.text();
        out += "-->";
      } else {
        append_escaped(out, node.text(), /*for_attribute=*/false);
      }
    }
    out += "</";
    out += element.name();
    out += '>';
    if (!options.indent.empty()) out += '\n';
    return;
  }
  if (!options.indent.empty()) out += '\n';
  for (const Node& node : element.children()) {
    switch (node.kind()) {
      case NodeKind::kElement:
        write_node(out, node.element(), options, depth + 1);
        break;
      case NodeKind::kText: {
        emit_indent(depth + 1);
        append_escaped(out, node.text(), /*for_attribute=*/false);
        if (!options.indent.empty()) out += '\n';
        break;
      }
      case NodeKind::kComment:
        emit_indent(depth + 1);
        out += "<!--";
        out += node.text();
        out += "-->";
        if (!options.indent.empty()) out += '\n';
        break;
      case NodeKind::kCData:
        emit_indent(depth + 1);
        out += "<![CDATA[";
        out += node.text();
        out += "]]>";
        if (!options.indent.empty()) out += '\n';
        break;
    }
  }
  emit_indent(depth);
  out += "</";
  out += element.name();
  out += '>';
  if (!options.indent.empty()) out += '\n';
}

}  // namespace

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  append_escaped(out, text, /*for_attribute=*/false);
  return out;
}

std::string escape_attribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  append_escaped(out, text, /*for_attribute=*/true);
  return out;
}

std::string write_element(const Element& element,
                          const WriteOptions& options) {
  std::string out;
  write_node(out, element, options, 0);
  return out;
}

std::string write_document(const Document& document,
                           const WriteOptions& options) {
  std::string out;
  if (options.emit_declaration) {
    if (!document.declaration().empty()) {
      out += "<?xml ";
      out += document.declaration();
      out += "?>";
    } else {
      out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    }
    if (!options.indent.empty()) out += '\n';
  }
  write_node(out, document.root(), options, 0);
  return out;
}

Status write_file(const Document& document, const std::string& path,
                  const WriteOptions& options) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return invalid_argument_error("cannot open file for writing: " + path);
  }
  file << write_document(document, options);
  if (!file) return internal_error("short write to file: " + path);
  return Status::ok();
}

}  // namespace segbus::xml
