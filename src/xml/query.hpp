// XPath-lite queries over the DOM: slash-separated child steps with
// optional attribute predicates, e.g.
//
//   "xs:complexType[@name='SBP']/xs:all/xs:element"
//
// A step of "*" matches any element; step names are compared against the
// full element name first and then its local name, so "complexType" also
// matches "xs:complexType". This covers everything the scheme readers need
// without a full XPath engine.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"
#include "xml/node.hpp"

namespace segbus::xml {

/// One parsed path step.
struct QueryStep {
  std::string name;          ///< element name or "*"
  std::string attr_name;     ///< optional predicate attribute (empty if none)
  std::string attr_value;    ///< required value of the predicate attribute
};

/// Parses "a/b[@x='y']/c" into steps.
Result<std::vector<QueryStep>> parse_query(std::string_view path);

/// All descendants of `root` matching the path (root itself is the context
/// node; the first step selects among its children).
Result<std::vector<const Element*>> select_all(const Element& root,
                                               std::string_view path);

/// First match or nullptr (error only for malformed paths).
Result<const Element*> select_first(const Element& root,
                                    std::string_view path);

/// First match; NotFound error when nothing matches.
Result<const Element*> require_first(const Element& root,
                                     std::string_view path);

}  // namespace segbus::xml
