// Recursive-descent XML parser with precise line/column diagnostics.
//
// Supports the subset of XML 1.0 the SegBus tool chain produces and a bit
// more: elements, attributes (single or double quoted), character data,
// comments, CDATA sections, processing instructions, an optional XML
// declaration, a skipped DOCTYPE, and the five predefined entities plus
// decimal/hexadecimal character references.
#pragma once

#include <string>
#include <string_view>

#include "support/status.hpp"
#include "xml/node.hpp"

namespace segbus::xml {

/// Position inside a source buffer for diagnostics (1-based).
struct Location {
  int line = 1;
  int column = 1;
};

/// Options controlling lenience of the parser.
struct ParseOptions {
  /// Keep whitespace-only text nodes (default drops them, matching the
  /// pretty-printed schemes the generator produces).
  bool keep_whitespace_text = false;
  /// Keep comment nodes in the DOM.
  bool keep_comments = false;
};

/// Parses a complete document from `source`. Errors carry "line L, column
/// C" context.
Result<Document> parse_document(std::string_view source,
                                const ParseOptions& options = {});

/// Reads `path` and parses it.
Result<Document> parse_file(const std::string& path,
                            const ParseOptions& options = {});

/// Decodes entity and character references in raw character data.
Result<std::string> decode_entities(std::string_view text);

}  // namespace segbus::xml
