// XML serialization: pretty-printed or compact, with correct escaping.
// Round-trips with the parser (tested property: parse(write(doc)) == doc).
#pragma once

#include <string>
#include <string_view>

#include "support/status.hpp"
#include "xml/node.hpp"

namespace segbus::xml {

/// Serialization options.
struct WriteOptions {
  /// Indentation per nesting level; empty means compact single-line output.
  std::string indent = "   ";
  /// Emit an XML declaration ('<?xml version="1.0" encoding="UTF-8"?>' by
  /// default; the document's own declaration wins if present).
  bool emit_declaration = true;
};

/// Serializes an element subtree.
std::string write_element(const Element& element,
                          const WriteOptions& options = {});

/// Serializes a whole document.
std::string write_document(const Document& document,
                           const WriteOptions& options = {});

/// Writes the document to `path`.
Status write_file(const Document& document, const std::string& path,
                  const WriteOptions& options = {});

/// Escapes character data (&, <, >) for element content.
std::string escape_text(std::string_view text);

/// Escapes an attribute value (&, <, >, ").
std::string escape_attribute(std::string_view text);

}  // namespace segbus::xml
