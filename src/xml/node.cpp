#include "xml/node.hpp"

#include "support/strings.hpp"

namespace segbus::xml {

Node::Node(std::unique_ptr<Element> element)
    : kind_(NodeKind::kElement), element_(std::move(element)) {}

Node::Node(NodeKind kind, std::string text)
    : kind_(kind), text_(std::move(text)) {}

Node::~Node() = default;

std::string_view Element::local_name() const noexcept {
  std::string_view name = name_;
  std::size_t colon = name.find(':');
  return colon == std::string_view::npos ? name : name.substr(colon + 1);
}

std::optional<std::string_view> Element::attribute(
    std::string_view name) const {
  for (const Attribute& attr : attributes_) {
    if (attr.name == name) return std::string_view(attr.value);
  }
  return std::nullopt;
}

std::string Element::attribute_or(std::string_view name,
                                  std::string_view fallback) const {
  auto v = attribute(name);
  return std::string(v ? *v : fallback);
}

Result<std::string> Element::require_attribute(std::string_view name) const {
  auto v = attribute(name);
  if (!v) {
    return not_found_error(str_format(
        "element <%s> is missing required attribute '%.*s'", name_.c_str(),
        static_cast<int>(name.size()), name.data()));
  }
  return std::string(*v);
}

void Element::set_attribute(std::string_view name, std::string_view value) {
  for (Attribute& attr : attributes_) {
    if (attr.name == name) {
      attr.value = std::string(value);
      return;
    }
  }
  attributes_.push_back({std::string(name), std::string(value)});
}

Element& Element::add_child(std::string name) {
  children_.emplace_back(std::make_unique<Element>(std::move(name)));
  return children_.back().element();
}

void Element::add_text(std::string text) {
  children_.emplace_back(NodeKind::kText, std::move(text));
}

void Element::add_comment(std::string text) {
  children_.emplace_back(NodeKind::kComment, std::move(text));
}

void Element::add_cdata(std::string text) {
  children_.emplace_back(NodeKind::kCData, std::move(text));
}

Element& Element::adopt(std::unique_ptr<Element> child) {
  children_.emplace_back(std::move(child));
  return children_.back().element();
}

std::vector<const Element*> Element::child_elements() const {
  std::vector<const Element*> out;
  for (const Node& node : children_) {
    if (node.is_element()) out.push_back(&node.element());
  }
  return out;
}

std::vector<const Element*> Element::children_named(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const Node& node : children_) {
    if (node.is_element() && node.element().name() == name) {
      out.push_back(&node.element());
    }
  }
  return out;
}

std::vector<const Element*> Element::children_local(
    std::string_view local) const {
  std::vector<const Element*> out;
  for (const Node& node : children_) {
    if (node.is_element() && node.element().local_name() == local) {
      out.push_back(&node.element());
    }
  }
  return out;
}

const Element* Element::first_child(std::string_view name) const {
  for (const Node& node : children_) {
    if (node.is_element() && node.element().name() == name) {
      return &node.element();
    }
  }
  return nullptr;
}

const Element* Element::first_child_local(std::string_view local) const {
  for (const Node& node : children_) {
    if (node.is_element() && node.element().local_name() == local) {
      return &node.element();
    }
  }
  return nullptr;
}

std::string Element::text_content() const {
  std::string out;
  for (const Node& node : children_) {
    if (node.kind() == NodeKind::kText || node.kind() == NodeKind::kCData) {
      out += node.text();
    }
  }
  return out;
}

std::size_t Element::element_count() const {
  std::size_t n = 0;
  for (const Node& node : children_) {
    if (node.is_element()) ++n;
  }
  return n;
}

}  // namespace segbus::xml
