// XML document object model.
//
// The paper's tool chain emits XML "schemes" (xs:schema / xs:complexType /
// xs:element documents) from the UML models and the emulator's setup phase
// parses them back. This DOM is the C++ stand-in for org.w3c.dom: ordered
// attributes, mixed content (elements, text, comments, CDATA), and
// convenience accessors tuned for the scheme shapes in the paper.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace segbus::xml {

class Element;

/// Kinds of DOM nodes kept in element content.
enum class NodeKind { kElement, kText, kComment, kCData };

/// A child node: either a nested element or a chunk of character data.
class Node {
 public:
  explicit Node(std::unique_ptr<Element> element);
  Node(NodeKind kind, std::string text);
  Node(Node&&) noexcept = default;
  Node& operator=(Node&&) noexcept = default;
  ~Node();

  NodeKind kind() const noexcept { return kind_; }
  bool is_element() const noexcept { return kind_ == NodeKind::kElement; }

  /// Valid only when is_element().
  const Element& element() const { return *element_; }
  Element& element() { return *element_; }

  /// Valid for text/comment/CDATA nodes.
  const std::string& text() const noexcept { return text_; }

 private:
  NodeKind kind_;
  std::unique_ptr<Element> element_;
  std::string text_;
};

/// One XML attribute; order of attributes on an element is preserved.
struct Attribute {
  std::string name;
  std::string value;
};

/// An XML element with ordered attributes and ordered mixed content.
class Element {
 public:
  Element() = default;
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Local part of a possibly-prefixed name ("xs:element" -> "element").
  std::string_view local_name() const noexcept;

  // --- attributes ----------------------------------------------------
  const std::vector<Attribute>& attributes() const noexcept {
    return attributes_;
  }
  /// Value of the attribute, or nullopt when absent.
  std::optional<std::string_view> attribute(std::string_view name) const;
  /// Value of the attribute, or `fallback` when absent.
  std::string attribute_or(std::string_view name,
                           std::string_view fallback) const;
  /// Required attribute; NotFound status names the element for diagnostics.
  Result<std::string> require_attribute(std::string_view name) const;
  /// Sets (or replaces) an attribute.
  void set_attribute(std::string_view name, std::string_view value);
  bool has_attribute(std::string_view name) const {
    return attribute(name).has_value();
  }

  // --- children -------------------------------------------------------
  const std::vector<Node>& children() const noexcept { return children_; }

  /// Appends and returns a new child element.
  Element& add_child(std::string name);
  /// Appends a text node.
  void add_text(std::string text);
  /// Appends a comment node.
  void add_comment(std::string text);
  /// Appends a CDATA node.
  void add_cdata(std::string text);
  /// Appends an already-built element.
  Element& adopt(std::unique_ptr<Element> child);

  /// All direct child elements, in document order.
  std::vector<const Element*> child_elements() const;
  /// Direct child elements whose (full) name matches.
  std::vector<const Element*> children_named(std::string_view name) const;
  /// Direct child elements whose *local* name matches (prefix ignored);
  /// "element" matches both <element> and <xs:element>.
  std::vector<const Element*> children_local(std::string_view local) const;
  /// First direct child with the given name, or nullptr.
  const Element* first_child(std::string_view name) const;
  /// First direct child with the given local name, or nullptr.
  const Element* first_child_local(std::string_view local) const;

  /// Concatenated text/CDATA content of this element (direct children).
  std::string text_content() const;

  /// Number of direct child elements.
  std::size_t element_count() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<Node> children_;
};

/// A parsed document: prolog (XML declaration captured verbatim if present)
/// plus a single root element.
class Document {
 public:
  Document() : root_(std::make_unique<Element>()) {}
  explicit Document(std::unique_ptr<Element> root) : root_(std::move(root)) {}

  const Element& root() const noexcept { return *root_; }
  Element& root() noexcept { return *root_; }

  const std::string& declaration() const noexcept { return declaration_; }
  void set_declaration(std::string decl) { declaration_ = std::move(decl); }

 private:
  std::unique_ptr<Element> root_;
  std::string declaration_;
};

}  // namespace segbus::xml
