#include "xml/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "support/strings.hpp"

namespace segbus::xml {

namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

bool is_name_char(char c) {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 ||
         c == '-' || c == '.';
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Cursor over the source with line/column tracking.
class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  bool eof() const noexcept { return pos_ >= source_.size(); }
  char peek() const noexcept { return eof() ? '\0' : source_[pos_]; }
  char peek_at(std::size_t offset) const noexcept {
    return pos_ + offset < source_.size() ? source_[pos_ + offset] : '\0';
  }

  char advance() noexcept {
    char c = source_[pos_++];
    if (c == '\n') {
      ++location_.line;
      location_.column = 1;
    } else {
      ++location_.column;
    }
    return c;
  }

  bool consume(char expected) noexcept {
    if (peek() != expected) return false;
    advance();
    return true;
  }

  bool consume_literal(std::string_view literal) noexcept {
    if (source_.substr(pos_, literal.size()) != literal) return false;
    for (std::size_t i = 0; i < literal.size(); ++i) advance();
    return true;
  }

  void skip_space() noexcept {
    while (!eof() && is_space(peek())) advance();
  }

  Location location() const noexcept { return location_; }
  std::size_t offset() const noexcept { return pos_; }
  std::string_view slice(std::size_t begin, std::size_t end) const {
    return source_.substr(begin, end - begin);
  }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
  Location location_;
};

Status error_at(Location loc, const std::string& message) {
  return parse_error(str_format("line %d, column %d: %s", loc.line,
                                loc.column, message.c_str()));
}

class Parser {
 public:
  Parser(std::string_view source, const ParseOptions& options)
      : cursor_(source), options_(options) {}

  Result<Document> parse() {
    std::string declaration;
    // Optional XML declaration.
    if (cursor_.consume_literal("<?xml")) {
      std::size_t begin = cursor_.offset();
      while (!cursor_.eof() && !(cursor_.peek() == '?' &&
                                 cursor_.peek_at(1) == '>')) {
        cursor_.advance();
      }
      if (cursor_.eof()) {
        return error_at(cursor_.location(), "unterminated XML declaration");
      }
      declaration = std::string(trim(cursor_.slice(begin, cursor_.offset())));
      cursor_.consume_literal("?>");
    }
    SEGBUS_RETURN_IF_ERROR(skip_misc());
    if (cursor_.eof() || cursor_.peek() != '<') {
      return error_at(cursor_.location(), "expected root element");
    }
    auto root = parse_element();
    if (!root.is_ok()) return root.status();
    SEGBUS_RETURN_IF_ERROR(skip_misc());
    if (!cursor_.eof()) {
      return error_at(cursor_.location(),
                      "unexpected content after root element");
    }
    Document doc(std::move(root).value());
    doc.set_declaration(std::move(declaration));
    return doc;
  }

 private:
  /// Skips whitespace, comments, PIs and a DOCTYPE between top-level items.
  Status skip_misc() {
    while (true) {
      cursor_.skip_space();
      if (cursor_.peek() != '<') return Status::ok();
      if (cursor_.peek_at(1) == '!') {
        if (cursor_.peek_at(2) == '-') {
          SEGBUS_RETURN_IF_ERROR(skip_comment(nullptr));
          continue;
        }
        // DOCTYPE — skip to matching '>'. Internal subsets use [].
        if (cursor_.consume_literal("<!DOCTYPE")) {
          int bracket_depth = 0;
          while (!cursor_.eof()) {
            char c = cursor_.advance();
            if (c == '[') ++bracket_depth;
            if (c == ']') --bracket_depth;
            if (c == '>' && bracket_depth <= 0) break;
          }
          continue;
        }
        return error_at(cursor_.location(), "unexpected markup declaration");
      }
      if (cursor_.peek_at(1) == '?') {
        SEGBUS_RETURN_IF_ERROR(skip_pi());
        continue;
      }
      return Status::ok();
    }
  }

  Status skip_comment(Element* parent) {
    Location start = cursor_.location();
    if (!cursor_.consume_literal("<!--")) {
      return error_at(start, "malformed comment");
    }
    std::size_t begin = cursor_.offset();
    while (!cursor_.eof()) {
      if (cursor_.peek() == '-' && cursor_.peek_at(1) == '-') {
        std::size_t end = cursor_.offset();
        cursor_.advance();
        cursor_.advance();
        if (!cursor_.consume('>')) {
          return error_at(cursor_.location(), "'--' is not allowed inside a comment");
        }
        if (parent != nullptr && options_.keep_comments) {
          parent->add_comment(std::string(cursor_.slice(begin, end)));
        }
        return Status::ok();
      }
      cursor_.advance();
    }
    return error_at(start, "unterminated comment");
  }

  Status skip_pi() {
    Location start = cursor_.location();
    if (!cursor_.consume_literal("<?")) {
      return error_at(start, "malformed processing instruction");
    }
    while (!cursor_.eof()) {
      if (cursor_.peek() == '?' && cursor_.peek_at(1) == '>') {
        cursor_.advance();
        cursor_.advance();
        return Status::ok();
      }
      cursor_.advance();
    }
    return error_at(start, "unterminated processing instruction");
  }

  Result<std::string> parse_name() {
    Location start = cursor_.location();
    if (cursor_.eof() || !is_name_start(cursor_.peek())) {
      return error_at(start, "expected a name");
    }
    std::size_t begin = cursor_.offset();
    while (!cursor_.eof() && is_name_char(cursor_.peek())) cursor_.advance();
    return std::string(cursor_.slice(begin, cursor_.offset()));
  }

  Result<std::string> parse_attribute_value() {
    Location start = cursor_.location();
    char quote = cursor_.peek();
    if (quote != '"' && quote != '\'') {
      return error_at(start, "expected quoted attribute value");
    }
    cursor_.advance();
    std::size_t begin = cursor_.offset();
    while (!cursor_.eof() && cursor_.peek() != quote) {
      if (cursor_.peek() == '<') {
        return error_at(cursor_.location(),
                        "'<' is not allowed in attribute values");
      }
      cursor_.advance();
    }
    if (cursor_.eof()) {
      return error_at(start, "unterminated attribute value");
    }
    std::string_view raw = cursor_.slice(begin, cursor_.offset());
    cursor_.advance();  // closing quote
    auto decoded = decode_entities(raw);
    if (!decoded.is_ok()) {
      return error_at(start, decoded.status().message());
    }
    return std::move(decoded).value();
  }

  Result<std::unique_ptr<Element>> parse_element() {
    Location start = cursor_.location();
    if (!cursor_.consume('<')) {
      return error_at(start, "expected '<'");
    }
    SEGBUS_ASSIGN_OR_RETURN(std::string name, parse_name());
    auto element = std::make_unique<Element>(name);
    // Attributes.
    while (true) {
      bool had_space = false;
      while (!cursor_.eof() && is_space(cursor_.peek())) {
        cursor_.advance();
        had_space = true;
      }
      if (cursor_.eof()) {
        return error_at(start, "unterminated start tag <" + name + ">");
      }
      char c = cursor_.peek();
      if (c == '>' || c == '/') break;
      if (!had_space) {
        return error_at(cursor_.location(),
                        "expected whitespace before attribute");
      }
      Location attr_loc = cursor_.location();
      SEGBUS_ASSIGN_OR_RETURN(std::string attr_name, parse_name());
      cursor_.skip_space();
      if (!cursor_.consume('=')) {
        return error_at(cursor_.location(),
                        "expected '=' after attribute name '" + attr_name +
                            "'");
      }
      cursor_.skip_space();
      SEGBUS_ASSIGN_OR_RETURN(std::string value, parse_attribute_value());
      if (element->has_attribute(attr_name)) {
        return error_at(attr_loc, "duplicate attribute '" + attr_name +
                                      "' on element <" + name + ">");
      }
      element->set_attribute(attr_name, value);
    }
    if (cursor_.consume('/')) {
      if (!cursor_.consume('>')) {
        return error_at(cursor_.location(), "expected '>' after '/'");
      }
      return element;  // empty element
    }
    cursor_.advance();  // '>'
    SEGBUS_RETURN_IF_ERROR(parse_content(*element, name, start));
    return element;
  }

  Status parse_content(Element& element, const std::string& name,
                       Location start) {
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      if (pending_text.empty()) return Status::ok();
      auto decoded = decode_entities(pending_text);
      if (!decoded.is_ok()) return error_at(start, decoded.status().message());
      std::string text = std::move(decoded).value();
      bool whitespace_only = trim(text).empty();
      if (!whitespace_only || options_.keep_whitespace_text) {
        element.add_text(std::move(text));
      }
      pending_text.clear();
      return Status::ok();
    };

    while (true) {
      if (cursor_.eof()) {
        return error_at(start, "unterminated element <" + name + ">");
      }
      if (cursor_.peek() != '<') {
        pending_text += cursor_.advance();
        continue;
      }
      // Markup.
      if (cursor_.peek_at(1) == '/') {
        SEGBUS_RETURN_IF_ERROR(flush_text());
        cursor_.advance();  // '<'
        cursor_.advance();  // '/'
        SEGBUS_ASSIGN_OR_RETURN(std::string end_name, parse_name());
        cursor_.skip_space();
        if (!cursor_.consume('>')) {
          return error_at(cursor_.location(), "expected '>' in end tag");
        }
        if (end_name != name) {
          return error_at(start, "mismatched end tag: expected </" + name +
                                     ">, found </" + end_name + ">");
        }
        return Status::ok();
      }
      if (cursor_.peek_at(1) == '!' && cursor_.peek_at(2) == '-') {
        SEGBUS_RETURN_IF_ERROR(flush_text());
        SEGBUS_RETURN_IF_ERROR(skip_comment(&element));
        continue;
      }
      if (cursor_.peek_at(1) == '!' && cursor_.peek_at(2) == '[') {
        SEGBUS_RETURN_IF_ERROR(flush_text());
        Location cdata_loc = cursor_.location();
        if (!cursor_.consume_literal("<![CDATA[")) {
          return error_at(cdata_loc, "malformed CDATA section");
        }
        std::size_t begin = cursor_.offset();
        while (!cursor_.eof()) {
          if (cursor_.peek() == ']' && cursor_.peek_at(1) == ']' &&
              cursor_.peek_at(2) == '>') {
            element.add_cdata(
                std::string(cursor_.slice(begin, cursor_.offset())));
            cursor_.advance();
            cursor_.advance();
            cursor_.advance();
            break;
          }
          cursor_.advance();
        }
        if (cursor_.eof()) {
          return error_at(cdata_loc, "unterminated CDATA section");
        }
        continue;
      }
      if (cursor_.peek_at(1) == '?') {
        SEGBUS_RETURN_IF_ERROR(flush_text());
        SEGBUS_RETURN_IF_ERROR(skip_pi());
        continue;
      }
      // Child element.
      SEGBUS_RETURN_IF_ERROR(flush_text());
      auto child = parse_element();
      if (!child.is_ok()) return child.status();
      element.adopt(std::move(child).value());
    }
  }

  Cursor cursor_;
  ParseOptions options_;
};

}  // namespace

Result<std::string> decode_entities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c != '&') {
      out += c;
      ++i;
      continue;
    }
    std::size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return parse_error("unterminated entity reference");
    }
    std::string_view body = text.substr(i + 1, semi - i - 1);
    if (body == "lt") {
      out += '<';
    } else if (body == "gt") {
      out += '>';
    } else if (body == "amp") {
      out += '&';
    } else if (body == "quot") {
      out += '"';
    } else if (body == "apos") {
      out += '\'';
    } else if (!body.empty() && body.front() == '#') {
      std::string_view digits = body.substr(1);
      long long code = -1;
      if (!digits.empty() && (digits.front() == 'x' || digits.front() == 'X')) {
        digits.remove_prefix(1);
        code = 0;
        if (digits.empty()) code = -1;
        for (char d : digits) {
          int value;
          if (d >= '0' && d <= '9') {
            value = d - '0';
          } else if (d >= 'a' && d <= 'f') {
            value = d - 'a' + 10;
          } else if (d >= 'A' && d <= 'F') {
            value = d - 'A' + 10;
          } else {
            code = -1;
            break;
          }
          code = code * 16 + value;
          if (code > 0x10FFFF) break;
        }
      } else if (auto parsed = parse_uint(digits)) {
        code = static_cast<long long>(*parsed);
      }
      // The XML Char production: tab/LF/CR are the only code points below
      // 0x20, surrogates and the 0xFFFE/0xFFFF noncharacters are excluded.
      if (code < 0 || code > 0x10FFFF || (code >= 0xD800 && code <= 0xDFFF) ||
          (code < 0x20 && code != 0x9 && code != 0xA && code != 0xD) ||
          code == 0xFFFE || code == 0xFFFF) {
        return parse_error("invalid character reference '&" +
                           std::string(body) + ";'");
      }
      // UTF-8 encode.
      auto cp = static_cast<unsigned long>(code);
      if (cp < 0x80) {
        out += static_cast<char>(cp);
      } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else if (cp < 0x10000) {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else {
        out += static_cast<char>(0xF0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      }
    } else {
      return parse_error("unknown entity '&" + std::string(body) + ";'");
    }
    i = semi + 1;
  }
  return out;
}

Result<Document> parse_document(std::string_view source,
                                const ParseOptions& options) {
  Parser parser(source, options);
  return parser.parse();
}

Result<Document> parse_file(const std::string& path,
                            const ParseOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return not_found_error("cannot open XML file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_document(buffer.str(), options);
}

}  // namespace segbus::xml
