// Code engineering sets and arbiter code generation.
//
// The paper (§3.4) introduces one "code engineering set" per model: the set
// of model elements whose textual artifact is generated, plus the directory
// the artifacts are written to. CodeEngineeringSet reproduces that workflow
// over the PSDF/PSM codecs and the template engine.
//
// ArbiterCodegen implements the paper's stated future work: "extended
// support is expected to come in the form of arbiter code generation, for
// the implementation of the application schedules". It emits (a) a
// human-readable schedule report and (b) a self-contained C++ header with
// the per-segment schedule tables an SA implementation would consume.
#pragma once

#include <string>
#include <vector>

#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::m2t {

/// Artifacts produced by one transformation run.
struct GeneratedArtifact {
  std::string filename;  ///< e.g. "mp3_decoder.psdf.xml"
  std::string content;
};

/// A code engineering set: a (PSDF, PSM) pair plus the artifact kinds to
/// generate. write_to() saves every artifact into a directory.
class CodeEngineeringSet {
 public:
  CodeEngineeringSet(psdf::PsdfModel application,
                     platform::PlatformModel platform);

  /// Selects artifact kinds (all enabled by default).
  void enable_psdf_scheme(bool on) { psdf_scheme_ = on; }
  void enable_psm_scheme(bool on) { psm_scheme_ = on; }
  void enable_dot(bool on) { dot_ = on; }
  void enable_arbiter_code(bool on) { arbiter_code_ = on; }
  void enable_matrix_csv(bool on) { matrix_ = on; }

  /// Runs the transformation and returns the artifacts in memory.
  Result<std::vector<GeneratedArtifact>> generate() const;

  /// Runs the transformation and writes the artifacts into `directory`
  /// (must exist).
  Status write_to(const std::string& directory) const;

 private:
  psdf::PsdfModel application_;
  platform::PlatformModel platform_;
  bool psdf_scheme_ = true;
  bool psm_scheme_ = true;
  bool dot_ = true;
  bool arbiter_code_ = true;
  bool matrix_ = true;
};

/// One entry of an arbiter schedule table.
struct ScheduleEntry {
  std::uint32_t stage = 0;       ///< dense stage index (by ordering T)
  std::string source;            ///< source process name
  std::string target;            ///< target process name
  std::uint64_t packages = 0;    ///< packages at the platform package size
  bool inter_segment = false;
  std::uint32_t target_segment = 0;  ///< 1-based
};

/// Schedule tables for every SA plus the CA.
struct ArbiterSchedules {
  /// Per segment (index = segment), the transfers its SA sequences.
  std::vector<std::vector<ScheduleEntry>> per_segment;
  /// The CA's inter-segment schedule.
  std::vector<ScheduleEntry> central;
};

/// Extracts the schedule tables from a validated (application, platform)
/// pair.
Result<ArbiterSchedules> extract_schedules(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform);

/// Renders the schedules as a human-readable report.
Result<std::string> render_schedule_report(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform);

/// Renders the schedules as a C++ header ("arbiter code generation").
Result<std::string> render_arbiter_header(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform);

/// Renders the schedules as synthesizable-style VHDL: one package with a
/// schedule ROM constant per SA plus the CA table — the form the actual
/// SegBus arbiters (written in VHDL, like the platform RTL) would consume.
Result<std::string> render_arbiter_vhdl(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform);

}  // namespace segbus::m2t
