// A small Model-to-Text template engine — the stand-in for the MagicDraw
// code-generation engine the paper uses for its M2T transformation [2].
//
// Template syntax:
//   {{name}}                  — insert a scalar value (error if undefined)
//   {{#each items}}...{{/each}} — repeat the body once per list element,
//                                with the element's fields in scope (and
//                                "@index" / "@first" / "@last" specials)
//   {{#if flag}}...{{/if}}    — emit the body when `flag` is truthy
//                                (non-empty, not "0", not "false")
//   {{#unless flag}}...{{/unless}} — emit the body when `flag` is absent
//                                or falsy (the complement of {{#if}})
//   {{!comment}}              — dropped from the output
// Lookups walk lexical scopes from innermost to outermost.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace segbus::m2t {

/// A template value: scalar, or a list of nested contexts.
class Value;

/// A set of named values (one lexical scope).
using Context = std::map<std::string, Value, std::less<>>;

class Value {
 public:
  Value() = default;
  Value(std::string scalar) : scalar_(std::move(scalar)), is_list_(false) {}  // NOLINT
  Value(const char* scalar) : scalar_(scalar), is_list_(false) {}             // NOLINT
  Value(std::vector<Context> list)                                            // NOLINT
      : list_(std::move(list)), is_list_(true) {}

  bool is_list() const noexcept { return is_list_; }
  const std::string& scalar() const noexcept { return scalar_; }
  const std::vector<Context>& list() const noexcept { return list_; }

  /// Truthiness for {{#if}}: lists are truthy when non-empty; scalars when
  /// non-empty, not "0" and not "false".
  bool truthy() const noexcept;

 private:
  std::string scalar_;
  std::vector<Context> list_;
  bool is_list_ = false;
};

/// A parsed, reusable template.
class Template {
 public:
  /// Parses the template text; reports unbalanced blocks with positions.
  static Result<Template> parse(std::string_view text);

  /// Renders with the given root context. Undefined variable lookups are
  /// errors (catching typos in generator code).
  Result<std::string> render(const Context& root) const;

  /// Implementation node (public so the .cpp's free functions can walk the
  /// tree; not part of the supported API).
  struct NodeImpl;

 private:
  Template() = default;
  std::shared_ptr<const NodeImpl> root_;
};

/// One-shot convenience.
Result<std::string> render_template(std::string_view text,
                                    const Context& root);

}  // namespace segbus::m2t
