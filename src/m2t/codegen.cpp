#include "m2t/codegen.hpp"

#include <filesystem>
#include <fstream>
#include <map>

#include "m2t/template.hpp"
#include "platform/constraints.hpp"
#include "platform/platform_xml.hpp"
#include "platform/platform_dot.hpp"
#include "psdf/dot.hpp"
#include "psdf/comm_matrix.hpp"
#include "psdf/psdf_xml.hpp"
#include "support/csv.hpp"
#include "support/strings.hpp"
#include "xml/writer.hpp"

namespace segbus::m2t {

CodeEngineeringSet::CodeEngineeringSet(psdf::PsdfModel application,
                                       platform::PlatformModel platform)
    : application_(std::move(application)), platform_(std::move(platform)) {}

Result<std::vector<GeneratedArtifact>> CodeEngineeringSet::generate() const {
  SEGBUS_RETURN_IF_ERROR(
      platform::validate_mapping_or_error(platform_, application_));
  std::vector<GeneratedArtifact> artifacts;
  const std::string base = application_.name();
  if (psdf_scheme_) {
    artifacts.push_back({base + ".psdf.xml",
                         xml::write_document(psdf::to_xml(application_))});
  }
  if (psm_scheme_) {
    artifacts.push_back({platform_.name() + ".psm.xml",
                         xml::write_document(platform::to_xml(platform_))});
  }
  if (dot_) {
    artifacts.push_back({base + ".dot", psdf::to_dot(application_)});
    artifacts.push_back(
        {platform_.name() + ".dot", platform::to_dot(platform_)});
  }
  if (matrix_) {
    // The communication matrix (Figure 8) as CSV — the emulator derives it
    // from the PSDF, but PlaceTool-style consumers want it as a file.
    psdf::CommMatrix matrix = psdf::CommMatrix::from_model(application_);
    CsvWriter csv([&] {
      std::vector<std::string> header = {""};
      for (const psdf::Process& p : application_.processes()) {
        header.push_back(p.name);
      }
      return header;
    }());
    for (const psdf::Process& from : application_.processes()) {
      std::vector<std::string> row = {from.name};
      for (const psdf::Process& to : application_.processes()) {
        row.push_back(str_format(
            "%llu",
            static_cast<unsigned long long>(matrix.at(from.id, to.id))));
      }
      csv.add_row(std::move(row));
    }
    artifacts.push_back({base + ".matrix.csv", csv.to_string()});
  }
  if (arbiter_code_) {
    SEGBUS_ASSIGN_OR_RETURN(
        std::string header, render_arbiter_header(application_, platform_));
    artifacts.push_back({base + "_schedule.hpp", std::move(header)});
    SEGBUS_ASSIGN_OR_RETURN(
        std::string report, render_schedule_report(application_, platform_));
    artifacts.push_back({base + "_schedule.txt", std::move(report)});
    SEGBUS_ASSIGN_OR_RETURN(
        std::string vhdl, render_arbiter_vhdl(application_, platform_));
    artifacts.push_back({base + "_schedule_pkg.vhd", std::move(vhdl)});
  }
  return artifacts;
}

Status CodeEngineeringSet::write_to(const std::string& directory) const {
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec)) {
    return invalid_argument_error("output directory does not exist: " +
                                  directory);
  }
  SEGBUS_ASSIGN_OR_RETURN(std::vector<GeneratedArtifact> artifacts,
                          generate());
  for (const GeneratedArtifact& artifact : artifacts) {
    const std::string path =
        (std::filesystem::path(directory) / artifact.filename).string();
    std::ofstream file(path, std::ios::binary);
    if (!file) {
      return invalid_argument_error("cannot open for writing: " + path);
    }
    file << artifact.content;
    if (!file) return internal_error("short write: " + path);
  }
  return Status::ok();
}

Result<ArbiterSchedules> extract_schedules(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform) {
  SEGBUS_RETURN_IF_ERROR(
      platform::validate_mapping_or_error(platform, application));

  // Dense stage indices in ordering-T order.
  std::map<std::uint32_t, std::uint32_t> stage_rank;
  for (const psdf::Flow& f : application.flows()) {
    stage_rank.emplace(f.ordering, 0);
  }
  {
    std::uint32_t rank = 0;
    for (auto& [t, r] : stage_rank) r = rank++;
  }

  ArbiterSchedules schedules;
  schedules.per_segment.resize(platform.segment_count());
  for (const psdf::Flow& f : application.scheduled_flows()) {
    const std::string& src = application.process(f.source).name;
    const std::string& dst = application.process(f.target).name;
    SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId s,
                            platform.require_segment_of(src));
    SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId d,
                            platform.require_segment_of(dst));
    ScheduleEntry entry;
    entry.stage = stage_rank.at(f.ordering);
    entry.source = src;
    entry.target = dst;
    entry.packages =
        psdf::packages_for(f.data_items, platform.package_size());
    entry.inter_segment = s != d;
    entry.target_segment = d + 1;
    schedules.per_segment[s].push_back(entry);
    if (entry.inter_segment) schedules.central.push_back(entry);
  }
  return schedules;
}

namespace {

constexpr std::string_view kReportTemplate =
    "Application schedule for {{application}} on {{platform}}\n"
    "package size: {{package_size}} data items\n"
    "\n"
    "{{#each segments}}"
    "SA{{number}} ({{frequency}}):\n"
    "{{#each entries}}"
    "  stage {{stage}}: {{source}} -> {{target}}  {{packages}} package(s)"
    "{{#if inter}}  [inter-segment -> segment {{target_segment}}]{{/if}}\n"
    "{{/each}}"
    "{{#if empty}}  (no transfers originate here)\n{{/if}}"
    "\n"
    "{{/each}}"
    "CA inter-segment schedule:\n"
    "{{#each central}}"
    "  stage {{stage}}: {{source}} -> {{target}}  {{packages}} package(s) "
    "-> segment {{target_segment}}\n"
    "{{/each}}"
    "{{#if central_empty}}  (no inter-segment transfers)\n{{/if}}";

Result<Context> build_schedule_context(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform) {
  SEGBUS_ASSIGN_OR_RETURN(ArbiterSchedules schedules,
                          extract_schedules(application, platform));
  Context root;
  root.emplace("application", Value(application.name()));
  root.emplace("platform", Value(platform.name()));
  root.emplace("package_size",
               Value(str_format("%u", platform.package_size())));

  auto entry_context = [](const ScheduleEntry& e) {
    Context c;
    c.emplace("stage", Value(str_format("%u", e.stage)));
    c.emplace("source", Value(e.source));
    c.emplace("target", Value(e.target));
    c.emplace("packages",
              Value(str_format("%llu",
                               static_cast<unsigned long long>(e.packages))));
    c.emplace("inter", Value(e.inter_segment ? "true" : "false"));
    c.emplace("target_segment",
              Value(str_format("%u", e.target_segment)));
    return c;
  };

  std::vector<Context> segments;
  for (std::size_t s = 0; s < schedules.per_segment.size(); ++s) {
    Context seg;
    seg.emplace("number", Value(str_format("%zu", s + 1)));
    ClockDomain domain(platform.segment(
                           static_cast<platform::SegmentId>(s)).name,
                       platform.segment(
                           static_cast<platform::SegmentId>(s)).clock);
    seg.emplace("frequency", Value(domain.frequency_label()));
    std::vector<Context> entries;
    for (const ScheduleEntry& e : schedules.per_segment[s]) {
      entries.push_back(entry_context(e));
    }
    seg.emplace("empty", Value(entries.empty() ? "true" : "false"));
    seg.emplace("entries", Value(std::move(entries)));
    segments.push_back(std::move(seg));
  }
  root.emplace("segments", Value(std::move(segments)));

  std::vector<Context> central;
  for (const ScheduleEntry& e : schedules.central) {
    central.push_back(entry_context(e));
  }
  root.emplace("central_empty", Value(central.empty() ? "true" : "false"));
  root.emplace("central", Value(std::move(central)));
  return root;
}

constexpr std::string_view kHeaderTemplate =
    "// Generated by segbus::m2t::render_arbiter_header — do not edit.\n"
    "// Application schedule tables for {{application}} on {{platform}}\n"
    "// (package size {{package_size}}).\n"
    "#pragma once\n"
    "\n"
    "#include <cstdint>\n"
    "\n"
    "namespace segbus_generated {\n"
    "\n"
    "struct ScheduleEntry {\n"
    "  std::uint32_t stage;\n"
    "  const char* source;\n"
    "  const char* target;\n"
    "  std::uint64_t packages;\n"
    "  bool inter_segment;\n"
    "  std::uint32_t target_segment;\n"
    "};\n"
    "\n"
    "{{#each segments}}"
    "inline constexpr ScheduleEntry kSa{{number}}Schedule[] = {\n"
    "{{#each entries}}"
    "    { {{stage}}, \"{{source}}\", \"{{target}}\", {{packages}}, "
    "{{#if inter}}true{{/if}}{{#if local}}false{{/if}}, "
    "{{target_segment}}},\n"
    "{{/each}}"
    "{{#if empty}}    {0, \"\", \"\", 0, false, 0},  // no transfers\n"
    "{{/if}}"
    "};\n"
    "\n"
    "{{/each}}"
    "inline constexpr ScheduleEntry kCaSchedule[] = {\n"
    "{{#each central}}"
    "    { {{stage}}, \"{{source}}\", \"{{target}}\", {{packages}}, true, "
    "{{target_segment}}},\n"
    "{{/each}}"
    "{{#if central_empty}}    {0, \"\", \"\", 0, false, 0},  // none\n"
    "{{/if}}"
    "};\n"
    "\n"
    "}  // namespace segbus_generated\n";

}  // namespace

Result<std::string> render_schedule_report(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform) {
  SEGBUS_ASSIGN_OR_RETURN(Context root,
                          build_schedule_context(application, platform));
  return render_template(kReportTemplate, root);
}

Result<std::string> render_arbiter_header(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform) {
  SEGBUS_ASSIGN_OR_RETURN(Context root,
                          build_schedule_context(application, platform));
  // The header template needs an explicit "local" flag (no {{#else}}).
  auto add_local = [](Context& c) {
    auto it = c.find("inter");
    bool inter = it != c.end() && it->second.truthy();
    c.emplace("local", Value(inter ? "false" : "true"));
  };
  auto patch_list = [&](const char* key) {
    auto it = root.find(key);
    if (it == root.end() || !it->second.is_list()) return;
    std::vector<Context> patched = it->second.list();
    for (Context& c : patched) add_local(c);
    root.erase(it);
    root.emplace(key, Value(std::move(patched)));
  };
  {
    auto it = root.find("segments");
    if (it != root.end() && it->second.is_list()) {
      std::vector<Context> segments = it->second.list();
      for (Context& seg : segments) {
        auto entries = seg.find("entries");
        if (entries == seg.end() || !entries->second.is_list()) continue;
        std::vector<Context> patched = entries->second.list();
        for (Context& c : patched) add_local(c);
        seg.erase(entries);
        seg.emplace("entries", Value(std::move(patched)));
      }
      root.erase(it);
      root.emplace("segments", Value(std::move(segments)));
    }
  }
  patch_list("central");
  return render_template(kHeaderTemplate, root);
}

}  // namespace segbus::m2t

namespace segbus::m2t {

namespace {

constexpr std::string_view kVhdlTemplate =
    "-- Generated by segbus::m2t::render_arbiter_vhdl - do not edit.\n"
    "-- Application schedule ROMs for {{application}} on {{platform}}\n"
    "-- (package size {{package_size}} data items).\n"
    "library ieee;\n"
    "use ieee.std_logic_1164.all;\n"
    "use ieee.numeric_std.all;\n"
    "\n"
    "package {{application}}_schedule_pkg is\n"
    "\n"
    "  type schedule_entry_t is record\n"
    "    stage          : natural;\n"
    "    packages       : natural;\n"
    "    inter_segment  : boolean;\n"
    "    target_segment : natural;\n"
    "  end record;\n"
    "\n"
    "  type schedule_rom_t is array (natural range <>) of schedule_entry_t;\n"
    "\n"
    "{{#each segments}}"
    "  -- SA{{number}}{{#each entries}}\n"
    "  --   stage {{stage}}: {{source}} -> {{target}}"
    "{{/each}}\n"
    "  constant SA{{number}}_SCHEDULE : schedule_rom_t := (\n"
    "{{#each entries}}"
    "    {{@index}} => (stage => {{stage}}, packages => {{packages}}, "
    "inter_segment => {{#if inter}}true{{/if}}"
    "{{#if local}}false{{/if}}, target_segment => {{target_segment}})"
    "{{#if @last}}{{/if}}{{#if more}},{{/if}}\n"
    "{{/each}}"
    "{{#if empty}}    0 => (stage => 0, packages => 0, "
    "inter_segment => false, target_segment => 0)\n{{/if}}"
    "  );\n"
    "\n"
    "{{/each}}"
    "  constant CA_SCHEDULE : schedule_rom_t := (\n"
    "{{#each central}}"
    "    {{@index}} => (stage => {{stage}}, packages => {{packages}}, "
    "inter_segment => true, target_segment => {{target_segment}})"
    "{{#if more}},{{/if}}\n"
    "{{/each}}"
    "{{#if central_empty}}    0 => (stage => 0, packages => 0, "
    "inter_segment => false, target_segment => 0)\n{{/if}}"
    "  );\n"
    "\n"
    "end package {{application}}_schedule_pkg;\n";

}  // namespace

Result<std::string> render_arbiter_vhdl(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform) {
  SEGBUS_ASSIGN_OR_RETURN(Context root,
                          build_schedule_context(application, platform));
  // VHDL aggregates need commas between entries but not after the last:
  // annotate each entry with a "more" flag, plus the header's local flag.
  auto annotate = [](std::vector<Context> entries) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      auto inter = entries[i].find("inter");
      bool is_inter = inter != entries[i].end() && inter->second.truthy();
      entries[i].emplace("local", Value(is_inter ? "false" : "true"));
      entries[i].emplace("more",
                         Value(i + 1 < entries.size() ? "true" : "false"));
    }
    return entries;
  };
  {
    auto it = root.find("segments");
    if (it != root.end() && it->second.is_list()) {
      std::vector<Context> segments = it->second.list();
      for (Context& seg : segments) {
        auto entries = seg.find("entries");
        if (entries == seg.end() || !entries->second.is_list()) continue;
        std::vector<Context> patched = annotate(entries->second.list());
        seg.erase(entries);
        seg.emplace("entries", Value(std::move(patched)));
      }
      root.erase(it);
      root.emplace("segments", Value(std::move(segments)));
    }
  }
  {
    auto it = root.find("central");
    if (it != root.end() && it->second.is_list()) {
      std::vector<Context> patched = annotate(it->second.list());
      root.erase(it);
      root.emplace("central", Value(std::move(patched)));
    }
  }
  return render_template(kVhdlTemplate, root);
}

}  // namespace segbus::m2t
