#include "m2t/template.hpp"

#include "support/strings.hpp"

namespace segbus::m2t {

bool Value::truthy() const noexcept {
  if (is_list_) return !list_.empty();
  return !scalar_.empty() && scalar_ != "0" && scalar_ != "false";
}

namespace {

enum class NodeKind { kText, kVariable, kEach, kIf, kUnless };

}  // namespace

struct Template::NodeImpl {
  NodeKind kind = NodeKind::kText;
  std::string text;  ///< literal text or variable/loop/condition name
  std::vector<std::shared_ptr<const NodeImpl>> children;
};

namespace {

using Node = Template::NodeImpl;

/// Finds `name` in the scope chain (innermost last).
const Value* lookup(const std::vector<const Context*>& scopes,
                    std::string_view name) {
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
    auto found = (*it)->find(name);
    if (found != (*it)->end()) return &found->second;
  }
  return nullptr;
}

Status render_node(const Node& node,
                   std::vector<const Context*>& scopes,
                   std::string& out);

Status render_children(const Node& node,
                       std::vector<const Context*>& scopes,
                       std::string& out) {
  for (const auto& child : node.children) {
    SEGBUS_RETURN_IF_ERROR(render_node(*child, scopes, out));
  }
  return Status::ok();
}

Status render_node(const Node& node,
                   std::vector<const Context*>& scopes, std::string& out) {
  switch (node.kind) {
    case NodeKind::kText:
      out += node.text;
      return Status::ok();
    case NodeKind::kVariable: {
      const Value* value = lookup(scopes, node.text);
      if (value == nullptr) {
        return not_found_error("template variable '" + node.text +
                               "' is not defined");
      }
      if (value->is_list()) {
        return invalid_argument_error("template variable '" + node.text +
                                      "' is a list; use {{#each}}");
      }
      out += value->scalar();
      return Status::ok();
    }
    case NodeKind::kEach: {
      const Value* value = lookup(scopes, node.text);
      if (value == nullptr) {
        return not_found_error("template list '" + node.text +
                               "' is not defined");
      }
      if (!value->is_list()) {
        return invalid_argument_error("template variable '" + node.text +
                                      "' is not a list");
      }
      const auto& list = value->list();
      for (std::size_t i = 0; i < list.size(); ++i) {
        Context specials = list[i];
        specials.emplace("@index", Value(str_format("%zu", i)));
        specials.emplace("@first", Value(i == 0 ? "true" : "false"));
        specials.emplace("@last",
                         Value(i + 1 == list.size() ? "true" : "false"));
        scopes.push_back(&specials);
        Status status = render_children(node, scopes, out);
        scopes.pop_back();
        SEGBUS_RETURN_IF_ERROR(status);
      }
      return Status::ok();
    }
    case NodeKind::kIf: {
      const Value* value = lookup(scopes, node.text);
      if (value != nullptr && value->truthy()) {
        return render_children(node, scopes, out);
      }
      return Status::ok();
    }
    case NodeKind::kUnless: {
      const Value* value = lookup(scopes, node.text);
      if (value == nullptr || !value->truthy()) {
        return render_children(node, scopes, out);
      }
      return Status::ok();
    }
  }
  return internal_error("unreachable template node kind");
}

}  // namespace

Result<Template> Template::parse(std::string_view text) {
  auto root = std::make_shared<Node>();
  root->kind = NodeKind::kEach;  // container; never looked up

  std::vector<std::shared_ptr<Node>> stack = {root};
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t open = text.find("{{", pos);
    if (open == std::string_view::npos) {
      auto literal = std::make_shared<Node>();
      literal->kind = NodeKind::kText;
      literal->text = std::string(text.substr(pos));
      stack.back()->children.push_back(literal);
      break;
    }
    if (open > pos) {
      auto literal = std::make_shared<Node>();
      literal->kind = NodeKind::kText;
      literal->text = std::string(text.substr(pos, open - pos));
      stack.back()->children.push_back(literal);
    }
    std::size_t close = text.find("}}", open + 2);
    if (close == std::string_view::npos) {
      return parse_error(str_format(
          "unterminated '{{' at offset %zu", open));
    }
    std::string_view body = trim(text.substr(open + 2, close - open - 2));
    pos = close + 2;
    if (body.empty()) {
      return parse_error(str_format("empty '{{}}' at offset %zu", open));
    }
    if (body.front() == '!') continue;  // comment
    if (starts_with(body, "#each")) {
      std::string_view name = trim(body.substr(5));
      if (name.empty()) {
        return parse_error("'#each' without a list name");
      }
      auto block = std::make_shared<Node>();
      block->kind = NodeKind::kEach;
      block->text = std::string(name);
      stack.back()->children.push_back(block);
      stack.push_back(block);
      continue;
    }
    if (starts_with(body, "#unless")) {
      std::string_view name = trim(body.substr(7));
      if (name.empty()) {
        return parse_error("'#unless' without a condition name");
      }
      auto block = std::make_shared<Node>();
      block->kind = NodeKind::kUnless;
      block->text = std::string(name);
      stack.back()->children.push_back(block);
      stack.push_back(block);
      continue;
    }
    if (starts_with(body, "#if")) {
      std::string_view name = trim(body.substr(3));
      if (name.empty()) {
        return parse_error("'#if' without a condition name");
      }
      auto block = std::make_shared<Node>();
      block->kind = NodeKind::kIf;
      block->text = std::string(name);
      stack.back()->children.push_back(block);
      stack.push_back(block);
      continue;
    }
    if (body == "/each" || body == "/if" || body == "/unless") {
      if (stack.size() <= 1) {
        return parse_error("closing '" + std::string(body) +
                           "' without an open block");
      }
      NodeKind expected = body == "/each"
                              ? NodeKind::kEach
                              : body == "/if" ? NodeKind::kIf
                                              : NodeKind::kUnless;
      if (stack.back()->kind != expected) {
        return parse_error("mismatched closing '" + std::string(body) + "'");
      }
      stack.pop_back();
      continue;
    }
    if (body.front() == '#' || body.front() == '/') {
      return parse_error("unknown template directive '" + std::string(body) +
                         "'");
    }
    auto variable = std::make_shared<Node>();
    variable->kind = NodeKind::kVariable;
    variable->text = std::string(body);
    stack.back()->children.push_back(variable);
  }
  if (stack.size() != 1) {
    return parse_error("template has an unclosed block");
  }
  Template result;
  result.root_ = root;
  return result;
}

Result<std::string> Template::render(const Context& root) const {
  std::string out;
  std::vector<const Context*> scopes = {&root};
  for (const auto& child : root_->children) {
    SEGBUS_RETURN_IF_ERROR(render_node(*child, scopes, out));
  }
  return out;
}

Result<std::string> render_template(std::string_view text,
                                    const Context& root) {
  SEGBUS_ASSIGN_OR_RETURN(Template tmpl, Template::parse(text));
  return tmpl.render(root);
}

}  // namespace segbus::m2t
