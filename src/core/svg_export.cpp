#include "core/svg_export.hpp"

#include <algorithm>
#include <fstream>

#include "support/strings.hpp"
#include "xml/writer.hpp"

namespace segbus::core {

namespace {

constexpr const char* kFont =
    "font-family=\"Helvetica, Arial, sans-serif\"";

/// Palette (colorblind-safe categorical colors, cycled).
constexpr const char* kColors[] = {
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb",
};
constexpr std::size_t kColorCount = sizeof(kColors) / sizeof(kColors[0]);

std::string svg_header(int width, int height, const std::string& title) {
  std::string out = str_format(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
      "height=\"%d\" viewBox=\"0 0 %d %d\">\n",
      width, height, width, height);
  out += str_format(
      "  <rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" "
      "fill=\"white\"/>\n",
      width, height);
  out += str_format(
      "  <text x=\"%d\" y=\"22\" %s font-size=\"15\" "
      "font-weight=\"bold\">%s</text>\n",
      12, kFont, xml::escape_text(title).c_str());
  return out;
}

/// Draws a time axis with ~8 labeled ticks under the plot area.
std::string time_axis(int x0, int x1, int y, Picoseconds span) {
  std::string out;
  out += str_format(
      "  <line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#444\" "
      "stroke-width=\"1\"/>\n",
      x0, y, x1, y);
  const int ticks = 8;
  for (int i = 0; i <= ticks; ++i) {
    const int x = x0 + (x1 - x0) * i / ticks;
    const double us =
        span.microseconds() * static_cast<double>(i) / ticks;
    out += str_format(
        "  <line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#444\"/>\n",
        x, y, x, y + 4);
    out += str_format(
        "  <text x=\"%d\" y=\"%d\" %s font-size=\"10\" "
        "text-anchor=\"middle\">%.0fus</text>\n",
        x, y + 16, kFont, us);
  }
  return out;
}

}  // namespace

std::string render_timeline_svg(const emu::EmulationResult& result,
                                SvgOptions options) {
  if (options.title.empty()) {
    options.title = "Figure 10 - progress of each application process";
  }
  Picoseconds span = result.total_execution_time;
  if (span.count() <= 0) span = Picoseconds(1);
  const int rows = static_cast<int>(result.processes.size());
  const int plot_x0 = options.margin_left;
  const int plot_x1 = options.width - 20;
  const int height =
      options.margin_top + rows * options.row_height + 40;

  std::string out = svg_header(options.width, height, options.title);
  auto to_x = [&](Picoseconds t) {
    double fraction = static_cast<double>(t.count()) /
                      static_cast<double>(span.count());
    return plot_x0 +
           static_cast<int>(fraction *
                            static_cast<double>(plot_x1 - plot_x0));
  };

  for (int row = 0; row < rows; ++row) {
    const emu::ProcessStats& p =
        result.processes[static_cast<std::size_t>(row)];
    const int y = options.margin_top + row * options.row_height;
    // Row label + zebra stripe.
    if (row % 2 == 0) {
      out += str_format(
          "  <rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
          "fill=\"#f4f4f4\"/>\n",
          plot_x0, y, plot_x1 - plot_x0, options.row_height);
    }
    out += str_format(
        "  <text x=\"%d\" y=\"%d\" %s font-size=\"11\" "
        "text-anchor=\"end\">%s</text>\n",
        plot_x0 - 6, y + options.row_height / 2 + 4, kFont,
        xml::escape_text(p.name).c_str());
    if (!p.started) continue;
    const int bar_x = to_x(p.start_time);
    const int bar_w = std::max(2, to_x(p.end_time) - bar_x);
    out += str_format(
        "  <rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" rx=\"2\" "
        "fill=\"%s\"><title>%s: %s .. %s</title></rect>\n",
        bar_x, y + 4, bar_w, options.row_height - 8,
        kColors[static_cast<std::size_t>(row) % kColorCount],
        xml::escape_text(p.name).c_str(),
        format_us(p.start_time).c_str(), format_us(p.end_time).c_str());
  }

  out += time_axis(plot_x0, plot_x1,
                   options.margin_top + rows * options.row_height + 8,
                   span);
  out += "</svg>\n";
  return out;
}

std::string render_activity_svg(const emu::EmulationResult& result,
                                SvgOptions options) {
  if (options.title.empty()) {
    options.title = "Figure 11 - activity of the platform elements";
  }
  if (result.activity.empty()) {
    std::string out = svg_header(options.width, 80, options.title);
    out += str_format(
        "  <text x=\"%d\" y=\"50\" %s font-size=\"12\">no activity data; "
        "enable EngineOptions::record_activity</text>\n",
        options.margin_left, kFont);
    out += "</svg>\n";
    return out;
  }

  std::size_t buckets = 0;
  std::uint32_t peak = 1;
  for (const emu::ActivitySeries& series : result.activity) {
    buckets = std::max(buckets, series.busy_ticks_per_bucket.size());
    for (std::uint32_t v : series.busy_ticks_per_bucket) {
      peak = std::max(peak, v);
    }
  }
  if (buckets == 0) buckets = 1;

  const int rows = static_cast<int>(result.activity.size());
  const int plot_x0 = options.margin_left;
  const int plot_x1 = options.width - 20;
  const int height = options.margin_top + rows * options.row_height + 40;
  const double cell_width =
      static_cast<double>(plot_x1 - plot_x0) /
      static_cast<double>(buckets);

  std::string out = svg_header(options.width, height, options.title);
  for (int row = 0; row < rows; ++row) {
    const emu::ActivitySeries& series =
        result.activity[static_cast<std::size_t>(row)];
    const int y = options.margin_top + row * options.row_height;
    out += str_format(
        "  <text x=\"%d\" y=\"%d\" %s font-size=\"11\" "
        "text-anchor=\"end\">%s</text>\n",
        plot_x0 - 6, y + options.row_height / 2 + 4, kFont,
        xml::escape_text(series.element).c_str());
    for (std::size_t b = 0; b < series.busy_ticks_per_bucket.size(); ++b) {
      const std::uint32_t value = series.busy_ticks_per_bucket[b];
      if (value == 0) continue;
      const double intensity =
          static_cast<double>(value) / static_cast<double>(peak);
      // White -> deep blue ramp.
      const int channel = 235 - static_cast<int>(intensity * 180.0);
      const int x = plot_x0 + static_cast<int>(
                                  static_cast<double>(b) * cell_width);
      const int w = std::max(
          1, static_cast<int>(cell_width + 0.999));
      out += str_format(
          "  <rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
          "fill=\"rgb(%d,%d,235)\"/>\n",
          x, y + 3, w, options.row_height - 6, channel, channel);
    }
  }

  const Picoseconds span(
      static_cast<std::int64_t>(buckets) * result.activity_bucket.count());
  out += time_axis(plot_x0, plot_x1,
                   options.margin_top + rows * options.row_height + 8,
                   span);
  out += "</svg>\n";
  return out;
}

Status write_svg_file(const std::string& svg, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return invalid_argument_error("cannot open file for writing: " + path);
  }
  file << svg;
  if (!file) return internal_error("short write to file: " + path);
  return Status::ok();
}

}  // namespace segbus::core
