// JSON export of emulation results — the machine-readable counterpart of
// the paper-style text report, for dashboards and regression tracking.
#pragma once

#include "emu/stats.hpp"
#include "platform/model.hpp"
#include "support/json.hpp"

namespace segbus::core {

/// Serializes the full result (per-process, per-SA, per-BU, per-flow,
/// CA, totals; activity/trace included only when present).
JsonValue result_to_json(const emu::EmulationResult& result,
                         const platform::PlatformModel& platform);

}  // namespace segbus::core
