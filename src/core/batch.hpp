// Batch experiment grids: sweep (package size x allocation x timing model)
// for one application and collect execution times, analytic bounds and
// traffic counters into a table / CSV / JSON — the regression-tracking
// harness behind the benches and the experiment_grid example.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "place/cost.hpp"
#include "support/csv.hpp"
#include "support/json.hpp"
#include "support/status.hpp"

namespace segbus::core {

/// Produces the application model for a given package size (package-size
/// sweeps need per-size C values when compute has a fixed component).
using AppFactory =
    std::function<Result<psdf::PsdfModel>(std::uint32_t package_size)>;

/// One labeled allocation candidate.
struct LabeledAllocation {
  std::string label;
  place::Allocation allocation;
};

/// One labeled timing model.
struct LabeledTiming {
  std::string label;
  emu::TimingModel timing;
};

/// The grid to sweep. Platforms are built with `segment_clocks` (cycled)
/// and `ca_clock`; the segment count is the max segment index used by each
/// allocation plus one.
struct GridSpec {
  std::vector<std::uint32_t> package_sizes;
  std::vector<LabeledAllocation> allocations;
  std::vector<LabeledTiming> timings;
  std::vector<Frequency> segment_clocks;
  Frequency ca_clock = Frequency::from_mhz(111.0);
  /// Also compute the closed-form lower bound / estimate per cell.
  bool analytic = true;
  /// Branch-and-bound pruning: skip the engine run for cells whose v2
  /// static lower bound (analysis::PruneOracle) exceeds the fastest
  /// emulated cell so far. Admissible, so the sweep's minimum is
  /// bit-identical with pruning on or off; pruned cells report their
  /// lower bound and no measurements. Implies per-cell bound computation
  /// even when `analytic` is off.
  bool prune = false;
  /// Engine backend each cell runs on (all backends are bit-identical;
  /// kFast makes large sweeps practical).
  emu::BackendOptions backend;
  /// Optional counters sink: the sweep's emulated/deduplicated/pruned
  /// cell totals land in segbus_grid_cells_total{outcome=...}.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One grid cell's measurements.
struct GridEntry {
  std::uint32_t package_size = 0;
  std::string allocation;
  std::string timing;
  Picoseconds execution_time{0};
  Picoseconds analytic_lower_bound{0};
  Picoseconds analytic_estimate{0};
  std::uint64_t ca_tct = 0;
  std::uint64_t inter_segment_packages = 0;
  double max_bu_mean_wp = 0.0;
  /// True when the prune oracle skipped this cell's engine run (only its
  /// analytic_lower_bound is meaningful then).
  bool pruned = false;
};

/// The swept grid.
struct GridReport {
  std::vector<GridEntry> entries;
  /// Cells that went through the engine vs. cells served from the in-run
  /// content-addressed dedup (identical fingerprints emulate once) vs.
  /// cells the static lower bound pruned before any engine run.
  std::size_t emulated_cells = 0;
  std::size_t deduplicated_cells = 0;
  std::size_t pruned_cells = 0;

  /// Fixed-width table, one row per cell.
  std::string render() const;
  /// CSV with one row per cell.
  CsvWriter to_csv() const;
  /// JSON array of cells.
  JsonValue to_json() const;
};

/// Runs every (package, allocation, timing) combination. Fails fast on the
/// first invalid combination. Combinations with identical scheme
/// fingerprints (core/fingerprint.hpp) — e.g. the same allocation listed
/// under two labels — are emulated once and copied into each cell.
Result<GridReport> run_grid(const AppFactory& app_factory,
                            const GridSpec& spec);

}  // namespace segbus::core
