// Configuration exploration — the design-space loop the paper motivates:
// "the emulator will support the analysis of various SegBus instances that
// may answer, better or worse, to specific application requirements. It
// helps to decide at early stages of design process which platform
// configuration will be most suitable."
#pragma once

#include <string>
#include <vector>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "place/placer.hpp"
#include "support/json.hpp"
#include "support/status.hpp"

namespace segbus::core {

/// One candidate configuration to evaluate.
struct Candidate {
  std::string label;
  platform::PlatformModel platform;
};

/// Exploration knobs beyond the per-run session configuration.
struct ExploreOptions {
  SessionConfig session;
  /// Branch-and-bound pruning: skip the engine run for any candidate
  /// whose v2 static lower bound (analysis::PruneOracle) already exceeds
  /// the incumbent's emulated execution time. The bound is admissible,
  /// so the ranking's best entry is bit-identical with pruning on or off;
  /// pruned candidates keep their lower bound in the report but are
  /// ranked after every emulated one.
  bool prune = false;
  /// Optional counters sink: the run's emulated/deduplicated/pruned
  /// totals land in segbus_explore_candidates_total{outcome=...} so
  /// Prometheus scrapes (and `segbus_cli stats`) show search efficiency.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One evaluated configuration.
struct ExplorationEntry {
  std::string label;
  Picoseconds execution_time{0};
  std::uint64_t ca_tct = 0;
  std::uint64_t inter_segment_requests = 0;
  double max_bu_mean_wp = 0.0;  ///< worst BU congestion (mean WP)
  /// The candidate's static lower bound (filled when pruning is on).
  Picoseconds lower_bound{0};
  /// True when the prune oracle skipped this candidate's engine run.
  bool pruned = false;
};

/// Ranked outcome, fastest first (pruned candidates last).
struct ExplorationReport {
  std::vector<ExplorationEntry> entries;
  /// How many candidates actually went through the engine vs. were served
  /// from the in-run content-addressed dedup (see core/fingerprint.hpp)
  /// vs. were pruned by the static lower bound before any engine run.
  std::size_t emulated = 0;
  std::size_t deduplicated = 0;
  std::size_t pruned = 0;
  /// Fraction of candidates the oracle pruned (0 when there were none).
  double prune_rate() const noexcept {
    const std::size_t total = emulated + deduplicated + pruned;
    return total == 0 ? 0.0
                      : static_cast<double>(pruned) /
                            static_cast<double>(total);
  }
  std::string render() const;
};

/// Emulates the application on every candidate and ranks the results.
/// Candidates whose scheme fingerprint matches an earlier candidate reuse
/// that candidate's measurements (under their own label) instead of
/// re-emulating — duplicate grid cells cost one engine run, not N.
Result<ExplorationReport> explore(const psdf::PsdfModel& application,
                                  std::vector<Candidate> candidates,
                                  const SessionConfig& config = {});

/// Same, with exploration options (pruning). The two-argument overload is
/// explore(..., ExploreOptions{config, /*prune=*/false}).
Result<ExplorationReport> explore(const psdf::PsdfModel& application,
                                  std::vector<Candidate> candidates,
                                  const ExploreOptions& options);

/// JSON export of a ranked exploration:
///   { "entries": [ { "label", "pruned", "execution_time_ps",
///                    "lower_bound_ps", "ca_tct",
///                    "inter_segment_requests", "max_bu_mean_wp" } ],
///     "emulated": N, "deduplicated": N, "pruned": N, "prune_rate": R }
/// Pruned entries carry execution_time_ps = 0 and zero counters.
JsonValue exploration_to_json(const ExplorationReport& report);

/// Builds a candidate from a placement search: `num_segments` segments with
/// the given clocks (cycled), allocation from the annealing placer.
Result<Candidate> candidate_from_placement(
    const psdf::PsdfModel& application, std::uint32_t num_segments,
    const std::vector<Frequency>& segment_clocks, Frequency ca_clock,
    std::uint32_t package_size, const place::AnnealOptions& anneal = {});

}  // namespace segbus::core
