// Configuration exploration — the design-space loop the paper motivates:
// "the emulator will support the analysis of various SegBus instances that
// may answer, better or worse, to specific application requirements. It
// helps to decide at early stages of design process which platform
// configuration will be most suitable."
#pragma once

#include <string>
#include <vector>

#include "core/session.hpp"
#include "place/placer.hpp"
#include "support/status.hpp"

namespace segbus::core {

/// One candidate configuration to evaluate.
struct Candidate {
  std::string label;
  platform::PlatformModel platform;
};

/// One evaluated configuration.
struct ExplorationEntry {
  std::string label;
  Picoseconds execution_time{0};
  std::uint64_t ca_tct = 0;
  std::uint64_t inter_segment_requests = 0;
  double max_bu_mean_wp = 0.0;  ///< worst BU congestion (mean WP)
};

/// Ranked outcome, fastest first.
struct ExplorationReport {
  std::vector<ExplorationEntry> entries;
  /// How many candidates actually went through the engine vs. were served
  /// from the in-run content-addressed dedup (see core/fingerprint.hpp).
  std::size_t emulated = 0;
  std::size_t deduplicated = 0;
  std::string render() const;
};

/// Emulates the application on every candidate and ranks the results.
/// Candidates whose scheme fingerprint matches an earlier candidate reuse
/// that candidate's measurements (under their own label) instead of
/// re-emulating — duplicate grid cells cost one engine run, not N.
Result<ExplorationReport> explore(const psdf::PsdfModel& application,
                                  std::vector<Candidate> candidates,
                                  const SessionConfig& config = {});

/// Builds a candidate from a placement search: `num_segments` segments with
/// the given clocks (cycled), allocation from the annealing placer.
Result<Candidate> candidate_from_placement(
    const psdf::PsdfModel& application, std::uint32_t num_segments,
    const std::vector<Frequency>& segment_clocks, Frequency ca_clock,
    std::uint32_t package_size, const place::AnnealOptions& anneal = {});

}  // namespace segbus::core
