#include "core/json_export.hpp"

#include "obs/export.hpp"

namespace segbus::core {

JsonValue result_to_json(const emu::EmulationResult& result,
                         const platform::PlatformModel& platform) {
  JsonValue root = JsonValue::object();
  root.set("platform", JsonValue::string(platform.name()));
  root.set("package_size",
           JsonValue::unsigned_integer(platform.package_size()));
  root.set("completed", JsonValue::boolean(result.completed));
  root.set("total_execution_ps",
           JsonValue::integer(result.total_execution_time.count()));
  root.set("last_delivery_ps",
           JsonValue::integer(result.last_delivery_time.count()));

  JsonValue processes = JsonValue::array();
  for (const emu::ProcessStats& p : result.processes) {
    JsonValue item = JsonValue::object();
    item.set("name", JsonValue::string(p.name));
    item.set("started", JsonValue::boolean(p.started));
    item.set("start_ps", JsonValue::integer(p.start_time.count()));
    item.set("end_ps", JsonValue::integer(p.end_time.count()));
    item.set("flag", JsonValue::boolean(p.flag));
    item.set("flag_ps", JsonValue::integer(p.flag_time.count()));
    item.set("packages_sent", JsonValue::unsigned_integer(p.packages_sent));
    item.set("packages_received",
             JsonValue::unsigned_integer(p.packages_received));
    processes.push(std::move(item));
  }
  root.set("processes", std::move(processes));

  JsonValue sas = JsonValue::array();
  for (std::size_t i = 0; i < result.sas.size(); ++i) {
    const emu::SaStats& sa = result.sas[i];
    JsonValue item = JsonValue::object();
    item.set("segment", JsonValue::unsigned_integer(i + 1));
    item.set("tct", JsonValue::unsigned_integer(sa.tct));
    item.set("intra_requests",
             JsonValue::unsigned_integer(sa.intra_requests));
    item.set("inter_requests",
             JsonValue::unsigned_integer(sa.inter_requests));
    item.set("busy_ticks", JsonValue::unsigned_integer(sa.busy_ticks));
    item.set("execution_ps", JsonValue::integer(sa.execution_time.count()));
    item.set("utilization", JsonValue::number(result.sa_utilization(i)));
    item.set("packets_to_left", JsonValue::unsigned_integer(
                                    result.segments[i].packets_to_left));
    item.set("packets_to_right", JsonValue::unsigned_integer(
                                     result.segments[i].packets_to_right));
    sas.push(std::move(item));
  }
  root.set("segment_arbiters", std::move(sas));

  JsonValue bus = JsonValue::array();
  for (std::size_t i = 0; i < result.bus.size(); ++i) {
    const emu::BuStats& bu = result.bus[i];
    JsonValue item = JsonValue::object();
    item.set("name", JsonValue::string(platform.border_units()[i].name()));
    item.set("received_from_left",
             JsonValue::unsigned_integer(bu.received_from_left));
    item.set("received_from_right",
             JsonValue::unsigned_integer(bu.received_from_right));
    item.set("transferred_to_left",
             JsonValue::unsigned_integer(bu.transferred_to_left));
    item.set("transferred_to_right",
             JsonValue::unsigned_integer(bu.transferred_to_right));
    item.set("tct", JsonValue::unsigned_integer(bu.tct));
    item.set("up_ticks", JsonValue::unsigned_integer(bu.up_ticks));
    item.set("wp_ticks", JsonValue::unsigned_integer(bu.wp_ticks));
    item.set("transfers", JsonValue::unsigned_integer(bu.transfers));
    item.set("mean_wp", JsonValue::number(bu.mean_wp()));
    bus.push(std::move(item));
  }
  root.set("border_units", std::move(bus));

  {
    JsonValue ca = JsonValue::object();
    ca.set("tct", JsonValue::unsigned_integer(result.ca.tct));
    ca.set("inter_requests",
           JsonValue::unsigned_integer(result.ca.inter_requests));
    ca.set("grants", JsonValue::unsigned_integer(result.ca.grants));
    ca.set("busy_ticks", JsonValue::unsigned_integer(result.ca.busy_ticks));
    ca.set("execution_ps",
           JsonValue::integer(result.ca.execution_time.count()));
    ca.set("utilization", JsonValue::number(result.ca_utilization()));
    root.set("central_arbiter", std::move(ca));
  }

  JsonValue flows = JsonValue::array();
  for (const emu::FlowStats& f : result.flows) {
    JsonValue item = JsonValue::object();
    item.set("source", JsonValue::string(f.source));
    item.set("target", JsonValue::string(f.target));
    item.set("ordering", JsonValue::unsigned_integer(f.ordering));
    item.set("inter_segment", JsonValue::boolean(f.inter_segment));
    item.set("packages", JsonValue::unsigned_integer(f.packages));
    item.set("first_delivery_ps",
             JsonValue::integer(f.first_delivery.count()));
    item.set("last_delivery_ps",
             JsonValue::integer(f.last_delivery.count()));
    item.set("min_latency_ps", JsonValue::integer(f.min_latency_ps));
    item.set("mean_latency_ps", JsonValue::number(f.mean_latency_ps()));
    item.set("max_latency_ps", JsonValue::integer(f.max_latency_ps));
    flows.push(std::move(item));
  }
  root.set("flows", std::move(flows));

  if (!result.activity.empty()) {
    JsonValue activity = JsonValue::array();
    for (const emu::ActivitySeries& series : result.activity) {
      JsonValue item = JsonValue::object();
      item.set("element", JsonValue::string(series.element));
      JsonValue samples = JsonValue::array();
      for (std::uint32_t v : series.busy_ticks_per_bucket) {
        samples.push(JsonValue::unsigned_integer(v));
      }
      item.set("busy_ticks_per_bucket", std::move(samples));
      activity.push(std::move(item));
    }
    root.set("activity_bucket_ps",
             JsonValue::integer(result.activity_bucket.count()));
    root.set("activity", std::move(activity));
  }

  if (!result.trace.empty()) {
    root.set("trace_events",
             JsonValue::unsigned_integer(result.trace.size()));
  }

  if (!result.metrics.empty()) {
    root.set("metrics", obs::to_json_series(result.metrics));
  }
  return root;
}

}  // namespace segbus::core
