#include "core/accuracy.hpp"

namespace segbus::core {

Result<AccuracyReport> compare_accuracy(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::EngineOptions& options) {
  AccuracyReport report;
  {
    SEGBUS_ASSIGN_OR_RETURN(
        emu::EmulationResult result,
        emu::run_emulation(application, platform,
                           emu::TimingModel::emulator(), options));
    if (!result.completed) {
      return internal_error("estimation run did not complete");
    }
    report.estimated = result.total_execution_time;
  }
  {
    SEGBUS_ASSIGN_OR_RETURN(
        emu::EmulationResult result,
        emu::run_emulation(application, platform,
                           emu::TimingModel::reference(), options));
    if (!result.completed) {
      return internal_error("reference run did not complete");
    }
    report.actual = result.total_execution_time;
  }
  return report;
}

}  // namespace segbus::core
