#include "core/report.hpp"

#include <algorithm>

#include "support/strings.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "support/time.hpp"

namespace segbus::core {

namespace {

std::string frequency_label(Frequency f) {
  ClockDomain domain("", f);
  return domain.frequency_label();
}

}  // namespace

std::string render_paper_report(const emu::EmulationResult& result,
                                const platform::PlatformModel& platform) {
  std::string out;

  // Per-process start/end times (the lines the paper prints for P0/P8/P7).
  for (const emu::ProcessStats& p : result.processes) {
    if (!p.started) continue;
    out += str_format("%s, Start Time = %s, End Time = %s\n",
                      p.name.c_str(), format_ps(p.start_time).c_str(),
                      format_ps(p.end_time).c_str());
  }
  // Sink arrival line ("P14 received last package at ...").
  for (const emu::ProcessStats& p : result.processes) {
    if (p.packages_sent == 0 && p.packages_received > 0) {
      out += str_format("%s received last package at %s\n", p.name.c_str(),
                        format_ps(p.end_time).c_str());
    }
  }

  out += str_format("CA TCT = %llu\n",
                    static_cast<unsigned long long>(result.ca.tct));
  out += str_format("Execution time = %s @ %s\n",
                    format_ps(result.total_execution_time).c_str(),
                    frequency_label(platform.ca_clock()).c_str());

  // Border units.
  for (std::size_t i = 0; i < result.bus.size(); ++i) {
    const emu::BuStats& bu = result.bus[i];
    const platform::BorderUnitSpec& spec = platform.border_units()[i];
    out += str_format("%s:\tTotal input packages = %llu,\n",
                      spec.name().c_str(),
                      static_cast<unsigned long long>(bu.total_input()));
    out += str_format("\tTotal output packages = %llu\n",
                      static_cast<unsigned long long>(bu.total_output()));
    out += str_format(
        "   Package Received from Segment %u = %llu,\n", spec.left + 1,
        static_cast<unsigned long long>(bu.received_from_left));
    out += str_format(
        "\tPackage Transfered to Segment %u = %llu\n", spec.left + 1,
        static_cast<unsigned long long>(bu.transferred_to_left));
    out += str_format(
        "   Package Received from Segment %u = %llu,\n", spec.right + 1,
        static_cast<unsigned long long>(bu.received_from_right));
    out += str_format(
        "\tPackage Transfered to Segment %u = %llu\n", spec.right + 1,
        static_cast<unsigned long long>(bu.transferred_to_right));
    out += str_format("   TCT = %llu\n",
                      static_cast<unsigned long long>(bu.tct));
  }

  // Per-segment originating traffic.
  for (std::size_t s = 0; s < result.segments.size(); ++s) {
    out += str_format(
        "Segment %zu:\tPackets transfered to Left = %llu,\n", s + 1,
        static_cast<unsigned long long>(result.segments[s].packets_to_left));
    out += str_format(
        "\tPackets transfered to Right = %llu\n",
        static_cast<unsigned long long>(
            result.segments[s].packets_to_right));
  }

  // Segment arbiters.
  for (std::size_t s = 0; s < result.sas.size(); ++s) {
    const emu::SaStats& sa = result.sas[s];
    out += str_format("SA%zu:\tTCT = %llu,\n", s + 1,
                      static_cast<unsigned long long>(sa.tct));
    out += str_format("\tTotal intra-segment requests = %llu,\n",
                      static_cast<unsigned long long>(sa.intra_requests));
    out += str_format("\tTotal inter-segment requests = %llu\n",
                      static_cast<unsigned long long>(sa.inter_requests));
    out += str_format(
        "\tExecution Time = %s @ %s\n",
        format_ps(sa.execution_time).c_str(),
        frequency_label(
            platform.segment(static_cast<platform::SegmentId>(s)).clock)
            .c_str());
  }

  return out;
}

std::string render_timeline(const emu::EmulationResult& result,
                            std::size_t width) {
  Picoseconds span = result.total_execution_time;
  if (span.count() <= 0) span = Picoseconds(1);
  std::size_t name_width = 0;
  for (const emu::ProcessStats& p : result.processes) {
    name_width = std::max(name_width, p.name.size());
  }
  std::string out;
  out += str_format("process timeline over %s (one column = %s)\n",
                    format_us(span).c_str(),
                    format_us(Picoseconds(span.count() /
                                          static_cast<std::int64_t>(width)))
                        .c_str());
  for (const emu::ProcessStats& p : result.processes) {
    out += pad(p.name, name_width, Align::kLeft);
    out += " |";
    if (!p.started) {
      out += std::string(width, ' ');
      out += "| (never active)\n";
      continue;
    }
    const auto to_col = [&](Picoseconds t) {
      auto col = static_cast<std::size_t>(
          (static_cast<double>(t.count()) /
           static_cast<double>(span.count())) *
          static_cast<double>(width));
      return std::min(col, width - 1);
    };
    std::size_t begin = to_col(p.start_time);
    std::size_t end = to_col(p.end_time);
    std::string bar(width, ' ');
    for (std::size_t c = begin; c <= end; ++c) bar[c] = '=';
    bar[begin] = '[';
    bar[end] = ']';
    out += bar;
    out += str_format("| %s .. %s\n", format_us(p.start_time).c_str(),
                      format_us(p.end_time).c_str());
  }
  return out;
}

std::string render_activity(const emu::EmulationResult& result,
                            std::size_t max_width) {
  if (result.activity.empty()) {
    return "(no activity data; enable EngineOptions::record_activity)\n";
  }
  std::size_t buckets = 0;
  std::size_t name_width = 0;
  std::uint32_t peak = 1;
  for (const emu::ActivitySeries& series : result.activity) {
    buckets = std::max(buckets, series.busy_ticks_per_bucket.size());
    name_width = std::max(name_width, series.element.size());
    for (std::uint32_t v : series.busy_ticks_per_bucket) {
      peak = std::max(peak, v);
    }
  }
  if (buckets == 0) buckets = 1;
  const std::size_t stride = (buckets + max_width - 1) / max_width;
  static constexpr char kLevels[] = " .:-=+*#%@";
  std::string out;
  out += str_format(
      "activity (bucket = %s, column = %zu bucket(s), peak = %u busy "
      "ticks)\n",
      format_us(result.activity_bucket).c_str(), stride, peak);
  for (const emu::ActivitySeries& series : result.activity) {
    out += pad(series.element, name_width, Align::kLeft);
    out += " |";
    for (std::size_t b = 0; b < buckets; b += stride) {
      std::uint64_t sum = 0;
      std::size_t n = 0;
      for (std::size_t k = b;
           k < std::min(b + stride, series.busy_ticks_per_bucket.size());
           ++k, ++n) {
        sum += series.busy_ticks_per_bucket[k];
      }
      double mean = n == 0 ? 0.0
                           : static_cast<double>(sum) /
                                 static_cast<double>(n);
      auto level = static_cast<std::size_t>(
          (mean / static_cast<double>(peak)) * (sizeof(kLevels) - 2));
      level = std::min(level, sizeof(kLevels) - 2);
      out += kLevels[level];
    }
    out += "|\n";
  }
  return out;
}

CsvWriter timeline_csv(const emu::EmulationResult& result) {
  CsvWriter csv({"process", "start_ps", "end_ps", "packages_sent",
                 "packages_received"});
  for (const emu::ProcessStats& p : result.processes) {
    csv.add_row({p.name,
                 str_format("%lld",
                            static_cast<long long>(p.start_time.count())),
                 str_format("%lld",
                            static_cast<long long>(p.end_time.count())),
                 str_format("%llu",
                            static_cast<unsigned long long>(
                                p.packages_sent)),
                 str_format("%llu", static_cast<unsigned long long>(
                                        p.packages_received))});
  }
  return csv;
}

CsvWriter activity_csv(const emu::EmulationResult& result) {
  CsvWriter csv({"element", "bucket_start_ps", "busy_ticks"});
  for (const emu::ActivitySeries& series : result.activity) {
    for (std::size_t b = 0; b < series.busy_ticks_per_bucket.size(); ++b) {
      csv.add_row(
          {series.element,
           str_format("%lld", static_cast<long long>(
                                  static_cast<std::int64_t>(b) *
                                  result.activity_bucket.count())),
           str_format("%u", series.busy_ticks_per_bucket[b])});
    }
  }
  return csv;
}

std::string render_summary(const emu::EmulationResult& result,
                           const platform::PlatformModel& platform) {
  std::string out;
  out += str_format("configuration : %s (%s)\n", platform.name().c_str(),
                    platform.summary().c_str());
  out += str_format("execution time: %s (%s)%s\n",
                    format_us(result.total_execution_time).c_str(),
                    format_ps(result.total_execution_time).c_str(),
                    result.completed ? "" : "  [INCOMPLETE RUN]");
  out += str_format("last delivery : %s\n",
                    format_us(result.last_delivery_time).c_str());

  // Per-arbiter utilization, tracking the busiest one.
  double peak_utilization = result.ca_utilization();
  std::string busiest = "CA";
  out += str_format("CA  : %5.1f%% busy, %llu inter-segment requests\n",
                    100.0 * result.ca_utilization(),
                    static_cast<unsigned long long>(
                        result.ca.inter_requests));
  for (std::size_t s = 0; s < result.sas.size(); ++s) {
    double utilization = result.sa_utilization(s);
    out += str_format(
        "SA%zu : %5.1f%% busy, %llu intra / %llu inter requests\n", s + 1,
        100.0 * utilization,
        static_cast<unsigned long long>(result.sas[s].intra_requests),
        static_cast<unsigned long long>(result.sas[s].inter_requests));
    if (utilization > peak_utilization) {
      peak_utilization = utilization;
      busiest = str_format("SA%zu", s + 1);
    }
  }
  out += str_format("busiest element: %s (%.1f%%)\n", busiest.c_str(),
                    100.0 * peak_utilization);

  // Most congested BU by mean waiting period.
  if (!result.bus.empty()) {
    std::size_t worst = 0;
    for (std::size_t i = 1; i < result.bus.size(); ++i) {
      if (result.bus[i].mean_wp() > result.bus[worst].mean_wp()) worst = i;
    }
    out += str_format(
        "most congested BU: %s (mean WP %.2f ticks over %llu packages)\n",
        platform.border_units()[worst].name().c_str(),
        result.bus[worst].mean_wp(),
        static_cast<unsigned long long>(result.bus[worst].transfers));
  }
  if (!result.metrics.empty()) {
    out += str_format(
        "telemetry     : %zu metric series recorded (%llu grants observed)\n",
        result.metrics.size(),
        static_cast<unsigned long long>(
            result.metrics.family_count("segbus_grants_total")));
  }
  return out;
}

std::string render_flow_table(const emu::EmulationResult& result) {
  Table table;
  table.set_header({"flow", "T", "kind", "pkgs", "first", "last",
                    "lat min", "lat mean", "lat max"});
  table.set_column_alignment(0, Align::kLeft);
  for (const emu::FlowStats& f : result.flows) {
    table.add_row({f.source + " -> " + f.target,
                   str_format("%u", f.ordering),
                   f.inter_segment ? "inter" : "local",
                   str_format("%llu",
                              static_cast<unsigned long long>(f.packages)),
                   format_us(f.first_delivery),
                   format_us(f.last_delivery),
                   str_format("%.2fus",
                              static_cast<double>(f.min_latency_ps) / 1e6),
                   str_format("%.2fus", f.mean_latency_ps() / 1e6),
                   str_format("%.2fus",
                              static_cast<double>(f.max_latency_ps) /
                                  1e6)});
  }
  return table.render();
}

std::string render_stage_table(const emu::EmulationResult& result) {
  Table table;
  table.set_header({"stage (T)", "opened", "closed", "span", "share"});
  const double total =
      std::max<double>(1.0,
                       static_cast<double>(
                           result.total_execution_time.count()));
  Picoseconds previous_close{0};
  for (const emu::StageStats& stage : result.stages) {
    const Picoseconds span = stage.close_time - stage.open_time;
    table.add_row({str_format("%u", stage.ordering),
                   format_us(stage.open_time),
                   format_us(stage.close_time), format_us(span),
                   str_format("%.1f%%",
                              100.0 * static_cast<double>(span.count()) /
                                  total)});
    previous_close = stage.close_time;
  }
  (void)previous_close;
  return table.render();
}

std::string render_latency_histogram(const emu::EmulationResult& result,
                                     std::size_t bins) {
  std::vector<double> samples_us;
  for (const emu::FlowStats& flow : result.flows) {
    for (std::int64_t sample : flow.latency_samples) {
      samples_us.push_back(static_cast<double>(sample) / 1e6);
    }
  }
  if (samples_us.empty()) {
    return "(no latency samples; enable "
           "EngineOptions::record_latencies)\n";
  }
  Histogram histogram = Histogram::of(samples_us, bins);
  RunningStats stats;
  for (double sample : samples_us) stats.add(sample);
  std::string out = str_format(
      "package latency over %llu packages (us): mean %.2f, stddev %.2f, "
      "p50 %.2f, p90 %.2f, p99 %.2f\n",
      static_cast<unsigned long long>(stats.count()), stats.mean(),
      stats.stddev(), histogram.quantile(0.50), histogram.quantile(0.90),
      histogram.quantile(0.99));
  out += histogram.render();
  return out;
}

std::string render_bu_analysis(const emu::EmulationResult& result,
                               const platform::PlatformModel& platform) {
  std::string out;
  for (std::size_t i = 0; i < result.bus.size(); ++i) {
    const emu::BuStats& bu = result.bus[i];
    const platform::BorderUnitSpec& spec = platform.border_units()[i];
    const std::string id =
        str_format("%u%u", spec.left + 1, spec.right + 1);
    out += str_format("UP%s = %llu, TCT%s = %llu, mean WP%s = %.2f\n",
                      id.c_str(),
                      static_cast<unsigned long long>(bu.up_ticks),
                      id.c_str(), static_cast<unsigned long long>(bu.tct),
                      id.c_str(), bu.mean_wp());
  }
  return out;
}

}  // namespace segbus::core
