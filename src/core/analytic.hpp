// Closed-form (static) performance analysis of a mapped application —
// the zero-cost companion to emulation.
//
// The paper positions emulation against static estimation: an emulator
// captures arbitration, contention and cross-clock effects that a formula
// cannot. This module provides the formula side of that comparison:
//
//  * analytic_lower_bound() — a *provable* lower bound on the execution
//    time. Within one stage (one ordering rank) it takes the maximum of
//      - each master's serial work: packages x (C + request + data) ticks
//        of its segment clock, and
//      - each segment bus's raw occupancy: the data ticks of every package
//        transferred on it,
//    and sums stages (the schedule serializes stages globally). All
//    optional handshake costs are omitted, so no schedule can beat it.
//
//  * analytic_estimate() — a calibrated point estimate that adds the
//    emulator's per-package handshake costs (SA decision, CA round trip,
//    per-hop forwarding) to the same skeleton. Not a bound; typically
//    within ~10-20 % of the emulated figure for pipeline-style workloads
//    and used as a sanity cross-check.
#pragma once

#include "emu/timing.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::core {

/// Per-stage breakdown of an analytic computation.
struct AnalyticStage {
  std::uint32_t ordering = 0;   ///< the stage's T value
  Picoseconds duration{0};      ///< the stage's bound/estimate
  std::string binding;          ///< what bound: "master P3" or "bus Segment 1"
};

/// Result of an analytic computation.
struct AnalyticResult {
  Picoseconds total{0};
  std::vector<AnalyticStage> stages;
};

/// Provable lower bound on the emulated execution time (see file comment).
Result<AnalyticResult> analytic_lower_bound(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform);

/// Calibrated point estimate using the given timing model's handshake
/// costs.
Result<AnalyticResult> analytic_estimate(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing = emu::TimingModel::emulator());

}  // namespace segbus::core
