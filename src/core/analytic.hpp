// Closed-form (static) performance analysis of a mapped application —
// the zero-cost companion to emulation.
//
// The paper positions emulation against static estimation: an emulator
// captures arbitration, contention and cross-clock effects that a formula
// cannot. This module provides the formula side of that comparison:
//
//  * analytic_estimate() — a calibrated point estimate that adds the
//    emulator's per-package handshake costs (SA decision, CA round trip,
//    per-hop forwarding) to the lower bound's per-stage skeleton. Not a
//    bound; typically within ~10-20 % of the emulated figure for
//    pipeline-style workloads and used as a sanity cross-check.
#pragma once

#include "emu/timing.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::core {

/// Per-stage breakdown of an analytic computation.
struct AnalyticStage {
  std::uint32_t ordering = 0;   ///< the stage's T value
  Picoseconds duration{0};      ///< the stage's bound/estimate
  std::string binding;          ///< what bound: "master P3" or "bus Segment 1"
};

/// Result of an analytic computation.
struct AnalyticResult {
  Picoseconds total{0};
  std::vector<AnalyticStage> stages;
};

/// Calibrated point estimate using the given timing model's handshake
/// costs.
Result<AnalyticResult> analytic_estimate(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing = emu::TimingModel::emulator());

}  // namespace segbus::core
