// Result diffing: compare two emulation runs metric by metric — the
// regression-review companion to the batch grids (e.g. before/after a
// placement change, or tracking the estimate across library versions).
#pragma once

#include <string>
#include <vector>

#include "emu/stats.hpp"
#include "support/status.hpp"

namespace segbus::core {

/// One compared metric.
struct DiffRow {
  std::string metric;
  double before = 0.0;
  double after = 0.0;

  double delta() const { return after - before; }
  /// Relative change in percent (0 when both sides are 0).
  double delta_percent() const {
    if (before == 0.0) return after == 0.0 ? 0.0 : 100.0;
    return 100.0 * (after - before) / before;
  }
};

/// The structured diff.
struct ResultDiff {
  std::vector<DiffRow> rows;

  /// Rows whose relative change exceeds `threshold_percent` (absolute).
  std::vector<DiffRow> significant(double threshold_percent = 1.0) const;

  /// Fixed-width table, one row per metric, delta column signed.
  std::string render() const;
};

/// Compares the headline metrics of two runs (total/last-delivery time, CA
/// figures, per-SA TCT and requests, per-BU traffic and waiting periods).
/// The runs must come from platforms with the same shape (segment and BU
/// counts); InvalidArgument otherwise.
Result<ResultDiff> diff_results(const emu::EmulationResult& before,
                                const emu::EmulationResult& after);

}  // namespace segbus::core
