// Report rendering: the §4 results block, the Figure 10 timeline and the
// Figure 11 activity graph, plus CSV exports for external plotting.
#pragma once

#include <string>

#include "emu/stats.hpp"
#include "platform/model.hpp"
#include "support/csv.hpp"
#include "support/status.hpp"

namespace segbus::core {

/// Renders the emulation results in the paper's §4 output format:
///
///   P0, Start Time = 10989ps, End Time = 75307617ps
///   ...
///   P14 received last package at 460435092ps
///   CA TCT = 54367
///   Execution time = 489792303ps @ 111.00MHz
///   BU12: Total input packages = 32, ...
///   Segment 1: Packets transfered to Left = 0, ...
///   SA1: TCT = 34764, Total intra-segment requests = 124, ...
std::string render_paper_report(const emu::EmulationResult& result,
                                const platform::PlatformModel& platform);

/// Renders the Figure 10 per-process progress timeline as ASCII art
/// (one bar per process from start to end time).
std::string render_timeline(const emu::EmulationResult& result,
                            std::size_t width = 72);

/// Renders the Figure 11 activity graph as ASCII art (one row per platform
/// element, intensity characters per time bucket). Requires a result
/// produced with EngineOptions::record_activity.
std::string render_activity(const emu::EmulationResult& result,
                            std::size_t max_width = 96);

/// Timeline as CSV (process, start_ps, end_ps, sent, received).
CsvWriter timeline_csv(const emu::EmulationResult& result);

/// Activity series as CSV (element, bucket_start_ps, busy_ticks).
CsvWriter activity_csv(const emu::EmulationResult& result);

/// Per-BU analysis (UP/WP, §4's bottleneck discussion) as a short text
/// block: "UP12 = 2304, TCT12 = 2336, mean WP12 = 1".
std::string render_bu_analysis(const emu::EmulationResult& result,
                               const platform::PlatformModel& platform);

/// Compact run summary: total time, per-arbiter utilization, the busiest
/// element, and the most congested BU — the at-a-glance view a designer
/// scans before drilling into the full report.
std::string render_summary(const emu::EmulationResult& result,
                           const platform::PlatformModel& platform);

/// Per-flow latency table: packages, first/last delivery, min/mean/max
/// request-to-delivery latency, local vs inter-segment.
std::string render_flow_table(const emu::EmulationResult& result);

/// Per-stage span table: when each schedule stage opened and closed, and
/// its share of the total execution time — shows where the serialized
/// schedule spends its time.
std::string render_stage_table(const emu::EmulationResult& result);

/// Package-latency distribution across all flows (request-to-delivery),
/// as an ASCII histogram with p50/p90/p99 markers. Requires a result
/// produced with EngineOptions::record_latencies.
std::string render_latency_histogram(const emu::EmulationResult& result,
                                     std::size_t bins = 16);

}  // namespace segbus::core
