#include "core/energy.hpp"

#include "platform/constraints.hpp"
#include "support/strings.hpp"

namespace segbus::core {

std::string EnergyBreakdown::render() const {
  const double total = total_pj();
  auto line = [&](const char* label, double pj) {
    return str_format("  %-12s %14.0f pJ  (%5.1f%%)\n", label, pj,
                      total > 0.0 ? 100.0 * pj / total : 0.0);
  };
  std::string out;
  out += line("compute", compute_pj);
  out += line("bus data", bus_pj);
  out += line("BU crossings", bu_pj);
  out += line("arbitration", arbitration_pj);
  out += line("idle/leakage", idle_pj);
  out += str_format("  %-12s %14.0f pJ\n", "total", total);
  return out;
}

Result<EnergyBreakdown> estimate_energy(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::EmulationResult& result, const EnergyModel& model) {
  SEGBUS_RETURN_IF_ERROR(
      platform::validate_mapping_or_error(platform, application));
  if (result.sas.size() != platform.segment_count()) {
    return invalid_argument_error(
        "the result does not belong to this platform (segment count "
        "mismatch)");
  }

  EnergyBreakdown breakdown;
  const std::uint32_t s = platform.package_size();

  // Compute: every package costs its flow's C ticks at the source FU.
  // Bus data: s ticks on every segment the package traverses.
  for (const psdf::Flow& flow : application.flows()) {
    const std::uint64_t packages = psdf::packages_for(flow.data_items, s);
    breakdown.compute_pj +=
        model.pj_per_compute_tick *
        static_cast<double>(packages * flow.compute_ticks);
    const std::string& src = application.process(flow.source).name;
    const std::string& dst = application.process(flow.target).name;
    SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId a,
                            platform.require_segment_of(src));
    SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId b,
                            platform.require_segment_of(dst));
    const std::uint64_t segments_touched = platform.distance(a, b) + 1;
    breakdown.bus_pj += model.pj_per_bus_data_tick *
                        static_cast<double>(packages * s *
                                            segments_touched);
  }

  // BU crossings and arbitration events come from the counted run.
  for (const emu::BuStats& bu : result.bus) {
    breakdown.bu_pj +=
        model.pj_per_bu_crossing * static_cast<double>(bu.transfers);
  }
  std::uint64_t arbitrations = result.ca.grants;
  for (const emu::SaStats& sa : result.sas) {
    arbitrations += sa.intra_requests + sa.inter_requests;
  }
  breakdown.arbitration_pj =
      model.pj_per_arbitration * static_cast<double>(arbitrations);

  // Idle/leakage: every element ticks for the whole run; subtract the busy
  // share we already charged as activity.
  const double total_ps =
      static_cast<double>(result.total_execution_time.count());
  double idle_ticks = 0.0;
  for (platform::SegmentId seg = 0; seg < platform.segment_count(); ++seg) {
    const double period =
        static_cast<double>(platform.segment(seg).clock.period_ps());
    if (period <= 0.0) continue;
    const double run_ticks = total_ps / period;
    idle_ticks += std::max(
        0.0, run_ticks - static_cast<double>(result.sas[seg].busy_ticks));
  }
  {
    const double period =
        static_cast<double>(platform.ca_clock().period_ps());
    if (period > 0.0) {
      idle_ticks += std::max(
          0.0, total_ps / period -
                   static_cast<double>(result.ca.busy_ticks));
    }
  }
  breakdown.idle_pj = model.pj_per_idle_tick * idle_ticks;

  return breakdown;
}

}  // namespace segbus::core
