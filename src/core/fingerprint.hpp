// Content-addressed scheme fingerprints — the cache key of the estimation
// service and the dedup key of the exploration/batch sweeps.
//
// Two (PSDF, PSM, configuration) triples that are byte-different but
// semantically identical must hash to the same digest: XML attribute
// order and whitespace vanish at parse time, and *renumbered/renamed
// internal ids* are normalized here by relabeling every process with its
// canonical index — the position of its Functional Unit in (segment, FU)
// placement order. That order is exactly the arbiters' round-robin order,
// so it is semantically load-bearing and safe to canonicalize on; process
// *names* are not (a consistently renamed scheme emulates identically).
//
// Anything that can change the emulation outcome is folded into the
// digest: flow tuples (T, D, C) with canonical endpoints, package sizes,
// clocks, BU capacities, FU interface counts, the full TimingModel and
// the result-shaping EngineOptions. Deliberately excluded: model/process
// names, SessionConfig::parallel/threads (the parallel engine is
// bit-identical by construction), and diagnostic-only knobs.
#pragma once

#include <string>

#include "core/session.hpp"
#include "emu/engine.hpp"
#include "emu/timing.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::core {

/// The canonical plain-text serialization the digest is computed over
/// (exposed for tests and debugging; one line per model element). Fails
/// when the mapping is incomplete — canonical ids need every process
/// placed, which validation guarantees for any emulatable pair.
Result<std::string> canonical_scheme(const psdf::PsdfModel& application,
                                     const platform::PlatformModel& platform,
                                     const emu::TimingModel& timing,
                                     const emu::EngineOptions& engine = {});

/// SHA-256 hex digest of canonical_scheme().
Result<std::string> scheme_digest(const psdf::PsdfModel& application,
                                  const platform::PlatformModel& platform,
                                  const emu::TimingModel& timing,
                                  const emu::EngineOptions& engine = {});

/// SessionConfig convenience: digests the config's timing and engine
/// options; the backend selection never affects the key (all backends
/// are bit-identical).
Result<std::string> scheme_digest(const psdf::PsdfModel& application,
                                  const platform::PlatformModel& platform,
                                  const SessionConfig& config);

}  // namespace segbus::core
