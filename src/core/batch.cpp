#include "core/batch.hpp"

#include <algorithm>
#include <map>

#include "analysis/bounds.hpp"
#include "analysis/critical_path.hpp"
#include "core/analytic.hpp"
#include "core/fingerprint.hpp"
#include "place/apply.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace segbus::core {

std::string GridReport::render() const {
  Table table;
  table.set_header({"package", "allocation", "timing", "exec time",
                    "analytic LB", "estimate", "CA TCT", "inter-pkgs",
                    "max WP"});
  table.set_column_alignment(1, Align::kLeft);
  table.set_column_alignment(2, Align::kLeft);
  for (const GridEntry& e : entries) {
    table.add_row(
        {str_format("%u", e.package_size), e.allocation, e.timing,
         e.pruned ? "(pruned)" : format_us(e.execution_time),
         e.analytic_lower_bound.count() > 0
             ? format_us(e.analytic_lower_bound)
             : "-",
         e.analytic_estimate.count() > 0 ? format_us(e.analytic_estimate)
                                         : "-",
         str_format("%llu", static_cast<unsigned long long>(e.ca_tct)),
         str_format("%llu", static_cast<unsigned long long>(
                                e.inter_segment_packages)),
         str_format("%.2f", e.max_bu_mean_wp)});
  }
  return table.render();
}

CsvWriter GridReport::to_csv() const {
  CsvWriter csv({"package_size", "allocation", "timing", "execution_ps",
                 "analytic_lower_bound_ps", "analytic_estimate_ps",
                 "ca_tct", "inter_segment_packages", "max_bu_mean_wp"});
  for (const GridEntry& e : entries) {
    csv.add_row({str_format("%u", e.package_size), e.allocation, e.timing,
                 str_format("%lld", static_cast<long long>(
                                        e.execution_time.count())),
                 str_format("%lld", static_cast<long long>(
                                        e.analytic_lower_bound.count())),
                 str_format("%lld", static_cast<long long>(
                                        e.analytic_estimate.count())),
                 str_format("%llu",
                            static_cast<unsigned long long>(e.ca_tct)),
                 str_format("%llu", static_cast<unsigned long long>(
                                        e.inter_segment_packages)),
                 str_format("%.4f", e.max_bu_mean_wp)});
  }
  return csv;
}

JsonValue GridReport::to_json() const {
  JsonValue array = JsonValue::array();
  for (const GridEntry& e : entries) {
    JsonValue item = JsonValue::object();
    item.set("package_size", JsonValue::unsigned_integer(e.package_size));
    item.set("allocation", JsonValue::string(e.allocation));
    item.set("timing", JsonValue::string(e.timing));
    item.set("execution_ps", JsonValue::integer(e.execution_time.count()));
    item.set("analytic_lower_bound_ps",
             JsonValue::integer(e.analytic_lower_bound.count()));
    item.set("analytic_estimate_ps",
             JsonValue::integer(e.analytic_estimate.count()));
    item.set("ca_tct", JsonValue::unsigned_integer(e.ca_tct));
    item.set("inter_segment_packages",
             JsonValue::unsigned_integer(e.inter_segment_packages));
    item.set("max_bu_mean_wp", JsonValue::number(e.max_bu_mean_wp));
    item.set("pruned", JsonValue::boolean(e.pruned));
    array.push(std::move(item));
  }
  return array;
}

Result<GridReport> run_grid(const AppFactory& app_factory,
                            const GridSpec& spec) {
  if (!app_factory) {
    return invalid_argument_error("an application factory is required");
  }
  if (spec.package_sizes.empty() || spec.allocations.empty() ||
      spec.timings.empty()) {
    return invalid_argument_error(
        "the grid needs at least one package size, allocation and timing "
        "model");
  }
  if (spec.segment_clocks.empty()) {
    return invalid_argument_error("at least one segment clock is required");
  }

  GridReport report;
  // Fingerprint of an emulated cell -> index of its first GridEntry;
  // duplicate (package, allocation, timing) combinations copy that entry's
  // measurements instead of re-running the engine.
  std::map<std::string, std::size_t, std::less<>> seen;
  // Fastest emulated cell so far — the prune oracle's incumbent.
  Picoseconds incumbent{0};
  for (std::uint32_t package : spec.package_sizes) {
    SEGBUS_ASSIGN_OR_RETURN(psdf::PsdfModel app, app_factory(package));
    for (const LabeledAllocation& allocation : spec.allocations) {
      std::uint32_t segments = 0;
      for (std::uint32_t s : allocation.allocation) {
        segments = std::max(segments, s + 1);
      }
      platform::PlatformModel platform(
          str_format("grid-%useg", segments));
      SEGBUS_RETURN_IF_ERROR(platform.set_package_size(package));
      SEGBUS_RETURN_IF_ERROR(platform.set_ca_clock(spec.ca_clock));
      for (std::uint32_t s = 0; s < segments; ++s) {
        auto added = platform.add_segment(
            spec.segment_clocks[s % spec.segment_clocks.size()]);
        if (!added.is_ok()) return added.status();
      }
      SEGBUS_RETURN_IF_ERROR(
          place::apply_allocation(app, allocation.allocation, platform));

      for (const LabeledTiming& timing : spec.timings) {
        auto digest = scheme_digest(app, platform, timing.timing);
        if (digest.is_ok()) {
          if (auto hit = seen.find(*digest); hit != seen.end()) {
            GridEntry entry = report.entries[hit->second];
            entry.allocation = allocation.label;
            entry.timing = timing.label;
            report.entries.push_back(std::move(entry));
            ++report.deduplicated_cells;
            continue;
          }
        }
        GridEntry entry;
        entry.package_size = package;
        entry.allocation = allocation.label;
        entry.timing = timing.label;
        // The closed-form figures come straight from the analysis
        // library (the tightest v2 generation). They price the cell's
        // own timing model, so the bound can drive pruning.
        if (spec.analytic || spec.prune) {
          SEGBUS_ASSIGN_OR_RETURN(
              analysis::StaticBounds bounds,
              analysis::compute_static_bounds(app, platform,
                                              timing.timing));
          entry.analytic_lower_bound = bounds.lower;
          if (spec.analytic) {
            SEGBUS_ASSIGN_OR_RETURN(
                AnalyticResult estimate,
                analytic_estimate(app, platform, timing.timing));
            entry.analytic_estimate = estimate.total;
          }
          if (spec.prune &&
              analysis::PruneOracle::prunable(entry.analytic_lower_bound,
                                              incumbent)) {
            entry.pruned = true;
            report.entries.push_back(std::move(entry));
            ++report.pruned_cells;
            continue;
          }
        }
        SEGBUS_ASSIGN_OR_RETURN(
            emu::EmulationResult result,
            emu::run_emulation(app, platform, timing.timing, {},
                               spec.backend));
        if (!result.completed) {
          return internal_error(str_format(
              "grid cell (s=%u, %s, %s) did not complete", package,
              allocation.label.c_str(), timing.label.c_str()));
        }
        entry.execution_time = result.total_execution_time;
        entry.ca_tct = result.ca.tct;
        entry.inter_segment_packages = result.ca.inter_requests;
        for (const emu::BuStats& bu : result.bus) {
          entry.max_bu_mean_wp =
              std::max(entry.max_bu_mean_wp, bu.mean_wp());
        }
        if (incumbent.count() == 0 ||
            result.total_execution_time < incumbent) {
          incumbent = result.total_execution_time;
        }
        if (digest.is_ok()) seen.emplace(*digest, report.entries.size());
        report.entries.push_back(std::move(entry));
        ++report.emulated_cells;
      }
    }
  }
  if (spec.metrics != nullptr) {
    auto count = [&spec](const char* outcome, std::uint64_t value) {
      spec.metrics
          ->counter("segbus_grid_cells_total", {{"outcome", outcome}},
                    "grid sweep cells by outcome")
          .inc(value);
    };
    count("emulated", report.emulated_cells);
    count("deduplicated", report.deduplicated_cells);
    count("pruned", report.pruned_cells);
  }
  return report;
}

}  // namespace segbus::core
