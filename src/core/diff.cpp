#include "core/diff.hpp"

#include <cmath>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace segbus::core {

std::vector<DiffRow> ResultDiff::significant(
    double threshold_percent) const {
  std::vector<DiffRow> out;
  for (const DiffRow& row : rows) {
    if (std::fabs(row.delta_percent()) > threshold_percent) {
      out.push_back(row);
    }
  }
  return out;
}

std::string ResultDiff::render() const {
  Table table;
  table.set_header({"metric", "before", "after", "delta", "delta %"});
  table.set_column_alignment(0, Align::kLeft);
  for (const DiffRow& row : rows) {
    table.add_row({row.metric, str_format("%.6g", row.before),
                   str_format("%.6g", row.after),
                   str_format("%+.6g", row.delta()),
                   str_format("%+.2f%%", row.delta_percent())});
  }
  return table.render();
}

Result<ResultDiff> diff_results(const emu::EmulationResult& before,
                                const emu::EmulationResult& after) {
  if (before.sas.size() != after.sas.size() ||
      before.bus.size() != after.bus.size()) {
    return invalid_argument_error(
        "results come from platforms of different shape (segment or BU "
        "count mismatch)");
  }
  ResultDiff diff;
  auto add = [&](std::string metric, double b, double a) {
    diff.rows.push_back({std::move(metric), b, a});
  };
  add("total execution (us)", before.total_execution_time.microseconds(),
      after.total_execution_time.microseconds());
  add("last delivery (us)", before.last_delivery_time.microseconds(),
      after.last_delivery_time.microseconds());
  add("CA TCT", static_cast<double>(before.ca.tct),
      static_cast<double>(after.ca.tct));
  add("CA inter-segment requests",
      static_cast<double>(before.ca.inter_requests),
      static_cast<double>(after.ca.inter_requests));
  for (std::size_t s = 0; s < before.sas.size(); ++s) {
    add(str_format("SA%zu TCT", s + 1),
        static_cast<double>(before.sas[s].tct),
        static_cast<double>(after.sas[s].tct));
    add(str_format("SA%zu intra requests", s + 1),
        static_cast<double>(before.sas[s].intra_requests),
        static_cast<double>(after.sas[s].intra_requests));
    add(str_format("SA%zu utilization", s + 1), before.sa_utilization(s),
        after.sa_utilization(s));
  }
  for (std::size_t b = 0; b < before.bus.size(); ++b) {
    add(str_format("BU#%zu packages", b),
        static_cast<double>(before.bus[b].transfers),
        static_cast<double>(after.bus[b].transfers));
    add(str_format("BU#%zu mean WP", b), before.bus[b].mean_wp(),
        after.bus[b].mean_wp());
  }
  return diff;
}

}  // namespace segbus::core
