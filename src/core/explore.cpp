#include "core/explore.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "analysis/critical_path.hpp"
#include "core/fingerprint.hpp"
#include "place/apply.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace segbus::core {

std::string ExplorationReport::render() const {
  Table table;
  table.set_header({"configuration", "execution time", "static LB", "CA TCT",
                    "inter-seg requests", "worst mean WP"});
  table.set_column_alignment(0, Align::kLeft);
  for (const ExplorationEntry& entry : entries) {
    table.add_row(
        {entry.label,
         entry.pruned ? "(pruned)" : format_us(entry.execution_time),
         entry.lower_bound.count() > 0 ? format_us(entry.lower_bound) : "-",
         entry.pruned
             ? "-"
             : str_format("%llu",
                          static_cast<unsigned long long>(entry.ca_tct)),
         entry.pruned
             ? "-"
             : str_format("%llu", static_cast<unsigned long long>(
                                      entry.inter_segment_requests)),
         entry.pruned ? "-"
                      : str_format("%.2f", entry.max_bu_mean_wp)});
  }
  std::string out = table.render();
  out += str_format(
      "%zu emulated, %zu deduplicated, %zu pruned (prune rate %.1f%%)\n",
      emulated, deduplicated, pruned, prune_rate() * 100.0);
  return out;
}

JsonValue exploration_to_json(const ExplorationReport& report) {
  JsonValue root = JsonValue::object();
  JsonValue entries = JsonValue::array();
  for (const ExplorationEntry& entry : report.entries) {
    JsonValue item = JsonValue::object();
    item.set("label", JsonValue::string(entry.label));
    item.set("pruned", JsonValue::boolean(entry.pruned));
    item.set("execution_time_ps",
             JsonValue::integer(entry.execution_time.count()));
    item.set("lower_bound_ps",
             JsonValue::integer(entry.lower_bound.count()));
    item.set("ca_tct", JsonValue::unsigned_integer(entry.ca_tct));
    item.set("inter_segment_requests",
             JsonValue::unsigned_integer(entry.inter_segment_requests));
    item.set("max_bu_mean_wp", JsonValue::number(entry.max_bu_mean_wp));
    entries.push(std::move(item));
  }
  root.set("entries", std::move(entries));
  root.set("emulated",
           JsonValue::unsigned_integer(report.emulated));
  root.set("deduplicated",
           JsonValue::unsigned_integer(report.deduplicated));
  root.set("pruned", JsonValue::unsigned_integer(report.pruned));
  root.set("prune_rate", JsonValue::number(report.prune_rate()));
  return root;
}

Result<ExplorationReport> explore(const psdf::PsdfModel& application,
                                  std::vector<Candidate> candidates,
                                  const SessionConfig& config) {
  ExploreOptions options;
  options.session = config;
  return explore(application, std::move(candidates), options);
}

Result<ExplorationReport> explore(const psdf::PsdfModel& application,
                                  std::vector<Candidate> candidates,
                                  const ExploreOptions& options) {
  ExplorationReport report;
  // Branch-and-bound: the oracle's admissible lower bound proves some
  // candidates cannot beat the best emulated figure so far, skipping
  // their engine run entirely (ROADMAP item 2).
  std::optional<analysis::PruneOracle> oracle;
  if (options.prune) {
    oracle.emplace(application, options.session.timing);
  }
  Picoseconds incumbent{0};
  // Content-addressed dedup: semantically identical candidates (same
  // fingerprint) emulate once and share measurements.
  std::map<std::string, std::size_t, std::less<>> seen;
  for (Candidate& candidate : candidates) {
    auto digest =
        scheme_digest(application, candidate.platform, options.session);
    if (digest.is_ok()) {
      if (auto hit = seen.find(*digest); hit != seen.end()) {
        ExplorationEntry entry = report.entries[hit->second];
        entry.label = candidate.label;
        report.entries.push_back(std::move(entry));
        ++report.deduplicated;
        continue;
      }
    }
    Picoseconds lower_bound{0};
    if (oracle) {
      auto lower = oracle->lower_bound(candidate.platform);
      if (lower.is_ok()) {
        lower_bound = *lower;
        if (analysis::PruneOracle::prunable(lower_bound, incumbent)) {
          ExplorationEntry entry;
          entry.label = candidate.label;
          entry.lower_bound = lower_bound;
          entry.pruned = true;
          report.entries.push_back(std::move(entry));
          ++report.pruned;
          continue;
        }
      }
    }
    SEGBUS_ASSIGN_OR_RETURN(
        EmulationSession session,
        EmulationSession::from_models(application,
                                      std::move(candidate.platform),
                                      options.session));
    SEGBUS_ASSIGN_OR_RETURN(emu::EmulationResult result, session.emulate());
    if (!result.completed) {
      return internal_error("emulation of configuration '" +
                            candidate.label + "' did not complete");
    }
    ExplorationEntry entry;
    entry.label = candidate.label;
    entry.execution_time = result.total_execution_time;
    entry.ca_tct = result.ca.tct;
    entry.inter_segment_requests = result.ca.inter_requests;
    entry.lower_bound = lower_bound;
    for (const emu::BuStats& bu : result.bus) {
      entry.max_bu_mean_wp = std::max(entry.max_bu_mean_wp, bu.mean_wp());
    }
    if (incumbent.count() == 0 || result.total_execution_time < incumbent) {
      incumbent = result.total_execution_time;
    }
    if (digest.is_ok()) seen.emplace(*digest, report.entries.size());
    report.entries.push_back(std::move(entry));
    ++report.emulated;
  }
  std::stable_sort(report.entries.begin(), report.entries.end(),
                   [](const ExplorationEntry& a, const ExplorationEntry& b) {
                     if (a.pruned != b.pruned) return b.pruned;
                     return a.execution_time < b.execution_time;
                   });
  if (options.metrics != nullptr) {
    auto count = [&options](const char* outcome, std::uint64_t value) {
      options.metrics
          ->counter("segbus_explore_candidates_total",
                    {{"outcome", outcome}},
                    "exploration candidates by outcome")
          .inc(value);
    };
    count("emulated", report.emulated);
    count("deduplicated", report.deduplicated);
    count("pruned", report.pruned);
  }
  return report;
}

Result<Candidate> candidate_from_placement(
    const psdf::PsdfModel& application, std::uint32_t num_segments,
    const std::vector<Frequency>& segment_clocks, Frequency ca_clock,
    std::uint32_t package_size, const place::AnnealOptions& anneal) {
  if (segment_clocks.empty()) {
    return invalid_argument_error("at least one segment clock is required");
  }
  psdf::CommMatrix matrix = psdf::CommMatrix::from_model(application);
  place::CostModel cost;
  cost.package_size = package_size;
  SEGBUS_ASSIGN_OR_RETURN(
      place::PlacementResult placement,
      place::anneal_place(matrix, num_segments, cost, anneal));

  Candidate candidate;
  candidate.label =
      str_format("%u segment(s), s=%u (annealed, cost %.0f)", num_segments,
                 package_size, placement.cost);
  candidate.platform = platform::PlatformModel(
      str_format("explore-%useg", num_segments));
  SEGBUS_RETURN_IF_ERROR(candidate.platform.set_package_size(package_size));
  SEGBUS_RETURN_IF_ERROR(candidate.platform.set_ca_clock(ca_clock));
  for (std::uint32_t s = 0; s < num_segments; ++s) {
    auto added = candidate.platform.add_segment(
        segment_clocks[s % segment_clocks.size()]);
    if (!added.is_ok()) return added.status();
  }
  SEGBUS_RETURN_IF_ERROR(place::apply_allocation(
      application, placement.allocation, candidate.platform));
  return candidate;
}

}  // namespace segbus::core
