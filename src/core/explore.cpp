#include "core/explore.hpp"

#include <algorithm>
#include <map>

#include "core/fingerprint.hpp"
#include "place/apply.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace segbus::core {

std::string ExplorationReport::render() const {
  Table table;
  table.set_header({"configuration", "execution time", "CA TCT",
                    "inter-seg requests", "worst mean WP"});
  table.set_column_alignment(0, Align::kLeft);
  for (const ExplorationEntry& entry : entries) {
    table.add_row({entry.label, format_us(entry.execution_time),
                   str_format("%llu",
                              static_cast<unsigned long long>(entry.ca_tct)),
                   str_format("%llu", static_cast<unsigned long long>(
                                          entry.inter_segment_requests)),
                   str_format("%.2f", entry.max_bu_mean_wp)});
  }
  return table.render();
}

Result<ExplorationReport> explore(const psdf::PsdfModel& application,
                                  std::vector<Candidate> candidates,
                                  const SessionConfig& config) {
  ExplorationReport report;
  // Content-addressed dedup: semantically identical candidates (same
  // fingerprint) emulate once and share measurements.
  std::map<std::string, std::size_t, std::less<>> seen;
  for (Candidate& candidate : candidates) {
    auto digest = scheme_digest(application, candidate.platform, config);
    if (digest.is_ok()) {
      if (auto hit = seen.find(*digest); hit != seen.end()) {
        ExplorationEntry entry = report.entries[hit->second];
        entry.label = candidate.label;
        report.entries.push_back(std::move(entry));
        ++report.deduplicated;
        continue;
      }
    }
    SEGBUS_ASSIGN_OR_RETURN(
        EmulationSession session,
        EmulationSession::from_models(application,
                                      std::move(candidate.platform),
                                      config));
    SEGBUS_ASSIGN_OR_RETURN(emu::EmulationResult result, session.emulate());
    if (!result.completed) {
      return internal_error("emulation of configuration '" +
                            candidate.label + "' did not complete");
    }
    ExplorationEntry entry;
    entry.label = candidate.label;
    entry.execution_time = result.total_execution_time;
    entry.ca_tct = result.ca.tct;
    entry.inter_segment_requests = result.ca.inter_requests;
    for (const emu::BuStats& bu : result.bus) {
      entry.max_bu_mean_wp = std::max(entry.max_bu_mean_wp, bu.mean_wp());
    }
    if (digest.is_ok()) seen.emplace(*digest, report.entries.size());
    report.entries.push_back(std::move(entry));
    ++report.emulated;
  }
  std::stable_sort(report.entries.begin(), report.entries.end(),
                   [](const ExplorationEntry& a, const ExplorationEntry& b) {
                     return a.execution_time < b.execution_time;
                   });
  return report;
}

Result<Candidate> candidate_from_placement(
    const psdf::PsdfModel& application, std::uint32_t num_segments,
    const std::vector<Frequency>& segment_clocks, Frequency ca_clock,
    std::uint32_t package_size, const place::AnnealOptions& anneal) {
  if (segment_clocks.empty()) {
    return invalid_argument_error("at least one segment clock is required");
  }
  psdf::CommMatrix matrix = psdf::CommMatrix::from_model(application);
  place::CostModel cost;
  cost.package_size = package_size;
  SEGBUS_ASSIGN_OR_RETURN(
      place::PlacementResult placement,
      place::anneal_place(matrix, num_segments, cost, anneal));

  Candidate candidate;
  candidate.label =
      str_format("%u segment(s), s=%u (annealed, cost %.0f)", num_segments,
                 package_size, placement.cost);
  candidate.platform = platform::PlatformModel(
      str_format("explore-%useg", num_segments));
  SEGBUS_RETURN_IF_ERROR(candidate.platform.set_package_size(package_size));
  SEGBUS_RETURN_IF_ERROR(candidate.platform.set_ca_clock(ca_clock));
  for (std::uint32_t s = 0; s < num_segments; ++s) {
    auto added = candidate.platform.add_segment(
        segment_clocks[s % segment_clocks.size()]);
    if (!added.is_ok()) return added.status();
  }
  SEGBUS_RETURN_IF_ERROR(place::apply_allocation(
      application, placement.allocation, candidate.platform));
  return candidate;
}

}  // namespace segbus::core
