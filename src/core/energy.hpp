// First-order energy estimation on top of the emulation results.
//
// The paper's conclusions note that early configuration decisions "not
// only improve the quality of eventual system in terms of performance, but
// also improve power consumption up to some extent [9]". This module makes
// that trade-off quantitative with an activity-based energy model: every
// counted event of the run (compute ticks, bus data ticks, BU crossings,
// arbitration decisions, idle element ticks) carries a configurable energy
// cost. Coefficients are technology-dependent and default to relative
// magnitudes typical for on-chip bus platforms — the *comparisons* between
// configurations are meaningful, the absolute joules are placeholders to
// calibrate per process node.
#pragma once

#include "emu/stats.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::core {

/// Energy coefficients, in picojoules per event.
struct EnergyModel {
  double pj_per_compute_tick = 1.0;   ///< FU datapath activity
  double pj_per_bus_data_tick = 2.5;  ///< one data item on a segment bus
  double pj_per_bu_crossing = 180.0;  ///< FIFO write+read+sync per package
  double pj_per_arbitration = 6.0;    ///< one SA/CA request handled
  double pj_per_idle_tick = 0.05;     ///< leakage per element clock tick
};

/// Where the energy went.
struct EnergyBreakdown {
  double compute_pj = 0.0;
  double bus_pj = 0.0;
  double bu_pj = 0.0;
  double arbitration_pj = 0.0;
  double idle_pj = 0.0;

  double total_pj() const {
    return compute_pj + bus_pj + bu_pj + arbitration_pj + idle_pj;
  }
  /// Average power over the run, in milliwatts.
  double average_mw(Picoseconds duration) const {
    if (duration.count() <= 0) return 0.0;
    // pJ / ps = W; scale to mW.
    return total_pj() / static_cast<double>(duration.count()) * 1e3;
  }
  std::string render() const;
};

/// Estimates the energy of one emulated run. The application provides the
/// per-flow compute costs; the result provides the counted activity.
Result<EnergyBreakdown> estimate_energy(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::EmulationResult& result, const EnergyModel& model = {});

}  // namespace segbus::core
