// Estimate-vs-reference accuracy analysis — the paper's §4 experiments
// ("the estimated results that we obtain from the emulator are 95%
// accurate").
//
// The paper compares the emulator against the real SegBus platform; this
// reproduction compares TimingModel::emulator() against
// TimingModel::reference(), the detailed model that restores the timing
// effects §3.6 says the estimator omits (see DESIGN.md's substitution
// table).
#pragma once

#include "core/session.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::core {

/// One accuracy data point.
struct AccuracyReport {
  Picoseconds estimated{0};  ///< TimingModel::emulator() execution time
  Picoseconds actual{0};     ///< TimingModel::reference() execution time

  /// estimated / actual in percent (the paper's accuracy figure; < 100
  /// because the estimator under-approximates).
  double accuracy_percent() const {
    if (actual.count() == 0) return 0.0;
    return 100.0 * static_cast<double>(estimated.count()) /
           static_cast<double>(actual.count());
  }
  /// Absolute estimation error in percent of the actual time.
  double error_percent() const { return 100.0 - accuracy_percent(); }
};

/// Runs both timing models on the same (application, platform) pair.
Result<AccuracyReport> compare_accuracy(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::EngineOptions& options = {});

}  // namespace segbus::core
