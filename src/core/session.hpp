// End-to-end emulation sessions — the public entry point of the library.
//
// Mirrors the paper's workflow (Figure 4): take the PSDF and PSM models
// (in memory or as the generated XML schemes), validate them, build the
// platform structure, run the emulation, and return the execution results.
#pragma once

#include <memory>
#include <string>

#include "analysis/analyzer.hpp"
#include "emu/backend.hpp"
#include "emu/engine.hpp"
#include "emu/stats.hpp"
#include "emu/timing.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::core {

/// Session configuration.
struct SessionConfig {
  emu::TimingModel timing = emu::TimingModel::emulator();
  emu::EngineOptions engine;
  /// Which engine executes the emulation (reference, parallel, or fast —
  /// all bit-identical; see emu/backend.hpp) plus backend-specific knobs.
  /// Backend/option combinations are validated when the session binds:
  /// worker threads with a non-parallel backend are diagnosed as SB060.
  emu::BackendOptions backend;
};

/// A bound (application, platform) pair ready to emulate.
class EmulationSession {
 public:
  /// Binds in-memory models. The static analyzer runs over the pair first:
  /// error-severity diagnostics abort the session with a ValidationError
  /// (SB050 is downgraded to a warning — the emulator's CA reserves paths
  /// atomically); warnings and notes are kept in analysis() for reports
  /// and the JSON exporters.
  static Result<EmulationSession> from_models(
      psdf::PsdfModel application, platform::PlatformModel platform,
      SessionConfig config = {});

  /// Loads the generated XML schemes from disk (§3.5's setup phase).
  /// `package_size_override`, when nonzero, replaces both documents'
  /// package size — the paper supplies package size to the emulator
  /// separately from the models.
  static Result<EmulationSession> from_xml_files(
      const std::string& psdf_path, const std::string& psm_path,
      SessionConfig config = {}, std::uint32_t package_size_override = 0);

  /// Parses the schemes from strings (used by tests and tools).
  static Result<EmulationSession> from_xml_strings(
      std::string_view psdf_xml, std::string_view psm_xml,
      SessionConfig config = {}, std::uint32_t package_size_override = 0);

  const psdf::PsdfModel& application() const noexcept { return application_; }
  const platform::PlatformModel& platform() const noexcept {
    return platform_;
  }
  const SessionConfig& config() const noexcept { return config_; }
  SessionConfig& config() noexcept { return config_; }

  /// What the static analyzer found while binding the models (never any
  /// error-severity diagnostics — those abort from_models).
  const analysis::AnalysisReport& analysis() const noexcept {
    return analysis_;
  }

  /// Runs one emulation. May be called repeatedly (a fresh engine is built
  /// per run); results are deterministic for a fixed configuration. When a
  /// profiler is given, the engine-build and emulate phases are recorded as
  /// host wall-clock spans.
  Result<emu::EmulationResult> emulate(
      obs::PhaseProfiler* profiler = nullptr) const;

  /// Same run, attaching "engine-build" and "emulate" leaf spans to
  /// `parent` (no-ops when the parent trace is unsampled — see
  /// obs/trace.hpp).
  Result<emu::EmulationResult> emulate(obs::Span& parent) const;

 private:
  EmulationSession(psdf::PsdfModel application,
                   platform::PlatformModel platform, SessionConfig config,
                   analysis::AnalysisReport analysis)
      : application_(std::move(application)),
        platform_(std::move(platform)),
        config_(std::move(config)),
        analysis_(std::move(analysis)) {}

  psdf::PsdfModel application_;
  platform::PlatformModel platform_;
  SessionConfig config_;
  analysis::AnalysisReport analysis_;
};

}  // namespace segbus::core
