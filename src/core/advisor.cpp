#include "core/advisor.hpp"

#include <algorithm>
#include <map>

#include "platform/constraints.hpp"
#include "support/strings.hpp"

namespace segbus::core {

std::string_view advice_kind_name(AdviceKind kind) noexcept {
  switch (kind) {
    case AdviceKind::kMoveProcess: return "move-process";
    case AdviceKind::kBusBound: return "bus-bound";
    case AdviceKind::kDominantStage: return "dominant-stage";
    case AdviceKind::kReduceSegments: return "reduce-segments";
    case AdviceKind::kIncreasePackage: return "increase-package";
    case AdviceKind::kLooksBalanced: return "looks-balanced";
  }
  return "?";
}

Result<std::vector<Advice>> advise(const psdf::PsdfModel& application,
                                   const platform::PlatformModel& platform,
                                   const emu::EmulationResult& result) {
  SEGBUS_RETURN_IF_ERROR(
      platform::validate_mapping_or_error(platform, application));
  if (result.sas.size() != platform.segment_count()) {
    return invalid_argument_error(
        "the result does not belong to this platform");
  }
  std::vector<Advice> advice;

  // 1. BU congestion: find the flow contributing the most inter-segment
  //    packages and suggest co-locating its endpoints (the paper's P9
  //    experiment in reverse).
  {
    std::uint64_t total_inter = 0;
    const psdf::Flow* heaviest = nullptr;
    std::uint64_t heaviest_packages = 0;
    for (const psdf::Flow& flow : application.flows()) {
      auto src = platform.segment_of(application.process(flow.source).name);
      auto dst = platform.segment_of(application.process(flow.target).name);
      if (!src || !dst || *src == *dst) continue;
      std::uint64_t packages =
          psdf::packages_for(flow.data_items, platform.package_size()) *
          platform.distance(*src, *dst);
      total_inter += packages;
      if (packages > heaviest_packages) {
        heaviest_packages = packages;
        heaviest = &flow;
      }
    }
    if (heaviest != nullptr && total_inter > 0 &&
        heaviest_packages * 2 >= total_inter &&
        heaviest_packages >= 8) {
      const std::string& src =
          application.process(heaviest->source).name;
      const std::string& dst =
          application.process(heaviest->target).name;
      advice.push_back(
          {AdviceKind::kMoveProcess,
           str_format("flow %s -> %s causes %llu of the %llu inter-segment "
                      "package-hops; consider mapping %s and %s on the same "
                      "segment (PlatformModel::move_process)",
                      src.c_str(), dst.c_str(),
                      static_cast<unsigned long long>(heaviest_packages),
                      static_cast<unsigned long long>(total_inter),
                      src.c_str(), dst.c_str())});
    }
  }

  // 2. Bus saturation.
  for (std::size_t s = 0; s < result.sas.size(); ++s) {
    double utilization = result.sa_utilization(s);
    if (utilization > 0.85) {
      advice.push_back(
          {AdviceKind::kBusBound,
           str_format("Segment %zu's bus is %.0f%% busy up to its last "
                      "activity — the interconnect, not computation, bounds "
                      "it; consider larger packages or splitting its FUs "
                      "across segments",
                      s + 1, 100.0 * utilization)});
    }
  }

  // 3. Stage dominance.
  if (!result.stages.empty() && result.total_execution_time.count() > 0) {
    const emu::StageStats* dominant = nullptr;
    for (const emu::StageStats& stage : result.stages) {
      if (dominant == nullptr ||
          (stage.close_time - stage.open_time) >
              (dominant->close_time - dominant->open_time)) {
        dominant = &stage;
      }
    }
    const double share =
        static_cast<double>(
            (dominant->close_time - dominant->open_time).count()) /
        static_cast<double>(result.total_execution_time.count());
    if (share > 0.4 && result.stages.size() > 2) {
      advice.push_back(
          {AdviceKind::kDominantStage,
           str_format("schedule stage T=%u spans %.0f%% of the run; its "
                      "serial master is the critical path — consider "
                      "partitioning that process further (paper §5's "
                      "granularity balancing)",
                      dominant->ordering, 100.0 * share)});
    }
  }

  // 4. Unused segmentation.
  if (platform.segment_count() > 1 && result.ca.inter_requests == 0) {
    advice.push_back(
        {AdviceKind::kReduceSegments,
         "no inter-segment transfers occurred: the extra segments only add "
         "hardware; a single-segment platform would behave identically"});
  }

  // 5. Small packages: many CA grants relative to data moved.
  {
    std::uint64_t packages = 0;
    for (const emu::FlowStats& flow : result.flows) {
      packages += flow.packages;
    }
    if (packages > 0 && platform.package_size() < 16) {
      advice.push_back(
          {AdviceKind::kIncreasePackage,
           str_format("package size %u means %llu package handshakes; the "
                      "paper's Discussion: larger packages amortize "
                      "arbitration and synchronization overhead",
                      platform.package_size(),
                      static_cast<unsigned long long>(packages))});
    }
  }

  if (advice.empty()) {
    advice.push_back({AdviceKind::kLooksBalanced,
                      "no congestion, saturation or dominant serial stage "
                      "detected at the heuristics' thresholds"});
  }
  return advice;
}

std::string render_advice(const std::vector<Advice>& advice) {
  std::string out;
  for (std::size_t i = 0; i < advice.size(); ++i) {
    out += str_format("%zu. [%s] %s\n", i + 1,
                      std::string(advice_kind_name(advice[i].kind)).c_str(),
                      advice[i].message.c_str());
  }
  return out;
}

}  // namespace segbus::core
