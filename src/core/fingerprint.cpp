#include "core/fingerprint.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "support/hash.hpp"
#include "support/strings.hpp"

namespace segbus::core {

namespace {

/// One flow with canonical endpoint indices, ready for order-independent
/// sorting.
struct CanonicalFlow {
  std::uint32_t ordering;
  std::uint32_t src;
  std::uint32_t dst;
  std::uint64_t data_items;
  std::uint64_t compute_ticks;

  friend auto operator<=>(const CanonicalFlow&, const CanonicalFlow&) =
      default;
};

void append_frequency(std::string& out, std::string_view key, Frequency f) {
  // khz() is the exact stored representation; %.17g round-trips doubles.
  out += str_format(" %s=%.17g", std::string(key).c_str(), f.khz());
}

}  // namespace

Result<std::string> canonical_scheme(const psdf::PsdfModel& application,
                                     const platform::PlatformModel& platform,
                                     const emu::TimingModel& timing,
                                     const emu::EngineOptions& engine) {
  // Canonical process relabeling: position in (segment, FU) order.
  std::map<std::string, std::uint32_t, std::less<>> canonical_id;
  std::uint32_t next_id = 0;
  for (const platform::Segment& segment : platform.segments()) {
    for (const platform::FunctionalUnit& fu : segment.fus) {
      if (!canonical_id.emplace(fu.process, next_id).second) {
        return validation_error("fingerprint: process '" + fu.process +
                                "' mapped more than once");
      }
      ++next_id;
    }
  }
  for (const psdf::Process& process : application.processes()) {
    if (canonical_id.find(process.name) == canonical_id.end()) {
      return validation_error("fingerprint: process '" + process.name +
                              "' is not mapped to any segment");
    }
  }

  std::vector<CanonicalFlow> flows;
  flows.reserve(application.flows().size());
  for (const psdf::Flow& flow : application.flows()) {
    const std::string& src = application.process(flow.source).name;
    const std::string& dst = application.process(flow.target).name;
    const auto src_it = canonical_id.find(src);
    const auto dst_it = canonical_id.find(dst);
    if (src_it == canonical_id.end() || dst_it == canonical_id.end()) {
      return validation_error("fingerprint: flow endpoint unmapped");
    }
    flows.push_back({flow.ordering, src_it->second, dst_it->second,
                     flow.data_items, flow.compute_ticks});
  }
  std::sort(flows.begin(), flows.end());

  std::string out;
  out.reserve(1024);
  out += "segbus-scheme-v1\n";
  out += str_format("psdf package_size=%u processes=%zu\n",
                    application.package_size(),
                    application.process_count());
  for (const CanonicalFlow& flow : flows) {
    out += str_format(
        "flow t=%u src=%u dst=%u d=%llu c=%llu\n", flow.ordering, flow.src,
        flow.dst, static_cast<unsigned long long>(flow.data_items),
        static_cast<unsigned long long>(flow.compute_ticks));
  }
  out += str_format("psm package_size=%u segments=%zu",
                    platform.package_size(), platform.segment_count());
  append_frequency(out, "ca_khz", platform.ca_clock());
  out += '\n';
  for (std::size_t s = 0; s < platform.segment_count(); ++s) {
    const platform::Segment& segment =
        platform.segment(static_cast<platform::SegmentId>(s));
    out += str_format("segment %zu", s);
    append_frequency(out, "khz", segment.clock);
    out += '\n';
    for (const platform::FunctionalUnit& fu : segment.fus) {
      out += str_format("fu seg=%zu p=%u m=%u s=%u\n", s,
                        canonical_id.at(fu.process), fu.masters, fu.slaves);
    }
  }
  for (const platform::BorderUnitSpec& bu : platform.border_units()) {
    out += str_format("bu left=%u right=%u cap=%u\n", bu.left, bu.right,
                      bu.capacity_packages);
  }
  out += str_format(
      "timing rq=%u sad=%u gs=%u mr=%u gr=%u cad=%u cas=%u bus=%u bgt=%u "
      "mb=%d cs=%d mp=%u\n",
      timing.request_ticks, timing.sa_decision_ticks, timing.grant_set_ticks,
      timing.master_response_ticks, timing.grant_reset_ticks,
      timing.ca_decision_ticks, timing.ca_signal_ticks, timing.bu_sync_ticks,
      timing.bu_grant_turnaround_ticks, timing.master_blocking ? 1 : 0,
      timing.circuit_switched ? 1 : 0, timing.monitor_poll_ticks);
  out += str_format(
      "engine max_ticks=%llu activity=%d bucket=%lld trace=%d latencies=%d "
      "metrics=%d\n",
      static_cast<unsigned long long>(engine.max_ticks_per_domain),
      engine.record_activity ? 1 : 0,
      static_cast<long long>(engine.activity_bucket.count()),
      engine.record_trace ? 1 : 0, engine.record_latencies ? 1 : 0,
      engine.record_metrics ? 1 : 0);
  return out;
}

Result<std::string> scheme_digest(const psdf::PsdfModel& application,
                                  const platform::PlatformModel& platform,
                                  const emu::TimingModel& timing,
                                  const emu::EngineOptions& engine) {
  SEGBUS_ASSIGN_OR_RETURN(
      std::string canonical,
      canonical_scheme(application, platform, timing, engine));
  return sha256_hex(canonical);
}

Result<std::string> scheme_digest(const psdf::PsdfModel& application,
                                  const platform::PlatformModel& platform,
                                  const SessionConfig& config) {
  return scheme_digest(application, platform, config.timing, config.engine);
}

}  // namespace segbus::core
