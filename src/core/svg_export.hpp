// SVG renderings of the paper's evaluation figures:
//   Figure 10 — per-process progress timeline (Gantt chart)
//   Figure 11 — activity graph of the platform elements (heat rows)
// Self-contained SVG 1.1 documents, no external resources; deterministic
// for a fixed result.
#pragma once

#include <string>

#include "emu/stats.hpp"
#include "support/status.hpp"

namespace segbus::core {

/// Options shared by the figure renderers.
struct SvgOptions {
  int width = 900;        ///< total document width in px
  int row_height = 22;    ///< height of one process/element row
  int margin_left = 90;   ///< label gutter
  int margin_top = 40;    ///< title band
  std::string title;      ///< figure caption (defaults chosen per figure)
};

/// Figure 10: one bar per process from its start to end time.
std::string render_timeline_svg(const emu::EmulationResult& result,
                                SvgOptions options = {});

/// Figure 11: one heat row per platform element; cell shade = busy ticks
/// in that time bucket relative to the global peak. Requires a result with
/// activity recording enabled (returns a placeholder note otherwise).
std::string render_activity_svg(const emu::EmulationResult& result,
                                SvgOptions options = {});

/// Writes an SVG document to `path`.
Status write_svg_file(const std::string& svg, const std::string& path);

}  // namespace segbus::core
