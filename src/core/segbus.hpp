// Umbrella header: the full public API of the SegBus performance-estimation
// library. Include this to get everything:
//
//   #include "core/segbus.hpp"
//
//   auto app      = segbus::apps::mp3_decoder_psdf();
//   auto platform = segbus::apps::mp3_platform_three_segments(*app);
//   auto session  = segbus::core::EmulationSession::from_models(*app,
//                                                               *platform);
//   auto result   = session->emulate();
//   std::cout << segbus::core::render_paper_report(*result, *platform);
#pragma once

#include "core/accuracy.hpp"     // IWYU pragma: export
#include "core/advisor.hpp"     // IWYU pragma: export
#include "core/analytic.hpp"     // IWYU pragma: export
#include "core/batch.hpp"        // IWYU pragma: export
#include "core/diff.hpp"        // IWYU pragma: export
#include "core/energy.hpp"      // IWYU pragma: export
#include "core/explore.hpp"      // IWYU pragma: export
#include "core/json_export.hpp"  // IWYU pragma: export
#include "core/report.hpp"       // IWYU pragma: export
#include "core/session.hpp"      // IWYU pragma: export
#include "core/svg_export.hpp"   // IWYU pragma: export
#include "emu/engine.hpp"        // IWYU pragma: export
#include "emu/parallel.hpp"      // IWYU pragma: export
#include "emu/stats.hpp"         // IWYU pragma: export
#include "emu/timing.hpp"        // IWYU pragma: export
#include "emu/trace.hpp"         // IWYU pragma: export
#include "emu/vcd.hpp"           // IWYU pragma: export
#include "m2t/codegen.hpp"       // IWYU pragma: export
#include "m2t/template.hpp"      // IWYU pragma: export
#include "place/apply.hpp"       // IWYU pragma: export
#include "place/placer.hpp"      // IWYU pragma: export
#include "platform/constraints.hpp"  // IWYU pragma: export
#include "platform/model.hpp"        // IWYU pragma: export
#include "platform/platform_xml.hpp" // IWYU pragma: export
#include "psdf/comm_matrix.hpp"  // IWYU pragma: export
#include "psdf/dot.hpp"          // IWYU pragma: export
#include "psdf/model.hpp"        // IWYU pragma: export
#include "psdf/psdf_xml.hpp"     // IWYU pragma: export
#include "psdf/validate.hpp"     // IWYU pragma: export
#include "xml/parser.hpp"        // IWYU pragma: export
#include "xml/writer.hpp"        // IWYU pragma: export
