#include "core/session.hpp"

#include <optional>
#include <string>

#include "platform/platform_xml.hpp"
#include "psdf/psdf_xml.hpp"
#include "support/strings.hpp"
#include "xml/parser.hpp"

namespace segbus::core {

Result<EmulationSession> EmulationSession::from_models(
    psdf::PsdfModel application, platform::PlatformModel platform,
    SessionConfig config) {
  analysis::AnalyzerOptions options;
  options.include_bounds = false;
  options.timing = config.timing;
  // The engine's CA connects the whole source..target path atomically, so
  // the SB050 reservation cycle cannot occur while emulating here.
  options.severity_overrides.emplace("SB050", Severity::kWarning);
  analysis::AnalysisReport analyzed =
      analysis::analyze_system(application, platform, options);
  if (config.backend.parallel_threads != 0 &&
      config.backend.backend != emu::EngineBackend::kParallel) {
    analyzed.report.add(
        Severity::kError, "SB060", "session.backend.threads",
        str_format("parallel_threads = %u but the session backend is '%s'; "
                   "worker threads apply only to the parallel backend",
                   config.backend.parallel_threads,
                   std::string(emu::to_string(config.backend.backend))
                       .c_str()));
  }
  if (!analyzed.ok()) {
    return validation_error("model analysis failed:\n" +
                            analysis::render_text(analyzed.report));
  }
  return EmulationSession(std::move(application), std::move(platform),
                          std::move(config), std::move(analyzed));
}

Result<EmulationSession> EmulationSession::from_xml_files(
    const std::string& psdf_path, const std::string& psm_path,
    SessionConfig config, std::uint32_t package_size_override) {
  SEGBUS_ASSIGN_OR_RETURN(
      psdf::PsdfModel application,
      psdf::read_psdf_file(psdf_path, package_size_override));
  SEGBUS_ASSIGN_OR_RETURN(platform::PlatformModel platform,
                          platform::read_platform_file(psm_path));
  if (package_size_override != 0) {
    SEGBUS_RETURN_IF_ERROR(platform.set_package_size(package_size_override));
  }
  return from_models(std::move(application), std::move(platform),
                     std::move(config));
}

Result<EmulationSession> EmulationSession::from_xml_strings(
    std::string_view psdf_xml, std::string_view psm_xml,
    SessionConfig config, std::uint32_t package_size_override) {
  SEGBUS_ASSIGN_OR_RETURN(xml::Document psdf_doc,
                          xml::parse_document(psdf_xml));
  SEGBUS_ASSIGN_OR_RETURN(psdf::PsdfModel application,
                          psdf::from_xml(psdf_doc, package_size_override));
  SEGBUS_ASSIGN_OR_RETURN(xml::Document psm_doc,
                          xml::parse_document(psm_xml));
  SEGBUS_ASSIGN_OR_RETURN(platform::PlatformModel platform,
                          platform::from_xml(psm_doc));
  if (package_size_override != 0) {
    SEGBUS_RETURN_IF_ERROR(platform.set_package_size(package_size_override));
  }
  return from_models(std::move(application), std::move(platform),
                     std::move(config));
}

Result<emu::EmulationResult> EmulationSession::emulate(
    obs::PhaseProfiler* profiler) const {
  std::optional<obs::PhaseProfiler::Span> build_span;
  if (profiler != nullptr) build_span.emplace(profiler->span("engine-build"));
  SEGBUS_ASSIGN_OR_RETURN(
      emu::EngineRunner runner,
      emu::EngineRunner::create(application_, platform_, config_.timing,
                                config_.engine, config_.backend));
  build_span.reset();
  std::optional<obs::PhaseProfiler::Span> run_span;
  if (profiler != nullptr) run_span.emplace(profiler->span("emulate"));
  return runner.run();
}

Result<emu::EmulationResult> EmulationSession::emulate(
    obs::Span& parent) const {
  obs::Span build = parent.child("engine-build");
  SEGBUS_ASSIGN_OR_RETURN(
      emu::EngineRunner runner,
      emu::EngineRunner::create(application_, platform_, config_.timing,
                                config_.engine, config_.backend));
  build.end();
  obs::Span run = parent.child("emulate");
  run.set_attribute("engine", emu::to_string(runner.backend()));
  return runner.run();
}

}  // namespace segbus::core
