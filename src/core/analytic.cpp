#include "core/analytic.hpp"

#include <algorithm>
#include <map>

#include "platform/constraints.hpp"
#include "support/strings.hpp"

namespace segbus::core {

namespace {

/// Shared skeleton: walks the schedule stage by stage, asking `master_cost`
/// for the per-package tick cost a master pays (in its segment domain) and
/// `bus_cost` for the per-package tick cost a segment bus pays.
template <typename MasterCost, typename BusCost>
Result<AnalyticResult> analyze(const psdf::PsdfModel& application,
                               const platform::PlatformModel& platform,
                               MasterCost master_cost, BusCost bus_cost) {
  SEGBUS_RETURN_IF_ERROR(
      platform::validate_mapping_or_error(platform, application));

  // Group flows by ordering value.
  std::map<std::uint32_t, std::vector<psdf::Flow>> stages;
  for (const psdf::Flow& flow : application.scheduled_flows()) {
    stages[flow.ordering].push_back(flow);
  }

  std::vector<ClockDomain> domains;
  for (platform::SegmentId s = 0; s < platform.segment_count(); ++s) {
    domains.emplace_back(platform.segment(s).name, platform.segment(s).clock);
  }

  AnalyticResult result;
  for (const auto& [ordering, flows] : stages) {
    // Per-master serial ticks, and per-segment bus occupancy ticks.
    std::map<psdf::ProcessId, std::uint64_t> master_ticks;
    std::map<platform::SegmentId, std::uint64_t> bus_ticks;
    std::map<psdf::ProcessId, platform::SegmentId> master_segment;

    for (const psdf::Flow& flow : flows) {
      const std::string& src_name = application.process(flow.source).name;
      const std::string& dst_name = application.process(flow.target).name;
      SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId src,
                              platform.require_segment_of(src_name));
      SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId dst,
                              platform.require_segment_of(dst_name));
      const std::uint64_t packages =
          psdf::packages_for(flow.data_items, platform.package_size());
      const std::uint32_t hops = platform.distance(src, dst);

      master_ticks[flow.source] +=
          packages * master_cost(flow.compute_ticks, hops);
      master_segment[flow.source] = src;
      // Bus occupancy: the package's data phase occupies every segment on
      // the path once.
      SEGBUS_ASSIGN_OR_RETURN(std::vector<platform::PathHop> path,
                              platform.path(src, dst));
      for (const platform::PathHop& hop : path) {
        bus_ticks[hop.segment] += packages * bus_cost();
      }
    }

    AnalyticStage stage;
    stage.ordering = ordering;
    for (const auto& [process, ticks] : master_ticks) {
      Picoseconds t =
          domains[master_segment[process]].span(
              static_cast<std::int64_t>(ticks));
      if (t > stage.duration) {
        stage.duration = t;
        stage.binding =
            "master " + application.process(process).name;
      }
    }
    for (const auto& [segment, ticks] : bus_ticks) {
      Picoseconds t =
          domains[segment].span(static_cast<std::int64_t>(ticks));
      if (t > stage.duration) {
        stage.duration = t;
        stage.binding = platform::PlatformModel::segment_display_name(
            segment);
      }
    }
    result.total += stage.duration;
    result.stages.push_back(std::move(stage));
  }
  return result;
}

}  // namespace

Result<AnalyticResult> analytic_estimate(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing) {
  const std::uint32_t s = platform.package_size();
  // Calibrated against the engine's handshakes:
  //  * local package: C + request + SA decision/grant/response + s + the
  //    idle->compute turnaround tick;
  //  * global package (blocking master): additionally one CA round trip
  //    (request visibility, decision, reserve/ack/start ~ 6 ticks) and,
  //    per hop, the forward data phase plus WP and sync, plus the release
  //    notification.
  const std::uint64_t local_overhead =
      1 + timing.request_ticks + timing.sa_decision_ticks +
      timing.grant_set_ticks + timing.master_response_ticks;
  const std::uint64_t ca_round_trip =
      6 + timing.ca_decision_ticks + 2 * timing.ca_signal_ticks;
  const std::uint64_t per_hop =
      s + timing.bu_grant_turnaround_ticks + timing.bu_sync_ticks;
  return analyze(
      application, platform,
      [=](std::uint64_t compute, std::uint32_t hops) {
        std::uint64_t ticks = compute + local_overhead + s;
        if (hops > 0) {
          ticks += ca_round_trip + 2;  // release notification latency
          if (timing.master_blocking) ticks += hops * per_hop;
        }
        return ticks;
      },
      [s]() { return static_cast<std::uint64_t>(s); });
}

}  // namespace segbus::core
