// Configuration advisor: turns one emulation result into the concrete
// design actions the paper's methodology walks through by hand — "the
// granularity level of application components can also be balanced in
// order to eliminate the traffic congestion located at certain BUs" (§5).
// Heuristic, conservative, and explained: every piece of advice names the
// evidence it is based on.
#pragma once

#include <string>
#include <vector>

#include "emu/stats.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::core {

/// Kinds of advice the analyzer produces.
enum class AdviceKind {
  kMoveProcess,      ///< relocate a process to cut BU traffic
  kBusBound,         ///< a segment bus is saturated
  kDominantStage,    ///< one schedule stage dominates the run
  kReduceSegments,   ///< segmentation is unused (no inter-segment traffic)
  kIncreasePackage,  ///< per-package overheads are a large share
  kLooksBalanced,    ///< nothing actionable found
};

std::string_view advice_kind_name(AdviceKind kind) noexcept;

/// One finding.
struct Advice {
  AdviceKind kind = AdviceKind::kLooksBalanced;
  std::string message;   ///< action + the evidence behind it
};

/// Analyzes a completed run. Returns at least one entry (kLooksBalanced
/// when nothing fires).
Result<std::vector<Advice>> advise(const psdf::PsdfModel& application,
                                   const platform::PlatformModel& platform,
                                   const emu::EmulationResult& result);

/// Renders the advice list as numbered lines.
std::string render_advice(const std::vector<Advice>& advice);

}  // namespace segbus::core
