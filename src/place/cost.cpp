#include "place/cost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/strings.hpp"

namespace segbus::place {

namespace {
std::uint32_t hop_distance(std::uint32_t a, std::uint32_t b) {
  return a > b ? a - b : b - a;
}
}  // namespace

std::uint64_t inter_segment_packages(const psdf::CommMatrix& matrix,
                                     const Allocation& allocation,
                                     std::uint32_t package_size) {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < matrix.size(); ++s) {
    for (std::size_t t = 0; t < matrix.size(); ++t) {
      if (matrix.at(s, t) == 0) continue;
      if (allocation[s] != allocation[t]) {
        total += matrix.packages_at(s, t, package_size);
      }
    }
  }
  return total;
}

std::uint64_t package_hops(const psdf::CommMatrix& matrix,
                           const Allocation& allocation,
                           std::uint32_t package_size) {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < matrix.size(); ++s) {
    for (std::size_t t = 0; t < matrix.size(); ++t) {
      if (matrix.at(s, t) == 0) continue;
      total += matrix.packages_at(s, t, package_size) *
               hop_distance(allocation[s], allocation[t]);
    }
  }
  return total;
}

bool allocation_feasible(const Allocation& allocation,
                         std::uint32_t num_segments,
                         std::uint32_t max_fus_per_segment) {
  std::vector<std::uint32_t> load(num_segments, 0);
  for (std::uint32_t segment : allocation) {
    if (segment >= num_segments) return false;
    ++load[segment];
  }
  for (std::uint32_t count : load) {
    if (count == 0) return false;  // psm.segment.fus would fail
    if (max_fus_per_segment != 0 && count > max_fus_per_segment) return false;
  }
  return true;
}

double allocation_cost(const psdf::CommMatrix& matrix,
                       const Allocation& allocation,
                       std::uint32_t num_segments, const CostModel& model) {
  if (!allocation_feasible(allocation, num_segments,
                           model.max_fus_per_segment)) {
    return std::numeric_limits<double>::infinity();
  }
  double cost =
      model.hop_weight *
      static_cast<double>(package_hops(matrix, allocation,
                                       model.package_size));
  if (model.imbalance_weight > 0.0) {
    std::vector<std::uint32_t> load(num_segments, 0);
    for (std::uint32_t segment : allocation) ++load[segment];
    const double ideal = static_cast<double>(allocation.size()) /
                         static_cast<double>(num_segments);
    const double max_load =
        static_cast<double>(*std::max_element(load.begin(), load.end()));
    const double excess = max_load - ideal;
    cost += model.imbalance_weight * excess * excess;
  }
  return cost;
}

Status validate_allocation(const psdf::CommMatrix& matrix,
                           const Allocation& allocation,
                           std::uint32_t num_segments) {
  if (allocation.size() != matrix.size()) {
    return invalid_argument_error(
        str_format("allocation covers %zu processes but the matrix has %zu",
                   allocation.size(), matrix.size()));
  }
  if (num_segments == 0) {
    return invalid_argument_error("platform must have at least one segment");
  }
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    if (allocation[i] >= num_segments) {
      return invalid_argument_error(
          str_format("process %zu is allocated to segment %u but the "
                     "platform has only %u segments",
                     i, allocation[i] + 1, num_segments));
    }
  }
  return Status::ok();
}

}  // namespace segbus::place
