// Device-allocation search — the PlaceTool [16] substitute.
//
// Three strategies with the usual quality/cost trade-off:
//   * exhaustive : provably optimal; enumeration with first-occupant
//                  symmetry breaking (segments are interchangeable labels
//                  only up to the linear topology, so only a prefix rule is
//                  applied); practical to ~12 processes x 3 segments.
//   * greedy     : traffic-descending constructive heuristic.
//   * annealing  : simulated annealing over move/swap neighborhoods,
//                  deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <string>

#include "place/cost.hpp"
#include "psdf/comm_matrix.hpp"
#include "support/status.hpp"

namespace segbus::place {

/// Outcome of one search.
struct PlacementResult {
  Allocation allocation;
  double cost = 0.0;
  std::uint64_t evaluations = 0;  ///< cost evaluations performed
  std::string strategy;

  /// "0 1 2 3 || 4 5 || 6" rendering with the paper's Figure 9 segment
  /// separators.
  std::string render(const psdf::PsdfModel& model) const;
};

/// Options for the annealer.
struct AnnealOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 200000;
  double initial_temperature = 0.0;  ///< 0 = auto (from matrix magnitude)
  double cooling = 0.9995;           ///< geometric cooling factor per step
};

/// Exhaustive search. Fails (InvalidArgument) when the search space exceeds
/// `max_states` (default 20M) to keep runtimes bounded.
Result<PlacementResult> exhaustive_place(const psdf::CommMatrix& matrix,
                                         std::uint32_t num_segments,
                                         const CostModel& cost,
                                         std::uint64_t max_states = 20000000);

/// Greedy constructive placement (always succeeds for feasible inputs).
Result<PlacementResult> greedy_place(const psdf::CommMatrix& matrix,
                                     std::uint32_t num_segments,
                                     const CostModel& cost);

/// Simulated annealing seeded with the greedy solution.
Result<PlacementResult> anneal_place(const psdf::CommMatrix& matrix,
                                     std::uint32_t num_segments,
                                     const CostModel& cost,
                                     const AnnealOptions& options = {});

}  // namespace segbus::place
