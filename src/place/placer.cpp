#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/rng.hpp"
#include "support/strings.hpp"

namespace segbus::place {

std::string PlacementResult::render(const psdf::PsdfModel& model) const {
  std::uint32_t num_segments = 0;
  for (std::uint32_t s : allocation) {
    num_segments = std::max(num_segments, s + 1);
  }
  std::string out;
  for (std::uint32_t segment = 0; segment < num_segments; ++segment) {
    if (segment != 0) out += " || ";
    bool first = true;
    for (std::size_t i = 0; i < allocation.size(); ++i) {
      if (allocation[i] != segment) continue;
      if (!first) out += ' ';
      first = false;
      out += i < model.process_count() ? model.process(
                                             static_cast<psdf::ProcessId>(i))
                                             .name
                                       : str_format("P%zu", i);
    }
  }
  return out;
}

namespace {

Status check_inputs(const psdf::CommMatrix& matrix,
                    std::uint32_t num_segments) {
  if (matrix.size() == 0) {
    return invalid_argument_error("communication matrix is empty");
  }
  if (num_segments == 0) {
    return invalid_argument_error("platform must have at least one segment");
  }
  if (matrix.size() < num_segments) {
    return invalid_argument_error(
        str_format("%zu processes cannot populate %u segments (every "
                   "segment needs at least one FU)",
                   matrix.size(), num_segments));
  }
  return Status::ok();
}

}  // namespace

Result<PlacementResult> exhaustive_place(const psdf::CommMatrix& matrix,
                                         std::uint32_t num_segments,
                                         const CostModel& cost,
                                         std::uint64_t max_states) {
  SEGBUS_RETURN_IF_ERROR(check_inputs(matrix, num_segments));
  const std::size_t n = matrix.size();
  double states = std::pow(static_cast<double>(num_segments),
                           static_cast<double>(n));
  if (states > static_cast<double>(max_states)) {
    return invalid_argument_error(str_format(
        "exhaustive search space %.3g exceeds the %llu-state limit; use "
        "greedy or annealing",
        states, static_cast<unsigned long long>(max_states)));
  }

  PlacementResult best;
  best.strategy = "exhaustive";
  best.cost = std::numeric_limits<double>::infinity();
  Allocation current(n, 0);
  std::uint64_t evaluations = 0;
  while (true) {
    double c = allocation_cost(matrix, current, num_segments, cost);
    ++evaluations;
    if (c < best.cost) {
      best.cost = c;
      best.allocation = current;
    }
    // Odometer increment.
    std::size_t i = 0;
    while (i < n) {
      if (++current[i] < num_segments) break;
      current[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  best.evaluations = evaluations;
  if (!std::isfinite(best.cost)) {
    return invalid_argument_error(
        "no feasible allocation exists under the given capacity limits");
  }
  return best;
}

Result<PlacementResult> greedy_place(const psdf::CommMatrix& matrix,
                                     std::uint32_t num_segments,
                                     const CostModel& cost) {
  SEGBUS_RETURN_IF_ERROR(check_inputs(matrix, num_segments));
  const std::size_t n = matrix.size();

  // Order processes by total traffic (row + column sums), descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return matrix.row_sum(a) + matrix.column_sum(a) >
                            matrix.row_sum(b) + matrix.column_sum(b);
                   });

  constexpr std::uint32_t kUnassigned = 0xFFFFFFFFu;
  Allocation allocation(n, kUnassigned);
  std::vector<std::uint32_t> load(num_segments, 0);
  std::uint64_t evaluations = 0;

  // Seed every segment with one of the heaviest processes so the
  // every-segment-nonempty constraint holds by construction.
  for (std::uint32_t segment = 0; segment < num_segments; ++segment) {
    allocation[order[segment]] = segment;
    ++load[segment];
  }

  auto partner_cost = [&](std::size_t p, std::uint32_t segment) {
    // Incremental package-hops of putting p on `segment`, counting only
    // already-placed partners.
    double c = 0.0;
    for (std::size_t q = 0; q < n; ++q) {
      if (allocation[q] == kUnassigned || q == p) continue;
      std::uint64_t packages =
          matrix.packages_at(p, q, cost.package_size) +
          matrix.packages_at(q, p, cost.package_size);
      std::uint32_t d = segment > allocation[q] ? segment - allocation[q]
                                                : allocation[q] - segment;
      c += cost.hop_weight * static_cast<double>(packages * d);
    }
    return c;
  };

  for (std::size_t p : order) {
    if (allocation[p] != kUnassigned) continue;
    double best_cost = std::numeric_limits<double>::infinity();
    std::uint32_t best_segment = 0;
    for (std::uint32_t segment = 0; segment < num_segments; ++segment) {
      if (cost.max_fus_per_segment != 0 &&
          load[segment] >= cost.max_fus_per_segment) {
        continue;
      }
      double c = partner_cost(p, segment);
      ++evaluations;
      // Light load-balancing tiebreak even when imbalance_weight is zero.
      c += 1e-6 * static_cast<double>(load[segment]);
      if (cost.imbalance_weight > 0.0) {
        c += cost.imbalance_weight * static_cast<double>(load[segment]);
      }
      if (c < best_cost) {
        best_cost = c;
        best_segment = segment;
      }
    }
    if (!std::isfinite(best_cost)) {
      return invalid_argument_error(
          "greedy placement failed: capacity limits leave no room");
    }
    allocation[p] = best_segment;
    ++load[best_segment];
  }

  PlacementResult result;
  result.strategy = "greedy";
  result.allocation = std::move(allocation);
  result.cost = allocation_cost(matrix, result.allocation, num_segments, cost);
  result.evaluations = evaluations;
  return result;
}

Result<PlacementResult> anneal_place(const psdf::CommMatrix& matrix,
                                     std::uint32_t num_segments,
                                     const CostModel& cost,
                                     const AnnealOptions& options) {
  SEGBUS_ASSIGN_OR_RETURN(PlacementResult seed_result,
                          greedy_place(matrix, num_segments, cost));
  if (num_segments == 1) {
    seed_result.strategy = "annealing";
    return seed_result;  // nothing to move
  }

  const std::size_t n = matrix.size();
  Xoshiro256 rng(options.seed);
  Allocation current = seed_result.allocation;
  double current_cost = seed_result.cost;
  Allocation best = current;
  double best_cost = current_cost;
  std::uint64_t evaluations = seed_result.evaluations;

  double temperature = options.initial_temperature;
  if (temperature <= 0.0) {
    temperature = std::max(
        1.0, static_cast<double>(matrix.total()) /
                 static_cast<double>(std::max<std::uint32_t>(
                     cost.package_size, 1)));
  }

  for (std::uint64_t step = 0; step < options.iterations; ++step) {
    Allocation candidate = current;
    if (rng.next_bool(0.5) && n >= 2) {
      // Swap two processes on different segments.
      auto a = static_cast<std::size_t>(rng.next_below(n));
      auto b = static_cast<std::size_t>(rng.next_below(n));
      if (candidate[a] == candidate[b]) continue;
      std::swap(candidate[a], candidate[b]);
    } else {
      // Move one process to another segment.
      auto p = static_cast<std::size_t>(rng.next_below(n));
      auto segment = static_cast<std::uint32_t>(
          rng.next_below(num_segments));
      if (candidate[p] == segment) continue;
      candidate[p] = segment;
    }
    double c = allocation_cost(matrix, candidate, num_segments, cost);
    ++evaluations;
    bool accept = false;
    if (c <= current_cost) {
      accept = true;
    } else if (std::isfinite(c) && temperature > 1e-12) {
      accept = rng.next_bool(std::exp((current_cost - c) / temperature));
    }
    if (accept) {
      current = std::move(candidate);
      current_cost = c;
      if (c < best_cost) {
        best = current;
        best_cost = c;
      }
    }
    temperature *= options.cooling;
  }

  PlacementResult result;
  result.strategy = "annealing";
  result.allocation = std::move(best);
  result.cost = best_cost;
  result.evaluations = evaluations;
  return result;
}

}  // namespace segbus::place
