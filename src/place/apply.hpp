// Bridges a placement result onto a PlatformModel: builds the PSM mapping
// the emulator consumes from an Allocation vector.
#pragma once

#include "place/cost.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::place {

/// Maps every process of `application` onto `platform` according to
/// `allocation` (indexed by ProcessId). FUs get a master interface when the
/// process sends and a slave interface when it receives (minimum one each
/// per Figure 5's "at least one Master or one Slave").
Status apply_allocation(const psdf::PsdfModel& application,
                        const Allocation& allocation,
                        platform::PlatformModel& platform);

/// Reads the current mapping of `platform` back into an Allocation indexed
/// by the application's process ids.
Result<Allocation> extract_allocation(const psdf::PsdfModel& application,
                                      const platform::PlatformModel& platform);

}  // namespace segbus::place
