#include "place/apply.hpp"

#include "support/strings.hpp"

namespace segbus::place {

Status apply_allocation(const psdf::PsdfModel& application,
                        const Allocation& allocation,
                        platform::PlatformModel& platform) {
  if (allocation.size() != application.process_count()) {
    return invalid_argument_error(str_format(
        "allocation covers %zu processes but the application has %zu",
        allocation.size(), application.process_count()));
  }
  for (const psdf::Process& process : application.processes()) {
    std::uint32_t segment = allocation[process.id];
    if (segment >= platform.segment_count()) {
      return invalid_argument_error(str_format(
          "process %s allocated to segment %u but the platform has %zu",
          process.name.c_str(), segment + 1, platform.segment_count()));
    }
    bool sends = !application.flows_from(process.id).empty();
    bool receives = !application.flows_into(process.id).empty();
    SEGBUS_RETURN_IF_ERROR(platform.map_process(
        process.name, segment,
        /*masters=*/sends ? 1u : 0u,
        /*slaves=*/receives || !sends ? 1u : 0u));
  }
  return Status::ok();
}

Result<Allocation> extract_allocation(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform) {
  Allocation allocation(application.process_count(), 0);
  for (const psdf::Process& process : application.processes()) {
    SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId segment,
                            platform.require_segment_of(process.name));
    allocation[process.id] = segment;
  }
  return allocation;
}

}  // namespace segbus::place
