// Allocation cost model for the PlaceTool substitute.
//
// The paper (§3.5) delegates device allocation to PlaceTool [16]: "Based on
// the matrix, the PlaceTool application finds the optimal device allocation
// solution, given the platform specifics (the number of segments)."  The
// dominant cost on SegBus is inter-segment traffic: every package crossing
// k segment borders occupies k+1 segment buses and k BUs, so we score an
// allocation by package-hops, optionally with a load-balance term.
#pragma once

#include <cstdint>
#include <vector>

#include "psdf/comm_matrix.hpp"
#include "support/status.hpp"

namespace segbus::place {

/// An allocation: allocation[i] = segment index hosting process i.
using Allocation = std::vector<std::uint32_t>;

/// Cost-model weights.
struct CostModel {
  std::uint32_t package_size = 36;
  /// Weight of one package crossing one border (the communication term).
  double hop_weight = 1.0;
  /// Weight of the load-imbalance term: (max FUs per segment - ideal)^2.
  double imbalance_weight = 0.0;
  /// Hard limit on FUs per segment; 0 means unconstrained.
  std::uint32_t max_fus_per_segment = 0;
};

/// Total cost of `allocation` (lower is better). Allocations violating the
/// hard capacity limit or leaving a segment empty cost +infinity.
double allocation_cost(const psdf::CommMatrix& matrix,
                       const Allocation& allocation,
                       std::uint32_t num_segments, const CostModel& model);

/// Total packages crossing at least one border under `allocation`.
std::uint64_t inter_segment_packages(const psdf::CommMatrix& matrix,
                                     const Allocation& allocation,
                                     std::uint32_t package_size);

/// Total package-hops (each crossing of one border counts once).
std::uint64_t package_hops(const psdf::CommMatrix& matrix,
                           const Allocation& allocation,
                           std::uint32_t package_size);

/// True when every segment in [0, num_segments) hosts at least one process
/// and no segment exceeds the capacity limit.
bool allocation_feasible(const Allocation& allocation,
                         std::uint32_t num_segments,
                         std::uint32_t max_fus_per_segment);

/// Validates allocation size/indices against the matrix and segment count.
Status validate_allocation(const psdf::CommMatrix& matrix,
                           const Allocation& allocation,
                           std::uint32_t num_segments);

}  // namespace segbus::place
