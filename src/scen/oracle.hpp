// Differential / metamorphic oracle — decides whether one scenario's
// emulation is *believable* without a golden reference output.
//
// The invariants cross-check independent parts of the stack against each
// other:
//
//  * completion          — the run finishes under the engine tick budget.
//  * bounds-bracket      — analysis::compute_static_bounds lower <=
//                          emulated TCT <= upper (closed-form vs. event
//                          emulation).
//  * conservation        — packages are conserved everywhere: per flow
//                          (ceil(D/s) delivered), per process (sent/
//                          received sums), per Border Unit side (everything
//                          loaded from one side unloads on the other), and
//                          the stage/utilization figures are internally
//                          consistent.
//  * fingerprint-equiv   — a consistently renamed model with permuted flow
//                          insertion order, serialized to XML and parsed
//                          back, must produce the same core/fingerprint
//                          digest AND a bit-identical emulation (the
//                          estimation service caches on that digest, so a
//                          mismatch here is a cache-poisoning bug).
//  * clock-scaling       — halving every clock (when all periods double
//                          exactly under the integer-picosecond truncation)
//                          must exactly double the emulated time and leave
//                          every tick counter unchanged.
//  * parallel-equiv      — the thread-parallel engine matches the serial
//                          engine bit-for-bit.
//  * fast-equiv          — the next-event-time fast engine matches the
//                          reference engine bit-for-bit (dead-cycle
//                          skipping changes nothing observable).
//  * bounds-dominance    — the two bound generations nest: v1 lower <=
//                          v2 lower <= emulated TCT <= v2 upper <= v1
//                          upper, on the base run and on the fast-equiv
//                          cross-engine run (the v2 refinement may only
//                          tighten, never cross, the v1 envelope).
//  * stoch-degenerate    — realizing the application through the identity
//                          stochastic spec (point:1 scales, replication 0)
//                          must reproduce the deterministic run
//                          bit-for-bit (the scale path may not perturb a
//                          degenerate draw).
//  * mode-chaining       — an identity mode table (every flow, zero
//                          transition delay) run over a length-2 schedule
//                          must give each mode exactly the static TCT and
//                          a total of exactly 2x; scenarios that carry a
//                          real mode table additionally re-run their
//                          schedule on the other engine and must match
//                          per-mode bit-for-bit.
//  * replication-bounds  — each stochastic replication's emulated TCT
//                          must sit inside the v2 static bounds of its
//                          *realized* model (the deterministic analysis
//                          brackets every sample, not just the mean).
//
// A violation means scenario + invariant name + human-readable detail; the
// shrinker minimizes scenarios against a fixed invariant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "emu/backend.hpp"
#include "obs/trace.hpp"
#include "scen/generator.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::scen {

enum class Invariant : std::uint8_t {
  kGeneratorContract,       ///< scenario failed to build an EmulationSession
  kCompletion,
  kBoundsBracket,
  kConservation,
  kFingerprintEquivalence,
  kClockScaling,
  kParallelEquivalence,
  kFastEquivalence,
  kBoundsDominance,
  kStochDegenerate,
  kModeChaining,
  kReplicationBounds,
};

inline constexpr std::size_t kInvariantCount = 12;

/// Stable kebab-case name ("bounds-bracket") used in logs, metrics labels
/// and corpus file stems.
std::string_view invariant_name(Invariant invariant) noexcept;

/// One invariant breach on one scenario.
struct Violation {
  Invariant invariant = Invariant::kGeneratorContract;
  std::string detail;
};

struct OracleOptions {
  bool check_bounds = true;
  bool check_conservation = true;
  bool check_fingerprint = true;
  bool check_clock_scaling = true;
  /// Costlier (spawns a thread pool per scenario); campaigns sample it.
  bool check_parallel = false;
  unsigned parallel_threads = 2;
  /// Fast-engine equivalence: re-runs the scenario on whichever of
  /// {reference, fast} the base run did NOT use and compares bit-for-bit.
  /// Cheap (the fast engine skips dead cycles), so on by default.
  bool check_fast = true;
  /// Bound-generation dominance: lower_v1 <= lower <= TCT <= upper <=
  /// upper_v1, on the base run and the fast-equivalence cross-engine run.
  /// Reuses the bounds-bracket computation, so effectively free.
  bool check_dominance = true;
  /// Identity-spec realization reproduces the base run bit-for-bit. One
  /// extra emulation, always applicable.
  bool check_stoch_degenerate = true;
  /// Identity mode table over a length-2 schedule == 2x the static run;
  /// scenarios carrying a real mode table also cross-engine compare their
  /// schedule. Two-plus extra (small) emulations.
  bool check_mode_chaining = true;
  /// Each of `replication_samples` stochastic replications sits inside the
  /// v2 static bounds of its realized model. Skipped (not violated) for
  /// scenarios with an identity spec — there it degenerates to
  /// bounds-bracket. Costs one bounds analysis + emulation per sample.
  bool check_replication_bounds = true;
  std::uint32_t replication_samples = 3;
  /// Backend the base run (and its derived runs: fingerprint twin, clock
  /// scaling) executes on. Equivalence invariants compare against this.
  emu::BackendOptions backend;
  /// When set, each invariant check records a child span under `parent`
  /// (the campaign's per-scenario span with its seed-derived trace id).
  obs::Tracer* tracer = nullptr;
  obs::SpanContext parent;
};

/// What the oracle saw on one scenario.
struct OracleOutcome {
  std::vector<Violation> violations;
  /// core/fingerprint digest of the scenario (cache key it would get).
  std::string digest;
  /// Emulated total execution time of the base run.
  Picoseconds total{0};
  std::uint32_t invariants_checked = 0;
  /// Invariants whose precondition did not hold (clock scaling when a
  /// period does not double exactly) — skipped, not violated.
  std::uint32_t invariants_skipped = 0;

  bool passed() const noexcept { return violations.empty(); }
};

/// Runs every enabled invariant. The Result is only an error for harness
/// misuse; scenario misbehavior is reported inside the outcome.
Result<OracleOutcome> run_oracle(const Scenario& scenario,
                                 const OracleOptions& options = {});

}  // namespace segbus::scen
