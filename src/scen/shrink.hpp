// Greedy delta-debugging shrinker — minimizes a failing scenario while it
// keeps violating ONE fixed invariant.
//
// The shrinker edits a flat spec of the scenario (process list, flow list,
// segment list) and re-runs the oracle with only the target invariant
// enabled. Transformations, tried in rounds until a whole round accepts
// nothing:
//
//   * drop a process (with its flows, pruning newly flow-less processes)
//   * drop a flow
//   * merge the last segment into its neighbor
//   * halve a flow's data items / compute ticks
//   * drop the Border-Unit capacity to one package
//
// Each candidate is renormalized (orphan processes pruned, empty segments
// removed) and accepted only when the oracle still reports the target
// invariant; anything else — including a candidate the models reject —
// rejects the candidate. Greedy and deterministic: no randomness, the
// result depends only on the input scenario and invariant.
#pragma once

#include <cstdint>

#include "scen/oracle.hpp"
#include "support/status.hpp"

namespace segbus::scen {

struct ShrinkOptions {
  /// Upper bound on oracle re-runs; the shrinker stops early when a round
  /// accepts nothing.
  std::uint32_t max_attempts = 400;
  /// Oracle knobs reused for reproduction runs (the invariant under test
  /// is force-enabled, the others disabled for speed).
  OracleOptions oracle;
};

struct ShrinkResult {
  /// The smallest scenario found that still violates the invariant (the
  /// input itself when nothing smaller reproduces).
  Scenario scenario;
  /// The violation the minimal scenario produces.
  Violation violation;
  std::uint32_t attempts = 0;  ///< oracle runs spent
  std::uint32_t accepted = 0;  ///< shrink steps that reproduced
};

/// Requires that `failing` actually violates `invariant` (checked first;
/// an invalid_argument error otherwise).
Result<ShrinkResult> shrink_scenario(const Scenario& failing,
                                     Invariant invariant,
                                     const ShrinkOptions& options = {});

}  // namespace segbus::scen
