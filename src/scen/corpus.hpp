// On-disk regression corpus for the fuzzing subsystem.
//
// Each corpus entry is three sibling files sharing one stem:
//
//   <stem>.psdf.xml   the application scheme
//   <stem>.psm.xml    the platform scheme
//   <stem>.meta.json  provenance: seed, violated invariant, timing preset
//                     (the schemes do not carry timing), a human note, and
//                     an optional waiver flag
//
// Campaigns append shrunken repros here; `replay_corpus` re-runs every
// entry through the oracle so fixed bugs stay fixed. A waived entry (a
// documented, accepted divergence) is replayed too but its violations do
// not fail the replay — they are reported so a waiver that silently
// *starts passing* is also visible.
#pragma once

#include <string>
#include <vector>

#include "scen/oracle.hpp"
#include "support/status.hpp"

namespace segbus::scen {

/// Provenance carried by <stem>.meta.json.
struct CorpusMeta {
  std::uint64_t seed = 0;
  /// invariant_name() of the invariant this entry violated when found, or
  /// "seed" for hand-picked seed-corpus entries that must pass.
  std::string invariant = "seed";
  std::string detail;        ///< violation detail at capture time
  std::string note;          ///< free-form context for humans
  bool waived = false;       ///< accepted divergence: replay must not fail
  bool reference_timing = false;  ///< TimingModel::reference() vs emulator()
  bool circuit_switched = true;
};

/// Writes <stem>.{psdf.xml,psm.xml,meta.json} under `directory` (created
/// if missing). The scenario's timing is recorded into the meta.
Status save_corpus_entry(const std::string& directory, const std::string& stem,
                         const Scenario& scenario, const CorpusMeta& meta);

/// One entry loaded back from disk, ready to re-run.
struct CorpusEntry {
  std::string stem;
  CorpusMeta meta;
  Scenario scenario;
};

/// Loads every *.meta.json entry under `directory`, sorted by stem so the
/// replay order is stable across filesystems.
Result<std::vector<CorpusEntry>> load_corpus(const std::string& directory);

struct ReplayOutcome {
  std::string stem;
  bool waived = false;
  std::vector<Violation> violations;
  std::string trace_id;  ///< set when the replay ran traced
  bool passed() const noexcept { return violations.empty(); }
};

struct ReplayReport {
  std::vector<ReplayOutcome> outcomes;
  std::size_t entries = 0;
  /// Non-waived entries with violations — the replay's exit criterion.
  std::size_t failures = 0;
  /// Waived entries that now pass (the waiver may be obsolete).
  std::size_t stale_waivers = 0;
  bool passed() const noexcept { return failures == 0; }
};

/// Re-runs every corpus entry through the oracle.
Result<ReplayReport> replay_corpus(const std::string& directory,
                                   const OracleOptions& options = {});

}  // namespace segbus::scen
