#include "scen/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "platform/platform_xml.hpp"
#include "psdf/psdf_xml.hpp"
#include "support/json.hpp"
#include "xml/writer.hpp"

namespace segbus::scen {

namespace {

namespace fs = std::filesystem;

Status write_text(const fs::path& path, const std::string& text) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return internal_error("cannot open '" + path.string() + "' for writing");
  }
  file << text;
  if (!file.good()) {
    return internal_error("write to '" + path.string() + "' failed");
  }
  return Status::ok();
}

Result<std::string> read_text(const fs::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return not_found_error("cannot read '" + path.string() + "'");
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return text;
}

JsonValue meta_to_json(const CorpusMeta& meta) {
  JsonValue json = JsonValue::object();
  json.set("seed", JsonValue::unsigned_integer(meta.seed));
  json.set("invariant", JsonValue::string(meta.invariant));
  if (!meta.detail.empty()) json.set("detail", JsonValue::string(meta.detail));
  if (!meta.note.empty()) json.set("note", JsonValue::string(meta.note));
  json.set("waived", JsonValue::boolean(meta.waived));
  json.set("timing_preset", JsonValue::string(
                                meta.reference_timing ? "reference"
                                                      : "emulator"));
  json.set("circuit_switched", JsonValue::boolean(meta.circuit_switched));
  return json;
}

Result<CorpusMeta> meta_from_json(const std::string& text,
                                  const std::string& origin) {
  SEGBUS_ASSIGN_OR_RETURN(JsonValue json, JsonValue::parse(text));
  if (!json.is_object()) {
    return invalid_argument_error(origin + ": meta must be a JSON object");
  }
  CorpusMeta meta;
  if (const JsonValue* seed = json.find("seed");
      seed != nullptr && seed->is_number()) {
    meta.seed = seed->as_uint64();
  }
  if (const JsonValue* invariant = json.find("invariant");
      invariant != nullptr && invariant->is_string()) {
    meta.invariant = invariant->as_string();
  }
  if (const JsonValue* detail = json.find("detail");
      detail != nullptr && detail->is_string()) {
    meta.detail = detail->as_string();
  }
  if (const JsonValue* note = json.find("note");
      note != nullptr && note->is_string()) {
    meta.note = note->as_string();
  }
  if (const JsonValue* waived = json.find("waived");
      waived != nullptr && waived->is_bool()) {
    meta.waived = waived->as_bool();
  }
  if (const JsonValue* preset = json.find("timing_preset");
      preset != nullptr && preset->is_string()) {
    meta.reference_timing = preset->as_string() == "reference";
  }
  if (const JsonValue* circuit = json.find("circuit_switched");
      circuit != nullptr && circuit->is_bool()) {
    meta.circuit_switched = circuit->as_bool();
  }
  return meta;
}

emu::TimingModel timing_from_meta(const CorpusMeta& meta) {
  emu::TimingModel timing = meta.reference_timing
                                ? emu::TimingModel::reference()
                                : emu::TimingModel::emulator();
  timing.circuit_switched = meta.circuit_switched;
  return timing;
}

}  // namespace

Status save_corpus_entry(const std::string& directory, const std::string& stem,
                         const Scenario& scenario, const CorpusMeta& meta) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return internal_error("cannot create corpus directory '" + directory +
                          "': " + ec.message());
  }
  const fs::path base = fs::path(directory) / stem;

  CorpusMeta stamped = meta;
  stamped.seed = scenario.seed;
  stamped.reference_timing = scenario.timing == emu::TimingModel::reference();
  stamped.circuit_switched = scenario.timing.circuit_switched;

  SEGBUS_RETURN_IF_ERROR(write_text(
      fs::path(base).concat(".psdf.xml"),
      xml::write_document(psdf::to_xml(scenario.application))));
  SEGBUS_RETURN_IF_ERROR(
      write_text(fs::path(base).concat(".psm.xml"),
                 xml::write_document(platform::to_xml(scenario.platform))));
  return write_text(fs::path(base).concat(".meta.json"),
                    meta_to_json(stamped).to_string(/*pretty=*/true) + "\n");
}

Result<std::vector<CorpusEntry>> load_corpus(const std::string& directory) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return not_found_error("corpus directory '" + directory +
                           "' does not exist");
  }
  std::vector<std::string> stems;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    const std::string filename = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".meta.json";
    if (filename.size() > kSuffix.size() &&
        filename.compare(filename.size() - kSuffix.size(), kSuffix.size(),
                         kSuffix) == 0) {
      stems.push_back(filename.substr(0, filename.size() - kSuffix.size()));
    }
  }
  std::sort(stems.begin(), stems.end());

  std::vector<CorpusEntry> entries;
  for (const std::string& stem : stems) {
    const fs::path base = fs::path(directory) / stem;
    CorpusEntry entry;
    entry.stem = stem;

    SEGBUS_ASSIGN_OR_RETURN(
        std::string meta_text,
        read_text(fs::path(base).concat(".meta.json")));
    SEGBUS_ASSIGN_OR_RETURN(entry.meta,
                            meta_from_json(meta_text, stem + ".meta.json"));

    SEGBUS_ASSIGN_OR_RETURN(
        entry.scenario.application,
        psdf::read_psdf_file(fs::path(base).concat(".psdf.xml").string()));
    SEGBUS_ASSIGN_OR_RETURN(
        entry.scenario.platform,
        platform::read_platform_file(
            fs::path(base).concat(".psm.xml").string()));
    entry.scenario.seed = entry.meta.seed;
    entry.scenario.timing = timing_from_meta(entry.meta);
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<ReplayReport> replay_corpus(const std::string& directory,
                                   const OracleOptions& options) {
  SEGBUS_ASSIGN_OR_RETURN(std::vector<CorpusEntry> entries,
                          load_corpus(directory));
  ReplayReport report;
  report.entries = entries.size();
  for (const CorpusEntry& entry : entries) {
    // Traced replays mirror the campaign: a force-sampled root span with
    // the entry's seed-derived trace id, archived next to the entry when
    // the replay still violates.
    OracleOptions entry_options = options;
    obs::Span entry_span;
    obs::TraceId trace_id;
    if (options.tracer != nullptr) {
      std::uint64_t seed = entry.meta.seed;
      if (seed == 0) {
        // Hand-written entries may lack a seed; hash the stem instead.
        for (char c : entry.stem) {
          seed = seed * 1099511628211ULL + static_cast<unsigned char>(c);
        }
      }
      trace_id = obs::TraceId::from_seed(seed);
      entry_span = options.tracer->start_trace("replay", trace_id, true);
      entry_span.set_attribute("stem", std::string_view(entry.stem));
      entry_options.parent = entry_span.context();
    }
    SEGBUS_ASSIGN_OR_RETURN(OracleOutcome outcome,
                            run_oracle(entry.scenario, entry_options));
    ReplayOutcome replay;
    replay.stem = entry.stem;
    replay.waived = entry.meta.waived;
    replay.violations = std::move(outcome.violations);
    if (options.tracer != nullptr) {
      replay.trace_id = trace_id.to_hex();
      entry_span.end();
      std::vector<obs::SpanRecord> spans = options.tracer->collect(trace_id);
      if (!replay.passed()) {
        (void)obs::write_text_file(
            directory + "/" + entry.stem + ".trace.json",
            obs::span_tree_json(spans).to_string(true) + "\n");
        if (obs::FlightRecorder::instance().enabled()) {
          obs::FlightRecorder::instance().dump_to_file(
              (directory + "/" + entry.stem + ".flightrec.jsonl").c_str());
        }
      }
    }
    if (!replay.passed() && !replay.waived) ++report.failures;
    if (replay.passed() && replay.waived) ++report.stale_waivers;
    report.outcomes.push_back(std::move(replay));
  }
  return report;
}

}  // namespace segbus::scen
