#include "scen/shrink.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "support/strings.hpp"

namespace segbus::scen {

namespace {

/// Flat, editable mirror of a Scenario. Flows refer to processes by index
/// into `processes`; segments are implied by the per-process segment field.
struct Spec {
  struct Proc {
    std::string name;
    platform::SegmentId segment = 0;
    std::uint32_t masters = 1;
    std::uint32_t slaves = 1;
  };
  struct Edge {
    std::size_t source = 0;
    std::size_t target = 0;
    std::uint64_t items = 1;
    std::uint32_t ordering = 1;
    std::uint64_t compute = 0;
  };

  std::uint64_t seed = 0;
  Topology topology = Topology::kChain;
  std::uint32_t package_size = 36;
  Frequency ca_clock = Frequency::from_mhz(100.0);
  std::vector<Frequency> segment_clocks;
  std::uint32_t bu_capacity = 1;
  std::vector<Proc> processes;
  std::vector<Edge> edges;
  emu::TimingModel timing;
  /// Carried verbatim (never shrunk) so stochastic invariants still
  /// reproduce on the reduced model. Mode tables are NOT carried: their
  /// flow indices would dangle as edges are removed, and the mode-chaining
  /// identity check does not need them.
  stoch::StochasticSpec stochastic;
};

Result<Spec> spec_from_scenario(const Scenario& scenario) {
  Spec spec;
  spec.seed = scenario.seed;
  spec.topology = scenario.topology;
  spec.package_size = scenario.platform.package_size();
  spec.ca_clock = scenario.platform.ca_clock();
  for (const platform::Segment& segment : scenario.platform.segments()) {
    spec.segment_clocks.push_back(segment.clock);
  }
  spec.bu_capacity =
      scenario.platform.border_units().empty()
          ? 1
          : scenario.platform.border_units().front().capacity_packages;
  spec.timing = scenario.timing;
  spec.stochastic = scenario.stochastic;

  const psdf::PsdfModel& app = scenario.application;
  for (std::size_t p = 0; p < app.process_count(); ++p) {
    Spec::Proc proc;
    proc.name = app.process(static_cast<psdf::ProcessId>(p)).name;
    auto segment = scenario.platform.segment_of(proc.name);
    if (!segment) {
      return invalid_argument_error("shrink: process '" + proc.name +
                                    "' is not mapped");
    }
    proc.segment = *segment;
    for (const platform::FunctionalUnit& fu :
         scenario.platform.segment(*segment).fus) {
      if (fu.process == proc.name) {
        proc.masters = fu.masters;
        proc.slaves = fu.slaves;
      }
    }
    spec.processes.push_back(std::move(proc));
  }
  for (const psdf::Flow& flow : app.flows()) {
    spec.edges.push_back({flow.source, flow.target, flow.data_items,
                          flow.ordering, flow.compute_ticks});
  }
  return spec;
}

/// Prunes processes left without flows and segments left without
/// processes; nullopt when the spec degenerates below an emulatable model.
std::optional<Spec> normalized(Spec spec) {
  if (spec.edges.empty()) return std::nullopt;

  std::vector<bool> used(spec.processes.size(), false);
  for (const Spec::Edge& edge : spec.edges) {
    used[edge.source] = true;
    used[edge.target] = true;
  }
  std::vector<std::size_t> proc_map(spec.processes.size(), SIZE_MAX);
  std::vector<Spec::Proc> kept;
  for (std::size_t p = 0; p < spec.processes.size(); ++p) {
    if (!used[p]) continue;
    proc_map[p] = kept.size();
    kept.push_back(std::move(spec.processes[p]));
  }
  if (kept.size() < 2) return std::nullopt;
  spec.processes = std::move(kept);
  for (Spec::Edge& edge : spec.edges) {
    edge.source = proc_map[edge.source];
    edge.target = proc_map[edge.target];
  }

  std::vector<bool> occupied(spec.segment_clocks.size(), false);
  for (const Spec::Proc& proc : spec.processes) {
    occupied[proc.segment] = true;
  }
  std::vector<platform::SegmentId> seg_map(spec.segment_clocks.size(), 0);
  std::vector<Frequency> clocks;
  for (std::size_t s = 0; s < spec.segment_clocks.size(); ++s) {
    if (!occupied[s]) continue;
    seg_map[s] = static_cast<platform::SegmentId>(clocks.size());
    clocks.push_back(spec.segment_clocks[s]);
  }
  if (clocks.empty()) return std::nullopt;
  spec.segment_clocks = std::move(clocks);
  for (Spec::Proc& proc : spec.processes) {
    proc.segment = seg_map[proc.segment];
  }
  return spec;
}

Result<Scenario> scenario_from_spec(const Spec& spec) {
  Scenario scenario;
  scenario.seed = spec.seed;
  scenario.topology = spec.topology;
  scenario.timing = spec.timing;
  scenario.stochastic = spec.stochastic;

  psdf::PsdfModel app(
      str_format("shrunk%llu", static_cast<unsigned long long>(spec.seed)));
  SEGBUS_RETURN_IF_ERROR(app.set_package_size(spec.package_size));
  for (const Spec::Proc& proc : spec.processes) {
    auto added = app.add_process(proc.name);
    if (!added.is_ok()) return added.status();
  }
  for (const Spec::Edge& edge : spec.edges) {
    SEGBUS_RETURN_IF_ERROR(app.add_flow(
        static_cast<psdf::ProcessId>(edge.source),
        static_cast<psdf::ProcessId>(edge.target), edge.items, edge.ordering,
        edge.compute));
  }

  platform::PlatformModel psm(
      str_format("SBPshrunk%llu", static_cast<unsigned long long>(spec.seed)));
  SEGBUS_RETURN_IF_ERROR(psm.set_package_size(spec.package_size));
  SEGBUS_RETURN_IF_ERROR(psm.set_ca_clock(spec.ca_clock));
  for (Frequency clock : spec.segment_clocks) {
    auto added = psm.add_segment(clock);
    if (!added.is_ok()) return added.status();
  }
  for (const Spec::Proc& proc : spec.processes) {
    SEGBUS_RETURN_IF_ERROR(
        psm.map_process(proc.name, proc.segment, proc.masters, proc.slaves));
  }
  SEGBUS_RETURN_IF_ERROR(psm.set_bu_capacity(spec.bu_capacity));

  scenario.application = std::move(app);
  scenario.platform = std::move(psm);
  return scenario;
}

/// Oracle options that check only the target invariant (completion and the
/// generator contract are implicit — they gate every oracle run).
OracleOptions narrowed(const OracleOptions& base, Invariant invariant) {
  OracleOptions options = base;
  options.check_bounds = invariant == Invariant::kBoundsBracket;
  options.check_conservation = invariant == Invariant::kConservation;
  options.check_fingerprint = invariant == Invariant::kFingerprintEquivalence;
  options.check_clock_scaling = invariant == Invariant::kClockScaling;
  options.check_parallel = invariant == Invariant::kParallelEquivalence;
  // check_fast inherits from base: the cross-engine half of
  // bounds-dominance needs the fast-equivalence run to exist.
  options.check_dominance = invariant == Invariant::kBoundsDominance;
  options.check_stoch_degenerate = invariant == Invariant::kStochDegenerate;
  options.check_mode_chaining = invariant == Invariant::kModeChaining;
  options.check_replication_bounds =
      invariant == Invariant::kReplicationBounds;
  return options;
}

/// Does the spec still violate the target invariant? Any failure along the
/// way (degenerate spec, model rejection, oracle harness error) rejects.
bool reproduces(const Spec& spec, Invariant invariant,
                const OracleOptions& options, Violation* violation) {
  auto scenario = scenario_from_spec(spec);
  if (!scenario.is_ok()) return false;
  auto outcome = run_oracle(*scenario, options);
  if (!outcome.is_ok()) return false;
  for (const Violation& v : outcome->violations) {
    if (v.invariant == invariant) {
      if (violation != nullptr) *violation = v;
      return true;
    }
  }
  return false;
}

}  // namespace

Result<ShrinkResult> shrink_scenario(const Scenario& failing,
                                     Invariant invariant,
                                     const ShrinkOptions& options) {
  const OracleOptions oracle = narrowed(options.oracle, invariant);

  SEGBUS_ASSIGN_OR_RETURN(Spec current, spec_from_scenario(failing));
  ShrinkResult result;
  result.attempts = 1;
  if (!reproduces(current, invariant, oracle, &result.violation)) {
    return invalid_argument_error(
        "shrink: the input scenario does not violate " +
        std::string(invariant_name(invariant)));
  }

  // One round = every transformation tried once against the current spec;
  // the first acceptance restarts the round from the (smaller) accepted
  // spec. Ends when a full round rejects everything.
  bool progressed = true;
  while (progressed && result.attempts < options.max_attempts) {
    progressed = false;

    auto try_candidate = [&](Spec candidate) {
      if (result.attempts >= options.max_attempts) return false;
      std::optional<Spec> normal = normalized(std::move(candidate));
      if (!normal) return false;
      ++result.attempts;
      Violation violation;
      if (!reproduces(*normal, invariant, oracle, &violation)) return false;
      current = std::move(*normal);
      result.violation = std::move(violation);
      ++result.accepted;
      progressed = true;
      return true;
    };

    // Drop whole processes first — the biggest wins.
    for (std::size_t p = 0; p < current.processes.size(); ++p) {
      Spec candidate = current;
      candidate.processes.erase(candidate.processes.begin() +
                                static_cast<std::ptrdiff_t>(p));
      std::vector<Spec::Edge> kept;
      for (Spec::Edge edge : candidate.edges) {
        if (edge.source == p || edge.target == p) continue;
        if (edge.source > p) --edge.source;
        if (edge.target > p) --edge.target;
        kept.push_back(edge);
      }
      candidate.edges = std::move(kept);
      if (try_candidate(std::move(candidate))) break;
    }
    if (progressed) continue;

    for (std::size_t f = 0; f < current.edges.size(); ++f) {
      Spec candidate = current;
      candidate.edges.erase(candidate.edges.begin() +
                            static_cast<std::ptrdiff_t>(f));
      if (try_candidate(std::move(candidate))) break;
    }
    if (progressed) continue;

    if (current.segment_clocks.size() > 1) {
      Spec candidate = current;
      const auto last = static_cast<platform::SegmentId>(
          candidate.segment_clocks.size() - 1);
      for (Spec::Proc& proc : candidate.processes) {
        if (proc.segment == last) proc.segment = last - 1;
      }
      candidate.segment_clocks.pop_back();
      if (try_candidate(std::move(candidate))) continue;
    }

    for (std::size_t f = 0; f < current.edges.size(); ++f) {
      if (current.edges[f].items > 1) {
        Spec candidate = current;
        candidate.edges[f].items = std::max<std::uint64_t>(
            1, candidate.edges[f].items / 2);
        if (try_candidate(std::move(candidate))) break;
      }
    }
    if (progressed) continue;

    for (std::size_t f = 0; f < current.edges.size(); ++f) {
      if (current.edges[f].compute > 1) {
        Spec candidate = current;
        candidate.edges[f].compute /= 2;
        if (try_candidate(std::move(candidate))) break;
      }
    }
    if (progressed) continue;

    if (current.bu_capacity > 1) {
      Spec candidate = current;
      candidate.bu_capacity = 1;
      try_candidate(std::move(candidate));
    }
  }

  SEGBUS_ASSIGN_OR_RETURN(result.scenario, scenario_from_spec(current));
  return result;
}

}  // namespace segbus::scen
