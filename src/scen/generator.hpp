// Seeded scenario synthesis — the workload side of the fuzzing subsystem.
//
// A Scenario is a complete, emulatable (PSDF, PSM, timing) triple. The
// generator derives every random choice from a single 64-bit seed through
// named support/rng substreams ("topology", "application", "platform",
// "placer"), so a scenario is reproducible from its seed alone and the
// streams stay independent: changing how the platform is drawn never
// perturbs the application, and the annealing placer (when used) consumes
// its own stream. Stochastic workload specs and multi-mode tables draw
// from the "stoch" and "modes" substreams (registry: DESIGN.md), so the
// classic static scenarios of an (options, seed) pair never shift when
// the new workload classes are toggled.
//
// Generated applications are layered DAGs (chains and fork/joins are the
// width-1 and width-n special cases): every flow goes from layer a to a
// later layer b and carries ordering T = b, which satisfies the PSDF
// validation rules by construction — outgoing flows of a process are
// ordered strictly after its incoming flows (SB003), the graph is acyclic
// (SB004), every process participates (SB005), and tiers are contiguous
// (SB007). Platforms are linear SegBus instances with 1..max segments,
// clock presets, BU capacities and package sizes drawn from the options.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "emu/timing.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "psdf/modes.hpp"
#include "stoch/workload.hpp"
#include "support/status.hpp"

namespace segbus::scen {

/// Application graph shapes the generator draws from.
enum class Topology : std::uint8_t {
  kChain,       ///< linear pipeline P0 -> P1 -> ... (width 1)
  kForkJoin,    ///< source -> N workers -> sink
  kLayeredDag,  ///< random widths, random extra forward edges
};

std::string_view topology_name(Topology topology) noexcept;

/// Distribution knobs. Defaults keep scenarios small enough that a 10k
/// campaign finishes in well under a minute of CPU per worker.
struct GeneratorOptions {
  // --- application ------------------------------------------------------
  std::uint32_t min_processes = 2;
  std::uint32_t max_processes = 9;
  std::uint32_t max_layer_width = 3;
  /// Probability of an extra forward (possibly layer-skipping) edge, per
  /// process pair considered.
  double extra_edge_probability = 0.15;
  std::uint64_t min_items = 1;     ///< D lower bound
  std::uint64_t max_items = 240;   ///< D upper bound
  std::uint64_t min_compute = 1;   ///< C lower bound
  std::uint64_t max_compute = 200; ///< C upper bound
  /// Probability a scenario uses underscore/digit-heavy process names
  /// ("stage_3_fft" style) to stress the flow-name codec.
  double gnarly_name_probability = 0.2;

  // --- platform ---------------------------------------------------------
  std::uint32_t min_segments = 1;
  std::uint32_t max_segments = 4;
  std::uint32_t max_bu_capacity = 3;
  /// Candidate package sizes (data items per package).
  std::vector<std::uint32_t> package_sizes = {6, 9, 12, 18, 36};
  /// Probability of using the annealing placer (seeded from the "placer"
  /// substream) instead of a uniform random mapping.
  double annealed_placement_probability = 0.25;
  /// Probability of the reference timing preset (else the emulator's).
  double reference_timing_probability = 0.35;
  /// Probability of the pipelined (virtual-cut-through) path discipline
  /// instead of the paper's circuit switching.
  double pipelined_probability = 0.25;

  // --- workload classes (ROADMAP item 4) --------------------------------
  /// Probability the scenario carries a non-degenerate stochastic spec
  /// (drawn from the "stoch" substream); otherwise the spec is the
  /// identity (point:1 scales) and the scenario is exactly the classic
  /// deterministic workload.
  double stochastic_probability = 0.35;
  /// Probability the scenario carries a mode table + seeded schedule
  /// (drawn from the "modes" substream); requires >= 2 flows.
  double multimode_probability = 0.3;
};

/// One generated workload: everything the oracle needs to emulate it.
struct Scenario {
  std::uint64_t seed = 0;
  Topology topology = Topology::kChain;
  psdf::PsdfModel application;
  platform::PlatformModel platform;
  emu::TimingModel timing;

  /// Stochastic scaling of the application's C and D values. Identity
  /// (point:1 on both) for classic deterministic scenarios; the oracle's
  /// degenerate-replication invariant relies on that identity being
  /// bit-preserving.
  stoch::StochasticSpec stochastic;
  /// Multi-mode extension: when `has_modes`, `modes` selects flow subsets
  /// and `mode_schedule` is the seeded execution order.
  bool has_modes = false;
  psdf::ModeTable modes;
  std::vector<std::size_t> mode_schedule;

  /// "seed=7 layered p=6 f=9 seg=3 pkg=18 ref" one-liner for logs.
  std::string describe() const;
};

/// Synthesizes the scenario for `seed`. Deterministic: equal (seed,
/// options) pairs yield byte-identical models on any host or thread.
/// The result always passes PSDF/PSM validation and the cross-model
/// mapping checks; a failure here is a generator bug.
Result<Scenario> generate_scenario(std::uint64_t seed,
                                   const GeneratorOptions& options = {});

}  // namespace segbus::scen
