#include "scen/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace segbus::scen {

namespace {

using Clock = std::chrono::steady_clock;

std::string failure_json(const CampaignFailure& failure) {
  JsonValue json = JsonValue::object();
  json.set("type", JsonValue::string("violation"));
  json.set("index", JsonValue::unsigned_integer(failure.index));
  json.set("seed", JsonValue::unsigned_integer(failure.scenario_seed));
  json.set("invariant",
           JsonValue::string(invariant_name(failure.invariant)));
  json.set("detail", JsonValue::string(failure.detail));
  json.set("scenario", JsonValue::string(failure.original));
  if (!failure.shrunk.empty()) {
    json.set("shrunk", JsonValue::string(failure.shrunk));
  }
  if (!failure.corpus_stem.empty()) {
    json.set("corpus", JsonValue::string(failure.corpus_stem));
  }
  if (!failure.trace_id.empty()) {
    json.set("trace_id", JsonValue::string(failure.trace_id));
  }
  return json.to_string();
}

std::string summary_json(const CampaignReport& report,
                         const CampaignOptions& options) {
  JsonValue json = JsonValue::object();
  json.set("type", JsonValue::string("summary"));
  json.set("seed", JsonValue::unsigned_integer(options.seed));
  json.set("scenarios", JsonValue::unsigned_integer(report.scenarios));
  json.set("violations", JsonValue::unsigned_integer(report.violations));
  json.set("invariants_checked",
           JsonValue::unsigned_integer(report.invariants_checked));
  json.set("invariants_skipped",
           JsonValue::unsigned_integer(report.invariants_skipped));
  JsonValue by = JsonValue::object();
  for (std::size_t i = 0; i < kInvariantCount; ++i) {
    if (report.by_invariant[i] != 0) {
      by.set(std::string(invariant_name(static_cast<Invariant>(i))),
             JsonValue::unsigned_integer(report.by_invariant[i]));
    }
  }
  json.set("by_invariant", std::move(by));
  json.set("elapsed_seconds", JsonValue::number(report.elapsed_seconds));
  json.set("time_budget_hit", JsonValue::boolean(report.time_budget_hit));
  json.set("failure_cap_hit", JsonValue::boolean(report.failure_cap_hit));
  return json.to_string();
}

}  // namespace

Result<CampaignReport> run_campaign(const CampaignOptions& options,
                                    std::ostream* log) {
  if (options.count == 0) {
    return invalid_argument_error("campaign: count must be > 0");
  }
  unsigned workers = options.workers;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(
      std::min<std::uint64_t>(workers, options.count));

  CampaignReport report;
  const Clock::time_point start = Clock::now();
  const bool budgeted = options.time_budget_seconds > 0.0;
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      budgeted ? options.time_budget_seconds : 0.0));

  std::atomic<std::uint64_t> next_index{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> budget_hit{false};
  std::atomic<bool> cap_hit{false};

  std::mutex mutex;  // guards report totals, failures, the log stream
  Status first_error = Status::ok();

  auto worker_main = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t index =
          next_index.fetch_add(1, std::memory_order_relaxed);
      if (index >= options.count) break;
      if (budgeted && Clock::now() >= deadline) {
        budget_hit.store(true, std::memory_order_relaxed);
        stop.store(true, std::memory_order_relaxed);
        break;
      }

      const std::uint64_t scenario_seed = derive_seed(options.seed, index);
      auto scenario = generate_scenario(scenario_seed, options.generator);

      OracleOptions oracle = options.oracle;
      oracle.check_parallel =
          options.oracle.check_parallel ||
          (options.parallel_sample_period != 0 &&
           index % options.parallel_sample_period == 0);

      // Seed-derived trace id: the violation's trace is re-derivable from
      // the campaign log alone; force-sampled because a trace-enabled
      // campaign wants every scenario's tree available at failure time.
      const obs::TraceId trace_id = obs::TraceId::from_seed(scenario_seed);
      obs::Span scenario_span;
      if (options.tracer != nullptr) {
        scenario_span =
            options.tracer->start_trace("scenario", trace_id, true);
        scenario_span.set_attribute("seed", scenario_seed);
        scenario_span.set_attribute("index", index);
        oracle.tracer = options.tracer;
        oracle.parent = scenario_span.context();
      }

      OracleOutcome outcome;
      if (scenario.is_ok()) {
        auto ran = run_oracle(*scenario, oracle);
        if (!ran.is_ok()) {
          std::lock_guard<std::mutex> lock(mutex);
          if (first_error.is_ok()) first_error = ran.status();
          stop.store(true, std::memory_order_relaxed);
          break;
        }
        outcome = std::move(*ran);
      } else {
        // A generator bug is a first-class finding, not a harness error.
        outcome.violations.push_back(
            {Invariant::kGeneratorContract, scenario.status().to_string()});
        ++outcome.invariants_checked;
      }

      CampaignFailure failure;
      bool failed = !outcome.violations.empty();
      if (failed) {
        const Violation& first = outcome.violations.front();
        failure.index = index;
        failure.scenario_seed = scenario_seed;
        failure.invariant = first.invariant;
        failure.detail = first.detail;
        failure.original =
            scenario.is_ok() ? scenario->describe() : "generation failed";
        if (options.tracer != nullptr) {
          failure.trace_id = trace_id.to_hex();
          scenario_span.set_attribute(
              "violation", invariant_name(first.invariant));
        }

        if (scenario.is_ok() && options.shrink &&
            first.invariant != Invariant::kGeneratorContract) {
          ShrinkOptions shrink;
          shrink.max_attempts = options.shrink_attempts;
          shrink.oracle = options.oracle;
          auto shrunk = shrink_scenario(*scenario, first.invariant, shrink);
          if (shrunk.is_ok()) {
            failure.shrunk = shrunk->scenario.describe();
            failure.detail = shrunk->violation.detail;
            if (!options.corpus_dir.empty()) {
              const std::string stem = str_format(
                  "%s-s%llu",
                  std::string(invariant_name(first.invariant)).c_str(),
                  static_cast<unsigned long long>(scenario_seed));
              CorpusMeta meta;
              meta.seed = scenario_seed;
              meta.invariant = invariant_name(first.invariant);
              meta.detail = failure.detail;
              meta.note = "shrunk from " + failure.original;
              if (save_corpus_entry(options.corpus_dir, stem,
                                    shrunk->scenario, meta)
                      .is_ok()) {
                failure.corpus_stem = stem;
              }
            }
          }
        }
      }

      if (options.tracer != nullptr) {
        scenario_span.end();
        // Drain this scenario's spans either way: failures archive them,
        // passes must not pile up in the collection buffers.
        std::vector<obs::SpanRecord> spans =
            options.tracer->collect(trace_id);
        if (failed && !options.corpus_dir.empty()) {
          const std::string stem =
              !failure.corpus_stem.empty()
                  ? failure.corpus_stem
                  : str_format("%s-s%llu",
                               std::string(invariant_name(failure.invariant))
                                   .c_str(),
                               static_cast<unsigned long long>(scenario_seed));
          (void)obs::write_text_file(
              options.corpus_dir + "/" + stem + ".trace.json",
              obs::span_tree_json(spans).to_string(true) + "\n");
          if (obs::FlightRecorder::instance().enabled()) {
            obs::FlightRecorder::instance().dump_to_file(
                (options.corpus_dir + "/" + stem + ".flightrec.jsonl")
                    .c_str());
          }
        }
      }

      std::lock_guard<std::mutex> lock(mutex);
      ++report.scenarios;
      report.violations += outcome.violations.size();
      report.invariants_checked += outcome.invariants_checked;
      report.invariants_skipped += outcome.invariants_skipped;
      for (const Violation& violation : outcome.violations) {
        ++report.by_invariant[static_cast<std::size_t>(violation.invariant)];
      }
      if (failed) {
        if (log != nullptr) *log << failure_json(failure) << '\n';
        report.failures.push_back(std::move(failure));
        if (options.max_failures != 0 &&
            report.failures.size() >= options.max_failures) {
          cap_hit.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
        }
      }
    }
  };

  if (workers == 1) {
    worker_main();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) threads.emplace_back(worker_main);
    for (std::thread& thread : threads) thread.join();
  }

  if (!first_error.is_ok()) return first_error;

  std::sort(report.failures.begin(), report.failures.end(),
            [](const CampaignFailure& a, const CampaignFailure& b) {
              return a.index < b.index;
            });
  report.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.time_budget_hit = budget_hit.load();
  report.failure_cap_hit = cap_hit.load();

  report.metrics.counter("scen_scenarios_total", {},
                         "scenarios fully checked")
      .inc(report.scenarios);
  report.metrics.counter("scen_invariants_checked_total", {},
                         "oracle invariants evaluated")
      .inc(report.invariants_checked);
  report.metrics.counter("scen_invariants_skipped_total", {},
                         "invariants skipped (precondition not met)")
      .inc(report.invariants_skipped);
  for (std::size_t i = 0; i < kInvariantCount; ++i) {
    if (report.by_invariant[i] != 0) {
      report.metrics
          .counter("scen_violations_total",
                   {{"invariant",
                     std::string(invariant_name(static_cast<Invariant>(i)))}},
                   "oracle violations by invariant")
          .inc(report.by_invariant[i]);
    }
  }

  if (log != nullptr) *log << summary_json(report, options) << '\n';
  return report;
}

}  // namespace segbus::scen
