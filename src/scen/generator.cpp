#include "scen/generator.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "place/apply.hpp"
#include "place/placer.hpp"
#include "platform/constraints.hpp"
#include "psdf/comm_matrix.hpp"
#include "psdf/validate.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace segbus::scen {

namespace {

/// Clock presets, in MHz. The first group has integer-exact periods that
/// stay exact when halved (100 MHz -> 10000 ps -> 50 MHz -> 20000 ps),
/// which keeps the oracle's clock-scaling invariant applicable; the second
/// group reproduces the paper's experimental frequencies.
constexpr double kClockPresetsMhz[] = {10,   20, 25, 40, 50,  62.5, 100,
                                       125,  200, 250,
                                       89,   91, 98, 111};

/// Name fragments for the "gnarly" naming mode. All fragments are safe in
/// the scheme encoding (underscores allowed; decode splits from the right)
/// but stress the codecs with digits, underscores and case.
constexpr const char* kNamePrefixes[] = {"stage", "fu_2", "Proc", "x_y_z",
                                         "Idct_8"};

std::string process_name(bool gnarly, Xoshiro256& rng, std::uint32_t index) {
  if (!gnarly) return str_format("P%u", index);
  const char* prefix = kNamePrefixes[rng.next_below(std::size(kNamePrefixes))];
  return str_format("%s_%u", prefix, index);
}

/// Splits `n` processes into layers: chain = all width 1, fork/join =
/// 1/(n-2)/1, layered = random widths in [1, max_width].
std::vector<std::uint32_t> layer_widths(Topology topology, std::uint32_t n,
                                        std::uint32_t max_width,
                                        Xoshiro256& rng) {
  std::vector<std::uint32_t> widths;
  switch (topology) {
    case Topology::kChain:
      widths.assign(n, 1);
      break;
    case Topology::kForkJoin:
      widths = {1, n - 2, 1};
      break;
    case Topology::kLayeredDag: {
      std::uint32_t remaining = n;
      while (remaining > 0) {
        std::uint32_t cap = std::min(max_width, remaining);
        // Keep at least one process for a second layer.
        if (widths.empty() && cap == n && n > 1) cap = n - 1;
        auto width =
            static_cast<std::uint32_t>(rng.next_below(cap) + 1);
        widths.push_back(width);
        remaining -= width;
      }
      if (widths.size() < 2) widths.assign(n, 1);
      break;
    }
  }
  return widths;
}

}  // namespace

std::string_view topology_name(Topology topology) noexcept {
  switch (topology) {
    case Topology::kChain: return "chain";
    case Topology::kForkJoin: return "fork-join";
    case Topology::kLayeredDag: return "layered";
  }
  return "unknown";
}

std::string Scenario::describe() const {
  std::string extras;
  if (!stochastic.is_identity()) {
    extras += str_format(" stoch=%s/%s",
                         stochastic.compute_scale.spec().c_str(),
                         stochastic.items_scale.spec().c_str());
  }
  if (has_modes) {
    extras += str_format(" modes=%zu", modes.modes().size());
  }
  return str_format(
      "seed=%llu %s p=%zu f=%zu seg=%zu pkg=%u %s%s%s",
      static_cast<unsigned long long>(seed),
      std::string(topology_name(topology)).c_str(),
      application.process_count(), application.flows().size(),
      platform.segment_count(), platform.package_size(),
      timing == emu::TimingModel::reference() ? "ref" : "emu",
      timing.circuit_switched ? "" : " pipelined", extras.c_str());
}

Result<Scenario> generate_scenario(std::uint64_t seed,
                                   const GeneratorOptions& options) {
  if (options.min_processes < 2 || options.max_processes < options.min_processes) {
    return invalid_argument_error("generator: need max_processes >= min_processes >= 2");
  }
  if (options.min_segments < 1 || options.max_segments < options.min_segments) {
    return invalid_argument_error("generator: need max_segments >= min_segments >= 1");
  }
  if (options.package_sizes.empty()) {
    return invalid_argument_error("generator: package_sizes must not be empty");
  }
  if (options.min_items < 1 || options.max_items < options.min_items ||
      options.min_compute < 1 || options.max_compute < options.min_compute) {
    return invalid_argument_error("generator: item/compute ranges must be >= 1");
  }

  Scenario scenario;
  scenario.seed = seed;

  // --- shape -------------------------------------------------------------
  Xoshiro256 shape = substream(seed, "topology");
  const auto n = static_cast<std::uint32_t>(shape.next_in(
      options.min_processes, options.max_processes));
  double topology_draw = shape.next_double();
  scenario.topology = topology_draw < 0.3 ? Topology::kChain
                      : topology_draw < 0.5 && n >= 3
                          ? Topology::kForkJoin
                          : Topology::kLayeredDag;
  if (scenario.topology == Topology::kForkJoin && n < 3) {
    scenario.topology = Topology::kChain;
  }

  // --- application -------------------------------------------------------
  Xoshiro256 app_rng = substream(seed, "application");
  const auto package_size = options.package_sizes[app_rng.next_below(
      options.package_sizes.size())];
  psdf::PsdfModel application(
      str_format("scen%llu", static_cast<unsigned long long>(seed)));
  SEGBUS_RETURN_IF_ERROR(application.set_package_size(package_size));

  const bool gnarly =
      app_rng.next_bool(options.gnarly_name_probability);
  std::vector<std::uint32_t> widths =
      layer_widths(scenario.topology, n, options.max_layer_width, app_rng);

  // Process ids per layer, in insertion order.
  std::vector<std::vector<psdf::ProcessId>> layers;
  std::uint32_t index = 0;
  for (std::uint32_t width : widths) {
    layers.emplace_back();
    for (std::uint32_t i = 0; i < width; ++i) {
      SEGBUS_ASSIGN_OR_RETURN(
          psdf::ProcessId id,
          application.add_process(process_name(gnarly, app_rng, index)));
      layers.back().push_back(id);
      ++index;
    }
  }

  auto draw_items = [&] {
    return static_cast<std::uint64_t>(app_rng.next_in(
        static_cast<std::int64_t>(options.min_items),
        static_cast<std::int64_t>(options.max_items)));
  };
  auto draw_compute = [&] {
    return static_cast<std::uint64_t>(app_rng.next_in(
        static_cast<std::int64_t>(options.min_compute),
        static_cast<std::int64_t>(options.max_compute)));
  };

  // Edges between adjacent layers; ordering T = target layer index, which
  // keeps outgoing flows strictly after incoming ones (SB003) and tiers
  // contiguous (SB007).
  std::set<std::pair<psdf::ProcessId, psdf::ProcessId>> edges;
  auto add_edge = [&](psdf::ProcessId src, psdf::ProcessId dst,
                      std::uint32_t tier) -> Status {
    if (!edges.emplace(src, dst).second) return Status::ok();
    return application.add_flow(src, dst, draw_items(), tier, draw_compute());
  };
  for (std::size_t layer = 0; layer + 1 < layers.size(); ++layer) {
    const auto tier = static_cast<std::uint32_t>(layer + 1);
    // Every source gets at least one outgoing edge ...
    for (psdf::ProcessId src : layers[layer]) {
      psdf::ProcessId dst = layers[layer + 1][app_rng.next_below(
          layers[layer + 1].size())];
      SEGBUS_RETURN_IF_ERROR(add_edge(src, dst, tier));
    }
    // ... and every target at least one incoming edge.
    for (psdf::ProcessId dst : layers[layer + 1]) {
      bool covered = false;
      for (psdf::ProcessId src : layers[layer]) {
        if (edges.count({src, dst}) != 0) covered = true;
      }
      if (!covered) {
        psdf::ProcessId src =
            layers[layer][app_rng.next_below(layers[layer].size())];
        SEGBUS_RETURN_IF_ERROR(add_edge(src, dst, tier));
      }
    }
  }
  // Extra forward (possibly layer-skipping) edges for the layered shape.
  if (scenario.topology == Topology::kLayeredDag) {
    for (std::size_t a = 0; a < layers.size(); ++a) {
      for (std::size_t b = a + 1; b < layers.size(); ++b) {
        for (psdf::ProcessId src : layers[a]) {
          for (psdf::ProcessId dst : layers[b]) {
            if (app_rng.next_bool(options.extra_edge_probability)) {
              SEGBUS_RETURN_IF_ERROR(
                  add_edge(src, dst, static_cast<std::uint32_t>(b)));
            }
          }
        }
      }
    }
  }

  // --- platform ----------------------------------------------------------
  Xoshiro256 plat_rng = substream(seed, "platform");
  const auto segments = static_cast<std::uint32_t>(plat_rng.next_in(
      options.min_segments,
      std::min(options.max_segments, n)));
  platform::PlatformModel platform(
      str_format("SBP%llu", static_cast<unsigned long long>(seed)));
  SEGBUS_RETURN_IF_ERROR(platform.set_package_size(package_size));
  auto draw_clock = [&plat_rng] {
    return Frequency::from_mhz(
        kClockPresetsMhz[plat_rng.next_below(std::size(kClockPresetsMhz))]);
  };
  SEGBUS_RETURN_IF_ERROR(platform.set_ca_clock(draw_clock()));
  for (std::uint32_t s = 0; s < segments; ++s) {
    auto added = platform.add_segment(draw_clock());
    if (!added.is_ok()) return added.status();
  }
  SEGBUS_RETURN_IF_ERROR(platform.set_bu_capacity(static_cast<std::uint32_t>(
      plat_rng.next_in(1, options.max_bu_capacity))));

  // --- placement ---------------------------------------------------------
  bool placed = false;
  if (segments > 1 &&
      plat_rng.next_bool(options.annealed_placement_probability)) {
    psdf::CommMatrix matrix = psdf::CommMatrix::from_model(application);
    place::CostModel cost;
    cost.package_size = package_size;
    place::AnnealOptions anneal;
    anneal.seed = derive_seed(seed, "placer");
    anneal.iterations = 2000;
    auto result = place::anneal_place(matrix, segments, cost, anneal);
    if (result.is_ok()) {
      SEGBUS_RETURN_IF_ERROR(
          place::apply_allocation(application, result->allocation, platform));
      placed = true;
    }
  }
  if (!placed) {
    // Uniform random mapping with every segment guaranteed one process:
    // Fisher-Yates shuffle, the first `segments` processes pin one segment
    // each, the rest land uniformly.
    std::vector<psdf::ProcessId> order(n);
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    for (std::uint32_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[plat_rng.next_below(i)]);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto segment = static_cast<platform::SegmentId>(
          i < segments ? i : plat_rng.next_below(segments));
      SEGBUS_RETURN_IF_ERROR(platform.map_process(
          application.process(order[i]).name, segment));
    }
  }

  // --- timing ------------------------------------------------------------
  Xoshiro256 timing_rng = substream(seed, "timing");
  scenario.timing = timing_rng.next_bool(options.reference_timing_probability)
                        ? emu::TimingModel::reference()
                        : emu::TimingModel::emulator();
  if (timing_rng.next_bool(options.pipelined_probability)) {
    scenario.timing.circuit_switched = false;
  }

  // --- workload classes --------------------------------------------------
  // Own substreams so the classic static scenario of this (options, seed)
  // never shifts when the stochastic/multi-mode knobs are toggled. Every
  // drawn distribution has mean ~= 1 so the realized workloads stay near
  // the deterministic scale.
  Xoshiro256 stoch_rng = substream(seed, "stoch");
  if (stoch_rng.next_bool(options.stochastic_probability)) {
    auto draw_distribution = [&stoch_rng] {
      const std::uint64_t kind = stoch_rng.next_below(4);
      // Fixed two parameter draws per distribution, whichever kind, so a
      // later draw never depends on an earlier kind choice.
      const double u1 = stoch_rng.next_double();
      const double u2 = stoch_rng.next_double();
      switch (kind) {
        case 0:
          return stoch::Distribution::uniform(0.5 + 0.5 * u1, 1.0 + u2);
        case 1:
          return stoch::Distribution::normal(1.0, 0.05 + 0.35 * u1);
        case 2: {
          const double sigma = 0.1 + 0.5 * u1;
          return stoch::Distribution::lognormal(-0.5 * sigma * sigma, sigma);
        }
        default: {
          const double alpha = 2.5 + 1.5 * u1;
          return stoch::Distribution::pareto(alpha, (alpha - 1.0) / alpha);
        }
      }
    };
    scenario.stochastic.compute_scale = draw_distribution();
    if (stoch_rng.next_bool(0.5)) {
      scenario.stochastic.items_scale = draw_distribution();
    }
  }

  Xoshiro256 modes_rng = substream(seed, "modes");
  if (application.flows().size() >= 2 &&
      modes_rng.next_bool(options.multimode_probability)) {
    const std::size_t flow_count = application.flows().size();
    psdf::ModeTable table;
    table.set_control_process(
        application.process(static_cast<psdf::ProcessId>(
                                modes_rng.next_below(n)))
            .name);
    table.set_transition_delay(Picoseconds(modes_rng.next_in(0, 100000)));
    const std::size_t mode_count = 2 + modes_rng.next_below(2);
    for (std::size_t m = 0; m < mode_count; ++m) {
      psdf::Mode mode;
      mode.name = str_format("mode%zu", m);
      if (modes_rng.next_bool(0.6)) {
        for (std::size_t f = 0; f < flow_count; ++f) {
          if (modes_rng.next_bool(0.7)) mode.flow_indices.push_back(f);
        }
      } else {
        for (std::size_t f = 0; f < flow_count; ++f) {
          mode.flow_indices.push_back(f);
        }
      }
      if (mode.flow_indices.empty()) {
        mode.flow_indices.push_back(modes_rng.next_below(flow_count));
      }
      for (std::size_t f : mode.flow_indices) {
        if (!modes_rng.next_bool(0.3)) continue;
        psdf::FlowOverride override;
        override.flow_index = f;
        if (modes_rng.next_bool(0.5)) {
          override.data_items = static_cast<std::uint64_t>(modes_rng.next_in(
              static_cast<std::int64_t>(options.min_items),
              static_cast<std::int64_t>(options.max_items)));
        } else {
          override.compute_ticks = static_cast<std::uint64_t>(
              modes_rng.next_in(
                  static_cast<std::int64_t>(options.min_compute),
                  static_cast<std::int64_t>(options.max_compute)));
        }
        mode.overrides.push_back(override);
      }
      auto added = table.add_mode(std::move(mode));
      if (!added.is_ok()) return added.status();
    }
    if (Status status = table.validate(application); !status.is_ok()) {
      return internal_error("generator produced an invalid mode table (" +
                            scenario.describe() + "): " +
                            std::string(status.message()));
    }
    scenario.mode_schedule =
        table.generate_schedule(seed, 2 + modes_rng.next_below(3));
    scenario.modes = std::move(table);
    scenario.has_modes = true;
  }

  scenario.application = std::move(application);
  scenario.platform = std::move(platform);

  // The generator's contract: the scenario passes every structural check.
  ValidationReport app_report = psdf::validate(scenario.application);
  if (!app_report.ok()) {
    return internal_error("generator produced an invalid PSDF (" +
                          scenario.describe() + "): " +
                          app_report.to_string());
  }
  ValidationReport map_report =
      platform::validate_mapping(scenario.platform, scenario.application);
  if (!map_report.ok()) {
    return internal_error("generator produced an invalid mapping (" +
                          scenario.describe() + "): " +
                          map_report.to_string());
  }
  return scenario;
}

}  // namespace segbus::scen
