#include "scen/generator.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "place/apply.hpp"
#include "place/placer.hpp"
#include "platform/constraints.hpp"
#include "psdf/comm_matrix.hpp"
#include "psdf/validate.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace segbus::scen {

namespace {

/// Clock presets, in MHz. The first group has integer-exact periods that
/// stay exact when halved (100 MHz -> 10000 ps -> 50 MHz -> 20000 ps),
/// which keeps the oracle's clock-scaling invariant applicable; the second
/// group reproduces the paper's experimental frequencies.
constexpr double kClockPresetsMhz[] = {10,   20, 25, 40, 50,  62.5, 100,
                                       125,  200, 250,
                                       89,   91, 98, 111};

/// Name fragments for the "gnarly" naming mode. All fragments are safe in
/// the scheme encoding (underscores allowed; decode splits from the right)
/// but stress the codecs with digits, underscores and case.
constexpr const char* kNamePrefixes[] = {"stage", "fu_2", "Proc", "x_y_z",
                                         "Idct_8"};

std::string process_name(bool gnarly, Xoshiro256& rng, std::uint32_t index) {
  if (!gnarly) return str_format("P%u", index);
  const char* prefix = kNamePrefixes[rng.next_below(std::size(kNamePrefixes))];
  return str_format("%s_%u", prefix, index);
}

/// Splits `n` processes into layers: chain = all width 1, fork/join =
/// 1/(n-2)/1, layered = random widths in [1, max_width].
std::vector<std::uint32_t> layer_widths(Topology topology, std::uint32_t n,
                                        std::uint32_t max_width,
                                        Xoshiro256& rng) {
  std::vector<std::uint32_t> widths;
  switch (topology) {
    case Topology::kChain:
      widths.assign(n, 1);
      break;
    case Topology::kForkJoin:
      widths = {1, n - 2, 1};
      break;
    case Topology::kLayeredDag: {
      std::uint32_t remaining = n;
      while (remaining > 0) {
        std::uint32_t cap = std::min(max_width, remaining);
        // Keep at least one process for a second layer.
        if (widths.empty() && cap == n && n > 1) cap = n - 1;
        auto width =
            static_cast<std::uint32_t>(rng.next_below(cap) + 1);
        widths.push_back(width);
        remaining -= width;
      }
      if (widths.size() < 2) widths.assign(n, 1);
      break;
    }
  }
  return widths;
}

}  // namespace

std::string_view topology_name(Topology topology) noexcept {
  switch (topology) {
    case Topology::kChain: return "chain";
    case Topology::kForkJoin: return "fork-join";
    case Topology::kLayeredDag: return "layered";
  }
  return "unknown";
}

std::string Scenario::describe() const {
  return str_format(
      "seed=%llu %s p=%zu f=%zu seg=%zu pkg=%u %s%s",
      static_cast<unsigned long long>(seed),
      std::string(topology_name(topology)).c_str(),
      application.process_count(), application.flows().size(),
      platform.segment_count(), platform.package_size(),
      timing == emu::TimingModel::reference() ? "ref" : "emu",
      timing.circuit_switched ? "" : " pipelined");
}

Result<Scenario> generate_scenario(std::uint64_t seed,
                                   const GeneratorOptions& options) {
  if (options.min_processes < 2 || options.max_processes < options.min_processes) {
    return invalid_argument_error("generator: need max_processes >= min_processes >= 2");
  }
  if (options.min_segments < 1 || options.max_segments < options.min_segments) {
    return invalid_argument_error("generator: need max_segments >= min_segments >= 1");
  }
  if (options.package_sizes.empty()) {
    return invalid_argument_error("generator: package_sizes must not be empty");
  }
  if (options.min_items < 1 || options.max_items < options.min_items ||
      options.min_compute < 1 || options.max_compute < options.min_compute) {
    return invalid_argument_error("generator: item/compute ranges must be >= 1");
  }

  Scenario scenario;
  scenario.seed = seed;

  // --- shape -------------------------------------------------------------
  Xoshiro256 shape = substream(seed, "topology");
  const auto n = static_cast<std::uint32_t>(shape.next_in(
      options.min_processes, options.max_processes));
  double topology_draw = shape.next_double();
  scenario.topology = topology_draw < 0.3 ? Topology::kChain
                      : topology_draw < 0.5 && n >= 3
                          ? Topology::kForkJoin
                          : Topology::kLayeredDag;
  if (scenario.topology == Topology::kForkJoin && n < 3) {
    scenario.topology = Topology::kChain;
  }

  // --- application -------------------------------------------------------
  Xoshiro256 app_rng = substream(seed, "application");
  const auto package_size = options.package_sizes[app_rng.next_below(
      options.package_sizes.size())];
  psdf::PsdfModel application(
      str_format("scen%llu", static_cast<unsigned long long>(seed)));
  SEGBUS_RETURN_IF_ERROR(application.set_package_size(package_size));

  const bool gnarly =
      app_rng.next_bool(options.gnarly_name_probability);
  std::vector<std::uint32_t> widths =
      layer_widths(scenario.topology, n, options.max_layer_width, app_rng);

  // Process ids per layer, in insertion order.
  std::vector<std::vector<psdf::ProcessId>> layers;
  std::uint32_t index = 0;
  for (std::uint32_t width : widths) {
    layers.emplace_back();
    for (std::uint32_t i = 0; i < width; ++i) {
      SEGBUS_ASSIGN_OR_RETURN(
          psdf::ProcessId id,
          application.add_process(process_name(gnarly, app_rng, index)));
      layers.back().push_back(id);
      ++index;
    }
  }

  auto draw_items = [&] {
    return static_cast<std::uint64_t>(app_rng.next_in(
        static_cast<std::int64_t>(options.min_items),
        static_cast<std::int64_t>(options.max_items)));
  };
  auto draw_compute = [&] {
    return static_cast<std::uint64_t>(app_rng.next_in(
        static_cast<std::int64_t>(options.min_compute),
        static_cast<std::int64_t>(options.max_compute)));
  };

  // Edges between adjacent layers; ordering T = target layer index, which
  // keeps outgoing flows strictly after incoming ones (SB003) and tiers
  // contiguous (SB007).
  std::set<std::pair<psdf::ProcessId, psdf::ProcessId>> edges;
  auto add_edge = [&](psdf::ProcessId src, psdf::ProcessId dst,
                      std::uint32_t tier) -> Status {
    if (!edges.emplace(src, dst).second) return Status::ok();
    return application.add_flow(src, dst, draw_items(), tier, draw_compute());
  };
  for (std::size_t layer = 0; layer + 1 < layers.size(); ++layer) {
    const auto tier = static_cast<std::uint32_t>(layer + 1);
    // Every source gets at least one outgoing edge ...
    for (psdf::ProcessId src : layers[layer]) {
      psdf::ProcessId dst = layers[layer + 1][app_rng.next_below(
          layers[layer + 1].size())];
      SEGBUS_RETURN_IF_ERROR(add_edge(src, dst, tier));
    }
    // ... and every target at least one incoming edge.
    for (psdf::ProcessId dst : layers[layer + 1]) {
      bool covered = false;
      for (psdf::ProcessId src : layers[layer]) {
        if (edges.count({src, dst}) != 0) covered = true;
      }
      if (!covered) {
        psdf::ProcessId src =
            layers[layer][app_rng.next_below(layers[layer].size())];
        SEGBUS_RETURN_IF_ERROR(add_edge(src, dst, tier));
      }
    }
  }
  // Extra forward (possibly layer-skipping) edges for the layered shape.
  if (scenario.topology == Topology::kLayeredDag) {
    for (std::size_t a = 0; a < layers.size(); ++a) {
      for (std::size_t b = a + 1; b < layers.size(); ++b) {
        for (psdf::ProcessId src : layers[a]) {
          for (psdf::ProcessId dst : layers[b]) {
            if (app_rng.next_bool(options.extra_edge_probability)) {
              SEGBUS_RETURN_IF_ERROR(
                  add_edge(src, dst, static_cast<std::uint32_t>(b)));
            }
          }
        }
      }
    }
  }

  // --- platform ----------------------------------------------------------
  Xoshiro256 plat_rng = substream(seed, "platform");
  const auto segments = static_cast<std::uint32_t>(plat_rng.next_in(
      options.min_segments,
      std::min(options.max_segments, n)));
  platform::PlatformModel platform(
      str_format("SBP%llu", static_cast<unsigned long long>(seed)));
  SEGBUS_RETURN_IF_ERROR(platform.set_package_size(package_size));
  auto draw_clock = [&plat_rng] {
    return Frequency::from_mhz(
        kClockPresetsMhz[plat_rng.next_below(std::size(kClockPresetsMhz))]);
  };
  SEGBUS_RETURN_IF_ERROR(platform.set_ca_clock(draw_clock()));
  for (std::uint32_t s = 0; s < segments; ++s) {
    auto added = platform.add_segment(draw_clock());
    if (!added.is_ok()) return added.status();
  }
  SEGBUS_RETURN_IF_ERROR(platform.set_bu_capacity(static_cast<std::uint32_t>(
      plat_rng.next_in(1, options.max_bu_capacity))));

  // --- placement ---------------------------------------------------------
  bool placed = false;
  if (segments > 1 &&
      plat_rng.next_bool(options.annealed_placement_probability)) {
    psdf::CommMatrix matrix = psdf::CommMatrix::from_model(application);
    place::CostModel cost;
    cost.package_size = package_size;
    place::AnnealOptions anneal;
    anneal.seed = derive_seed(seed, "placer");
    anneal.iterations = 2000;
    auto result = place::anneal_place(matrix, segments, cost, anneal);
    if (result.is_ok()) {
      SEGBUS_RETURN_IF_ERROR(
          place::apply_allocation(application, result->allocation, platform));
      placed = true;
    }
  }
  if (!placed) {
    // Uniform random mapping with every segment guaranteed one process:
    // Fisher-Yates shuffle, the first `segments` processes pin one segment
    // each, the rest land uniformly.
    std::vector<psdf::ProcessId> order(n);
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    for (std::uint32_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[plat_rng.next_below(i)]);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto segment = static_cast<platform::SegmentId>(
          i < segments ? i : plat_rng.next_below(segments));
      SEGBUS_RETURN_IF_ERROR(platform.map_process(
          application.process(order[i]).name, segment));
    }
  }

  // --- timing ------------------------------------------------------------
  Xoshiro256 timing_rng = substream(seed, "timing");
  scenario.timing = timing_rng.next_bool(options.reference_timing_probability)
                        ? emu::TimingModel::reference()
                        : emu::TimingModel::emulator();
  if (timing_rng.next_bool(options.pipelined_probability)) {
    scenario.timing.circuit_switched = false;
  }

  scenario.application = std::move(application);
  scenario.platform = std::move(platform);

  // The generator's contract: the scenario passes every structural check.
  ValidationReport app_report = psdf::validate(scenario.application);
  if (!app_report.ok()) {
    return internal_error("generator produced an invalid PSDF (" +
                          scenario.describe() + "): " +
                          app_report.to_string());
  }
  ValidationReport map_report =
      platform::validate_mapping(scenario.platform, scenario.application);
  if (!map_report.ok()) {
    return internal_error("generator produced an invalid mapping (" +
                          scenario.describe() + "): " +
                          map_report.to_string());
  }
  return scenario;
}

}  // namespace segbus::scen
