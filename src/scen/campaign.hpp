// Multithreaded fuzzing campaigns — generate, check, shrink, archive.
//
// A campaign walks scenario indices 0..count-1; the scenario for index i
// is generated from derive_seed(campaign_seed, i), so WHICH scenarios run
// (and which fail) is independent of the worker count — only the wall
// clock changes. Workers pull indices from a shared atomic counter; a
// time budget, a failure cap, or the index range ends the campaign.
//
// Every failure is re-shrunk to a minimal repro (deterministically — the
// shrinker has no random state) and, when a corpus directory is given,
// saved as a <invariant>-s<seed> corpus entry ready for `--replay`.
// Results land in the report: totals, a per-invariant violation breakdown
// mirrored into an obs::MetricsRegistry, and one JSONL line per failure
// plus a final summary line on the optional log stream.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scen/corpus.hpp"
#include "scen/generator.hpp"
#include "scen/oracle.hpp"
#include "scen/shrink.hpp"
#include "support/status.hpp"

namespace segbus::scen {

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::uint64_t count = 1000;
  /// Wall-clock budget in seconds; 0 = unlimited (run all `count`).
  double time_budget_seconds = 0.0;
  /// Worker threads; 0 = hardware concurrency.
  unsigned workers = 1;
  /// Stop after this many failing scenarios (0 = never stop early).
  std::uint64_t max_failures = 8;
  /// Run the costlier parallel-equivalence check on every Nth scenario
  /// (0 = never). Sampled by index, so the choice is worker-independent.
  std::uint64_t parallel_sample_period = 16;
  /// Shrink failures to minimal repros (disable for raw throughput).
  bool shrink = true;
  std::uint32_t shrink_attempts = 400;
  /// When nonempty, shrunken repros are archived here as corpus entries.
  std::string corpus_dir;

  GeneratorOptions generator;
  OracleOptions oracle;

  /// When set, every scenario runs under a force-sampled root span whose
  /// trace id is TraceId::from_seed(scenario seed) — reproducible from
  /// the campaign log alone. A failing scenario's span tree is archived
  /// as <stem>.trace.json next to its corpus entry, and (when the
  /// process-wide flight recorder is enabled) its recent flight events as
  /// <stem>.flightrec.jsonl. Passing scenarios' spans are discarded.
  obs::Tracer* tracer = nullptr;
};

/// One failing scenario, after shrinking.
struct CampaignFailure {
  std::uint64_t index = 0;          ///< campaign index of the scenario
  std::uint64_t scenario_seed = 0;  ///< derive_seed(campaign seed, index)
  Invariant invariant = Invariant::kGeneratorContract;
  std::string detail;               ///< violation detail (post-shrink)
  std::string original;             ///< Scenario::describe() before shrinking
  std::string shrunk;               ///< and after ("" when shrinking failed)
  std::string corpus_stem;          ///< archive stem ("" when not archived)
  std::string trace_id;             ///< seed-derived trace id ("" untraced)
};

struct CampaignReport {
  std::uint64_t scenarios = 0;          ///< scenarios fully checked
  std::uint64_t violations = 0;         ///< total violations (>= failures)
  std::uint64_t invariants_checked = 0;
  std::uint64_t invariants_skipped = 0; ///< precondition not met (see oracle)
  std::array<std::uint64_t, kInvariantCount> by_invariant{};
  std::vector<CampaignFailure> failures;  ///< sorted by index
  double elapsed_seconds = 0.0;
  bool time_budget_hit = false;
  bool failure_cap_hit = false;
  /// Campaign counters as metrics (scen_scenarios_total,
  /// scen_violations_total{invariant=...}, ...) for the obs exporters.
  obs::MetricsRegistry metrics;

  bool passed() const noexcept { return failures.empty(); }
};

/// Runs the campaign. `log`, when given, receives one JSON line per
/// failure and a final summary line (the JSONL campaign log).
Result<CampaignReport> run_campaign(const CampaignOptions& options,
                                    std::ostream* log = nullptr);

}  // namespace segbus::scen
