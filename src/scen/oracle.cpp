#include "scen/oracle.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/bounds.hpp"
#include "core/fingerprint.hpp"
#include "core/session.hpp"
#include "platform/platform_xml.hpp"
#include "psdf/modes.hpp"
#include "psdf/psdf_xml.hpp"
#include "stoch/multimode.hpp"
#include "stoch/workload.hpp"
#include "support/strings.hpp"
#include "xml/writer.hpp"

namespace segbus::scen {

namespace {

/// Compares the figures two runs of the *same* scheme must agree on
/// bit-for-bit. Returns an empty string when equal, else the first
/// difference found.
std::string diff_results(const emu::EmulationResult& a,
                         const emu::EmulationResult& b) {
  if (a.total_execution_time != b.total_execution_time) {
    return str_format("total %lld != %lld",
                      static_cast<long long>(a.total_execution_time.count()),
                      static_cast<long long>(b.total_execution_time.count()));
  }
  if (a.last_delivery_time != b.last_delivery_time) {
    return "last_delivery_time differs";
  }
  if (a.completed != b.completed) return "completed flag differs";
  if (a.ca.tct != b.ca.tct || a.ca.grants != b.ca.grants ||
      a.ca.inter_requests != b.ca.inter_requests ||
      a.ca.busy_ticks != b.ca.busy_ticks) {
    return "CA counters differ";
  }
  if (a.sas.size() != b.sas.size()) return "segment count differs";
  for (std::size_t i = 0; i < a.sas.size(); ++i) {
    if (a.sas[i].tct != b.sas[i].tct ||
        a.sas[i].busy_ticks != b.sas[i].busy_ticks ||
        a.sas[i].intra_requests != b.sas[i].intra_requests ||
        a.sas[i].inter_requests != b.sas[i].inter_requests) {
      return str_format("SA%zu counters differ", i + 1);
    }
  }
  if (a.bus.size() != b.bus.size()) return "BU count differs";
  for (std::size_t i = 0; i < a.bus.size(); ++i) {
    if (a.bus[i].transfers != b.bus[i].transfers ||
        a.bus[i].tct != b.bus[i].tct || a.bus[i].wp_ticks != b.bus[i].wp_ticks ||
        a.bus[i].up_ticks != b.bus[i].up_ticks) {
      return str_format("BU#%zu counters differ", i);
    }
  }
  if (a.flows.size() != b.flows.size()) return "flow count differs";
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    const emu::FlowStats& fa = a.flows[i];
    const emu::FlowStats& fb = b.flows[i];
    if (fa.packages != fb.packages || fa.first_delivery != fb.first_delivery ||
        fa.last_delivery != fb.last_delivery ||
        fa.min_latency_ps != fb.min_latency_ps ||
        fa.max_latency_ps != fb.max_latency_ps ||
        fa.total_latency_ps != fb.total_latency_ps) {
      return str_format("flow #%zu stats differ", i);
    }
  }
  if (a.processes.size() != b.processes.size()) return "process count differs";
  for (std::size_t i = 0; i < a.processes.size(); ++i) {
    const emu::ProcessStats& pa = a.processes[i];
    const emu::ProcessStats& pb = b.processes[i];
    if (pa.packages_sent != pb.packages_sent ||
        pa.packages_received != pb.packages_received ||
        pa.start_time != pb.start_time || pa.end_time != pb.end_time ||
        pa.flag_time != pb.flag_time) {
      return str_format("process #%zu stats differ", i);
    }
  }
  return {};
}

/// A consistently renamed twin with permuted flow insertion order. The
/// canonical fingerprint must not see the difference, and neither may the
/// engine (it schedules flows by (T, source, target), not insertion order).
Result<Scenario> relabeled_variant(const Scenario& scenario) {
  const psdf::PsdfModel& app = scenario.application;
  std::vector<std::string> new_names(app.process_count());
  for (std::size_t i = 0; i < app.process_count(); ++i) {
    new_names[i] = str_format("W%zu_v", i);
  }

  psdf::PsdfModel renamed(app.name() + "_relabel");
  SEGBUS_RETURN_IF_ERROR(renamed.set_package_size(app.package_size()));
  for (std::size_t i = 0; i < app.process_count(); ++i) {
    auto added = renamed.add_process(new_names[i]);
    if (!added.is_ok()) return added.status();
  }
  // Reverse the flow insertion order — the scheduled order is unaffected.
  const std::vector<psdf::Flow>& flows = app.flows();
  for (auto it = flows.rbegin(); it != flows.rend(); ++it) {
    SEGBUS_RETURN_IF_ERROR(renamed.add_flow(it->source, it->target,
                                            it->data_items, it->ordering,
                                            it->compute_ticks));
  }

  const platform::PlatformModel& psm = scenario.platform;
  platform::PlatformModel replat(psm.name() + "_relabel");
  SEGBUS_RETURN_IF_ERROR(replat.set_package_size(psm.package_size()));
  SEGBUS_RETURN_IF_ERROR(replat.set_ca_clock(psm.ca_clock()));
  for (const platform::Segment& segment : psm.segments()) {
    auto added = replat.add_segment(segment.clock);
    if (!added.is_ok()) return added.status();
  }
  for (platform::SegmentId s = 0; s < psm.segment_count(); ++s) {
    for (const platform::FunctionalUnit& fu : psm.segment(s).fus) {
      auto id = app.find_process(fu.process);
      if (!id) {
        return internal_error("relabel: FU process '" + fu.process +
                              "' not in the application");
      }
      SEGBUS_RETURN_IF_ERROR(replat.map_process(new_names[*id], s, fu.masters,
                                                fu.slaves));
    }
  }
  if (!psm.border_units().empty()) {
    SEGBUS_RETURN_IF_ERROR(replat.set_bu_capacity(
        psm.border_units().front().capacity_packages));
  }

  Scenario variant;
  variant.seed = scenario.seed;
  variant.topology = scenario.topology;
  variant.application = std::move(renamed);
  variant.platform = std::move(replat);
  variant.timing = scenario.timing;
  return variant;
}

/// The platform with every clock halved, when all integer-picosecond
/// periods double exactly under the truncation; nullopt otherwise.
std::optional<platform::PlatformModel> halved_platform(
    const platform::PlatformModel& psm) {
  auto halved = [](Frequency f) { return Frequency::from_khz(f.khz() / 2.0); };
  if (halved(psm.ca_clock()).period_ps() != 2 * psm.ca_clock().period_ps()) {
    return std::nullopt;
  }
  for (const platform::Segment& segment : psm.segments()) {
    if (halved(segment.clock).period_ps() != 2 * segment.clock.period_ps()) {
      return std::nullopt;
    }
  }
  platform::PlatformModel slow(psm.name() + "_half");
  if (!slow.set_package_size(psm.package_size()).is_ok()) return std::nullopt;
  if (!slow.set_ca_clock(halved(psm.ca_clock())).is_ok()) return std::nullopt;
  for (platform::SegmentId s = 0; s < psm.segment_count(); ++s) {
    const platform::Segment& segment = psm.segment(s);
    if (!slow.add_segment(halved(segment.clock)).is_ok()) return std::nullopt;
    for (const platform::FunctionalUnit& fu : segment.fus) {
      if (!slow.map_process(fu.process, s, fu.masters, fu.slaves).is_ok()) {
        return std::nullopt;
      }
    }
  }
  if (!psm.border_units().empty()) {
    if (!slow.set_bu_capacity(psm.border_units().front().capacity_packages)
             .is_ok()) {
      return std::nullopt;
    }
  }
  return slow;
}

void check_conservation(const Scenario& scenario,
                        const emu::EmulationResult& result,
                        std::vector<Violation>& violations) {
  auto violate = [&](std::string detail) {
    violations.push_back({Invariant::kConservation, std::move(detail)});
  };
  const psdf::PsdfModel& app = scenario.application;
  const platform::PlatformModel& psm = scenario.platform;
  const std::uint32_t package = psm.package_size();

  // Per flow: exactly ceil(D/s) packages delivered, in schedule order.
  std::vector<psdf::Flow> scheduled = app.scheduled_flows();
  if (result.flows.size() != scheduled.size()) {
    violate(str_format("flow stats count %zu != scheduled flows %zu",
                       result.flows.size(), scheduled.size()));
    return;
  }
  std::vector<std::uint64_t> sent_by(app.process_count(), 0);
  std::vector<std::uint64_t> received_by(app.process_count(), 0);
  for (std::size_t i = 0; i < scheduled.size(); ++i) {
    const std::uint64_t expected =
        psdf::packages_for(scheduled[i].data_items, package);
    if (result.flows[i].packages != expected) {
      violate(str_format("flow #%zu delivered %llu packages, expected %llu",
                         i,
                         static_cast<unsigned long long>(
                             result.flows[i].packages),
                         static_cast<unsigned long long>(expected)));
    }
    sent_by[scheduled[i].source] += expected;
    received_by[scheduled[i].target] += expected;
  }

  // Per process: sent/received sums match the schedule.
  if (result.processes.size() != app.process_count()) {
    violate("process stats count mismatch");
    return;
  }
  for (std::size_t p = 0; p < app.process_count(); ++p) {
    if (result.processes[p].packages_sent != sent_by[p] ||
        result.processes[p].packages_received != received_by[p]) {
      violate(str_format(
          "process %s sent/received %llu/%llu, schedule says %llu/%llu",
          result.processes[p].name.c_str(),
          static_cast<unsigned long long>(result.processes[p].packages_sent),
          static_cast<unsigned long long>(
              result.processes[p].packages_received),
          static_cast<unsigned long long>(sent_by[p]),
          static_cast<unsigned long long>(received_by[p])));
    }
  }

  // Per Border Unit side: expected crossings from the linear paths.
  std::vector<std::uint64_t> from_left(psm.border_units().size(), 0);
  std::vector<std::uint64_t> from_right(psm.border_units().size(), 0);
  for (const psdf::Flow& flow : scheduled) {
    auto src = psm.segment_of(app.process(flow.source).name);
    auto dst = psm.segment_of(app.process(flow.target).name);
    if (!src || !dst) {
      violate("flow endpoint unmapped in conservation check");
      return;
    }
    if (*src == *dst) continue;
    auto path = psm.path(*src, *dst);
    if (!path.is_ok()) {
      violate("no path between segments: " + path.status().message());
      return;
    }
    const std::uint64_t packages = psdf::packages_for(flow.data_items, package);
    for (const platform::PathHop& hop : *path) {
      if (!hop.exit_bu) continue;
      if (*src < *dst) {
        from_left[*hop.exit_bu] += packages;
      } else {
        from_right[*hop.exit_bu] += packages;
      }
    }
  }
  if (result.bus.size() != psm.border_units().size()) {
    violate("BU stats count mismatch");
    return;
  }
  for (std::size_t b = 0; b < result.bus.size(); ++b) {
    const emu::BuStats& bu = result.bus[b];
    if (bu.received_from_left != from_left[b] ||
        bu.received_from_right != from_right[b]) {
      violate(str_format(
          "BU#%zu received %llu/%llu (L/R), paths require %llu/%llu", b,
          static_cast<unsigned long long>(bu.received_from_left),
          static_cast<unsigned long long>(bu.received_from_right),
          static_cast<unsigned long long>(from_left[b]),
          static_cast<unsigned long long>(from_right[b])));
    }
    // Everything loaded on one side must have unloaded on the other.
    if (bu.transferred_to_right != bu.received_from_left ||
        bu.transferred_to_left != bu.received_from_right) {
      violate(str_format("BU#%zu holds packages at end of run (in %llu/%llu, "
                         "out %llu/%llu)",
                         b,
                         static_cast<unsigned long long>(bu.received_from_left),
                         static_cast<unsigned long long>(
                             bu.received_from_right),
                         static_cast<unsigned long long>(
                             bu.transferred_to_right),
                         static_cast<unsigned long long>(
                             bu.transferred_to_left)));
    }
    if (bu.transfers != bu.total_input()) {
      violate(str_format("BU#%zu transfers %llu != input %llu", b,
                         static_cast<unsigned long long>(bu.transfers),
                         static_cast<unsigned long long>(bu.total_input())));
    }
  }

  // Internal consistency of the timing figures.
  for (std::size_t s = 0; s < result.sas.size(); ++s) {
    if (result.sas[s].busy_ticks > result.sas[s].tct) {
      violate(str_format("SA%zu busy %llu > tct %llu", s + 1,
                         static_cast<unsigned long long>(
                             result.sas[s].busy_ticks),
                         static_cast<unsigned long long>(result.sas[s].tct)));
    }
  }
  if (result.ca.busy_ticks > result.ca.tct) {
    violate("CA busy ticks exceed its TCT");
  }
  if (result.last_delivery_time > result.total_execution_time) {
    violate(str_format(
        "last delivery %lld ps after total execution time %lld ps",
        static_cast<long long>(result.last_delivery_time.count()),
        static_cast<long long>(result.total_execution_time.count())));
  }
  for (std::size_t i = 0; i < result.stages.size(); ++i) {
    const emu::StageStats& stage = result.stages[i];
    if (stage.close_time < stage.open_time) {
      violate(str_format("stage T=%u closes before it opens", stage.ordering));
    }
    if (i > 0 && result.stages[i - 1].ordering >= stage.ordering) {
      violate("stage orderings out of order");
    }
  }
}

/// Serializes both models to their XML schemes and binds a session from the
/// parsed-back text — the same path the tools and the service take.
Result<core::EmulationSession> session_via_xml(const Scenario& scenario,
                                               const core::SessionConfig& config) {
  std::string psdf_xml = xml::write_document(psdf::to_xml(scenario.application));
  std::string psm_xml =
      xml::write_document(platform::to_xml(scenario.platform));
  return core::EmulationSession::from_xml_strings(psdf_xml, psm_xml, config);
}

}  // namespace

std::string_view invariant_name(Invariant invariant) noexcept {
  switch (invariant) {
    case Invariant::kGeneratorContract: return "generator-contract";
    case Invariant::kCompletion: return "completion";
    case Invariant::kBoundsBracket: return "bounds-bracket";
    case Invariant::kConservation: return "conservation";
    case Invariant::kFingerprintEquivalence: return "fingerprint-equivalence";
    case Invariant::kClockScaling: return "clock-scaling";
    case Invariant::kParallelEquivalence: return "parallel-equivalence";
    case Invariant::kFastEquivalence: return "fast-equivalence";
    case Invariant::kBoundsDominance: return "bounds-dominance";
    case Invariant::kStochDegenerate: return "stoch-degenerate";
    case Invariant::kModeChaining: return "mode-chaining";
    case Invariant::kReplicationBounds: return "replication-bounds";
  }
  return "unknown";
}

Result<OracleOutcome> run_oracle(const Scenario& scenario,
                                 const OracleOptions& options) {
  OracleOutcome outcome;
  auto violate = [&](Invariant invariant, std::string detail) {
    outcome.violations.push_back({invariant, std::move(detail)});
  };
  // Per-invariant child spans under the campaign's scenario span. The
  // no-op Span default keeps every check branch-free when untraced.
  auto span_for = [&options](const char* name) {
    return options.tracer != nullptr
               ? options.tracer->start_span(name, options.parent)
               : obs::Span();
  };

  core::SessionConfig config;
  config.timing = scenario.timing;
  config.backend = options.backend;

  obs::Span bind_span = span_for("oracle:bind");
  auto session = core::EmulationSession::from_models(scenario.application,
                                                     scenario.platform, config);
  ++outcome.invariants_checked;  // generator contract
  if (!session.is_ok()) {
    violate(Invariant::kGeneratorContract, session.status().to_string());
    return outcome;
  }
  if (auto digest = core::scheme_digest(scenario.application,
                                        scenario.platform, config);
      digest.is_ok()) {
    outcome.digest = *digest;
  } else {
    violate(Invariant::kGeneratorContract,
            "fingerprint failed: " + digest.status().to_string());
    return outcome;
  }
  bind_span.end();

  obs::Span run_span = span_for("oracle:base-run");
  auto result = session->emulate();
  run_span.end();
  ++outcome.invariants_checked;  // completion
  if (!result.is_ok()) {
    violate(Invariant::kCompletion, result.status().to_string());
    return outcome;
  }
  if (!result->completed) {
    violate(Invariant::kCompletion, "run hit the engine tick limit");
    return outcome;
  }
  outcome.total = result->total_execution_time;

  // Bounds-bracket and bounds-dominance share one static analysis.
  std::optional<analysis::StaticBounds> bounds;
  if (options.check_bounds || options.check_dominance) {
    auto computed = analysis::compute_static_bounds(
        scenario.application, scenario.platform, scenario.timing);
    if (computed.is_ok()) {
      bounds = std::move(*computed);
    } else if (options.check_bounds) {
      ++outcome.invariants_checked;
      violate(Invariant::kBoundsBracket,
              "bounds computation failed: " + computed.status().to_string());
    } else {
      ++outcome.invariants_checked;
      violate(Invariant::kBoundsDominance,
              "bounds computation failed: " + computed.status().to_string());
    }
  }
  // Returns the first broken link of the v1 >= v2 >= TCT nesting chain,
  // or an empty string when lower_v1 <= lower <= t <= upper <= upper_v1.
  auto dominance_breach = [&bounds](Picoseconds t) -> std::string {
    const auto chain = {bounds->lower_v1, bounds->lower, t, bounds->upper,
                        bounds->upper_v1};
    const char* names[] = {"lower_v1", "lower_v2", "emulated", "upper_v2",
                           "upper_v1"};
    std::size_t i = 0;
    Picoseconds prev{0};
    for (Picoseconds link : chain) {
      if (i > 0 && link < prev) {
        return str_format("%s %lld ps < %s %lld ps", names[i],
                          static_cast<long long>(link.count()), names[i - 1],
                          static_cast<long long>(prev.count()));
      }
      prev = link;
      ++i;
    }
    return {};
  };

  if (options.check_bounds && bounds) {
    ++outcome.invariants_checked;
    obs::Span span = span_for("oracle:bounds-bracket");
    if (!bounds->brackets(result->total_execution_time)) {
      violate(Invariant::kBoundsBracket,
              str_format("emulated %lld ps outside [%lld, %lld]",
                         static_cast<long long>(
                             result->total_execution_time.count()),
                         static_cast<long long>(bounds->lower.count()),
                         static_cast<long long>(bounds->upper.count())));
    }
  }

  if (options.check_dominance && bounds) {
    ++outcome.invariants_checked;
    obs::Span span = span_for("oracle:bounds-dominance");
    if (std::string breach = dominance_breach(result->total_execution_time);
        !breach.empty()) {
      violate(Invariant::kBoundsDominance, breach);
    }
  }

  if (options.check_conservation) {
    ++outcome.invariants_checked;
    obs::Span span = span_for("oracle:conservation");
    check_conservation(scenario, *result, outcome.violations);
  }

  if (options.check_fingerprint) {
    ++outcome.invariants_checked;
    obs::Span span = span_for("oracle:fingerprint-equivalence");
    auto variant = relabeled_variant(scenario);
    if (!variant.is_ok()) {
      violate(Invariant::kFingerprintEquivalence,
              "relabel failed: " + variant.status().to_string());
    } else {
      auto twin = session_via_xml(*variant, config);
      if (!twin.is_ok()) {
        violate(Invariant::kFingerprintEquivalence,
                "relabeled scheme failed to bind: " +
                    twin.status().to_string());
      } else {
        auto twin_digest = core::scheme_digest(twin->application(),
                                               twin->platform(), config);
        if (!twin_digest.is_ok() || *twin_digest != outcome.digest) {
          violate(Invariant::kFingerprintEquivalence,
                  "digest changed under relabel/round-trip");
        }
        auto twin_result = twin->emulate();
        if (!twin_result.is_ok()) {
          violate(Invariant::kFingerprintEquivalence,
                  "relabeled run failed: " + twin_result.status().to_string());
        } else if (std::string diff = diff_results(*result, *twin_result);
                   !diff.empty()) {
          violate(Invariant::kFingerprintEquivalence,
                  "relabeled run diverged: " + diff);
        }
      }
    }
  }

  if (options.check_clock_scaling) {
    std::optional<platform::PlatformModel> slow =
        halved_platform(scenario.platform);
    if (!slow) {
      ++outcome.invariants_skipped;
    } else {
      ++outcome.invariants_checked;
      obs::Span span = span_for("oracle:clock-scaling");
      auto slow_session = core::EmulationSession::from_models(
          scenario.application, *slow, config);
      if (!slow_session.is_ok()) {
        violate(Invariant::kClockScaling,
                "halved platform failed to bind: " +
                    slow_session.status().to_string());
      } else {
        auto slow_result = slow_session->emulate();
        if (!slow_result.is_ok() || !slow_result->completed) {
          violate(Invariant::kClockScaling, "halved run failed to complete");
        } else {
          if (slow_result->total_execution_time !=
              2 * result->total_execution_time) {
            violate(Invariant::kClockScaling,
                    str_format("half-speed total %lld ps != 2 x %lld ps",
                               static_cast<long long>(
                                   slow_result->total_execution_time.count()),
                               static_cast<long long>(
                                   result->total_execution_time.count())));
          }
          if (slow_result->ca.tct != result->ca.tct) {
            violate(Invariant::kClockScaling,
                    "CA tick count changed under uniform clock scaling");
          }
          for (std::size_t s = 0; s < result->sas.size(); ++s) {
            if (slow_result->sas[s].tct != result->sas[s].tct) {
              violate(Invariant::kClockScaling,
                      str_format("SA%zu tick count changed under scaling",
                                 s + 1));
              break;
            }
          }
        }
      }
    }
  }

  if (options.check_parallel) {
    ++outcome.invariants_checked;
    obs::Span span = span_for("oracle:parallel-equivalence");
    core::SessionConfig parallel_config = config;
    parallel_config.backend.backend = emu::EngineBackend::kParallel;
    parallel_config.backend.parallel_threads = options.parallel_threads;
    auto parallel_session = core::EmulationSession::from_models(
        scenario.application, scenario.platform, parallel_config);
    if (!parallel_session.is_ok()) {
      violate(Invariant::kParallelEquivalence,
              "parallel session failed to bind: " +
                  parallel_session.status().to_string());
    } else {
      auto parallel_result = parallel_session->emulate();
      if (!parallel_result.is_ok()) {
        violate(Invariant::kParallelEquivalence,
                "parallel run failed: " + parallel_result.status().to_string());
      } else if (std::string diff = diff_results(*result, *parallel_result);
                 !diff.empty()) {
        violate(Invariant::kParallelEquivalence,
                "parallel engine diverged: " + diff);
      }
    }
  }

  if (options.check_fast) {
    ++outcome.invariants_checked;
    obs::Span span = span_for("oracle:fast-equivalence");
    // Compare against whichever of {reference, fast} the base run did not
    // use, so the invariant stays fast-vs-reference regardless of the
    // campaign's --engine choice.
    core::SessionConfig fast_config = config;
    fast_config.backend = {};
    fast_config.backend.backend =
        config.backend.backend == emu::EngineBackend::kFast
            ? emu::EngineBackend::kReference
            : emu::EngineBackend::kFast;
    auto fast_session = core::EmulationSession::from_models(
        scenario.application, scenario.platform, fast_config);
    if (!fast_session.is_ok()) {
      violate(Invariant::kFastEquivalence,
              "fast-equivalence session failed to bind: " +
                  fast_session.status().to_string());
    } else {
      auto fast_result = fast_session->emulate();
      if (!fast_result.is_ok()) {
        violate(Invariant::kFastEquivalence,
                "fast-equivalence run failed: " +
                    fast_result.status().to_string());
      } else if (std::string diff = diff_results(*result, *fast_result);
                 !diff.empty()) {
        violate(Invariant::kFastEquivalence, "fast engine diverged: " + diff);
      } else if (options.check_dominance && bounds) {
        // The nesting chain must also hold on the cross-engine figure —
        // a joint breach of both engines would slip past the base check
        // only if equivalence were violated too, but a breach here with a
        // clean base run pins the divergence on the other backend.
        if (std::string breach =
                dominance_breach(fast_result->total_execution_time);
            !breach.empty()) {
          violate(Invariant::kBoundsDominance,
                  "cross-engine run: " + breach);
        }
      }
    }
  }

  if (options.check_stoch_degenerate) {
    ++outcome.invariants_checked;
    obs::Span span = span_for("oracle:stoch-degenerate");
    // The identity spec still walks the whole realization path (derive the
    // replication substream, draw per flow, apply the scale) — only the
    // final scale application must collapse to a no-op.
    stoch::StochasticSpec identity;
    auto realized =
        stoch::realize(scenario.application, identity, scenario.seed, 0);
    if (!realized.is_ok()) {
      violate(Invariant::kStochDegenerate,
              "identity realization failed: " + realized.status().to_string());
    } else {
      auto degenerate_session = core::EmulationSession::from_models(
          *realized, scenario.platform, config);
      if (!degenerate_session.is_ok()) {
        violate(Invariant::kStochDegenerate,
                "realized model failed to bind: " +
                    degenerate_session.status().to_string());
      } else {
        auto degenerate_result = degenerate_session->emulate();
        if (!degenerate_result.is_ok()) {
          violate(Invariant::kStochDegenerate,
                  "realized run failed: " +
                      degenerate_result.status().to_string());
        } else if (std::string diff = diff_results(*result, *degenerate_result);
                   !diff.empty()) {
          violate(Invariant::kStochDegenerate,
                  "identity realization diverged: " + diff);
        }
      }
    }
  }

  if (options.check_mode_chaining) {
    ++outcome.invariants_checked;
    obs::Span span = span_for("oracle:mode-chaining");
    // An identity mode table: one mode selecting every flow, no overrides,
    // zero transition delay. Chaining it twice must behave exactly like
    // two back-to-back static runs.
    psdf::ModeTable identity_table;
    identity_table.set_control_process(scenario.application.process(0).name);
    psdf::Mode all;
    all.name = "all";
    for (std::size_t f = 0; f < scenario.application.flows().size(); ++f) {
      all.flow_indices.push_back(f);
    }
    auto added = identity_table.add_mode(std::move(all));
    if (!added.is_ok()) {
      violate(Invariant::kModeChaining,
              "identity table rejected: " + added.status().to_string());
    } else {
      auto chained = stoch::run_multimode(scenario.application,
                                          scenario.platform, identity_table,
                                          {0, 0}, config);
      if (!chained.is_ok()) {
        violate(Invariant::kModeChaining,
                "identity schedule failed: " + chained.status().to_string());
      } else if (!chained->completed) {
        violate(Invariant::kModeChaining,
                "identity schedule hit the tick limit");
      } else {
        for (const stoch::ModeRun& run : chained->runs) {
          if (run.execution_time != result->total_execution_time) {
            violate(Invariant::kModeChaining,
                    str_format("identity mode TCT %lld ps != static %lld ps",
                               static_cast<long long>(
                                   run.execution_time.count()),
                               static_cast<long long>(
                                   result->total_execution_time.count())));
            break;
          }
        }
        if (chained->total_time != 2 * result->total_execution_time) {
          violate(Invariant::kModeChaining,
                  str_format("identity schedule total %lld ps != 2 x %lld ps",
                             static_cast<long long>(
                                 chained->total_time.count()),
                             static_cast<long long>(
                                 result->total_execution_time.count())));
        }
      }
    }
    // Scenarios carrying a real mode table: the schedule's per-mode TCTs
    // must be engine-independent (the backends are bit-identical, so the
    // chained totals are too).
    if (scenario.has_modes && !scenario.mode_schedule.empty()) {
      auto base = stoch::run_multimode(scenario.application, scenario.platform,
                                       scenario.modes, scenario.mode_schedule,
                                       config);
      core::SessionConfig cross_config = config;
      cross_config.backend = {};
      cross_config.backend.backend =
          config.backend.backend == emu::EngineBackend::kFast
              ? emu::EngineBackend::kReference
              : emu::EngineBackend::kFast;
      auto cross = stoch::run_multimode(scenario.application,
                                        scenario.platform, scenario.modes,
                                        scenario.mode_schedule, cross_config);
      if (!base.is_ok() || !cross.is_ok()) {
        violate(Invariant::kModeChaining,
                "scenario mode schedule failed: " +
                    (base.is_ok() ? cross.status() : base.status())
                        .to_string());
      } else {
        if (base->total_time != cross->total_time ||
            base->completed != cross->completed) {
          violate(Invariant::kModeChaining,
                  str_format("mode schedule total %lld ps != cross-engine "
                             "%lld ps",
                             static_cast<long long>(base->total_time.count()),
                             static_cast<long long>(
                                 cross->total_time.count())));
        }
        for (std::size_t i = 0; i < base->runs.size(); ++i) {
          if (base->runs[i].execution_time != cross->runs[i].execution_time) {
            violate(Invariant::kModeChaining,
                    str_format("mode schedule entry %zu diverged across "
                               "engines", i));
            break;
          }
        }
      }
    }
  }

  if (options.check_replication_bounds) {
    if (scenario.stochastic.is_identity() ||
        options.replication_samples == 0) {
      ++outcome.invariants_skipped;
    } else {
      ++outcome.invariants_checked;
      obs::Span span = span_for("oracle:replication-bounds");
      for (std::uint32_t rep = 0; rep < options.replication_samples; ++rep) {
        auto realized = stoch::realize(scenario.application,
                                       scenario.stochastic, scenario.seed,
                                       rep);
        if (!realized.is_ok()) {
          violate(Invariant::kReplicationBounds,
                  str_format("replication %u failed to realize: ", rep) +
                      realized.status().to_string());
          break;
        }
        auto rep_session = core::EmulationSession::from_models(
            *realized, scenario.platform, config);
        if (!rep_session.is_ok()) {
          violate(Invariant::kReplicationBounds,
                  str_format("replication %u failed to bind: ", rep) +
                      rep_session.status().to_string());
          break;
        }
        auto rep_result = rep_session->emulate();
        if (!rep_result.is_ok() || !rep_result->completed) {
          violate(Invariant::kReplicationBounds,
                  str_format("replication %u failed to complete", rep));
          break;
        }
        auto rep_bounds = analysis::compute_static_bounds(
            *realized, scenario.platform, scenario.timing);
        if (!rep_bounds.is_ok()) {
          violate(Invariant::kReplicationBounds,
                  str_format("replication %u bounds failed: ", rep) +
                      rep_bounds.status().to_string());
          break;
        }
        if (!rep_bounds->brackets(rep_result->total_execution_time)) {
          violate(Invariant::kReplicationBounds,
                  str_format("replication %u emulated %lld ps outside "
                             "[%lld, %lld]",
                             rep,
                             static_cast<long long>(
                                 rep_result->total_execution_time.count()),
                             static_cast<long long>(rep_bounds->lower.count()),
                             static_cast<long long>(
                                 rep_bounds->upper.count())));
        }
      }
    }
  }

  return outcome;
}

}  // namespace segbus::scen
