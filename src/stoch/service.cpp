#include "stoch/service.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/fingerprint.hpp"
#include "platform/platform_xml.hpp"
#include "psdf/modes.hpp"
#include "psdf/psdf_xml.hpp"
#include "stoch/estimator.hpp"
#include "xml/parser.hpp"

namespace segbus::stoch {

namespace {

Result<service::JobResponse> run_estimate_request(
    const service::JobRequest& request, service::JobServer& server,
    obs::Span& span) {
  SEGBUS_ASSIGN_OR_RETURN(xml::Document psdf_doc,
                          xml::parse_document(request.psdf_xml));
  SEGBUS_ASSIGN_OR_RETURN(psdf::PsdfModel application,
                          psdf::from_xml(psdf_doc));
  SEGBUS_ASSIGN_OR_RETURN(xml::Document psm_doc,
                          xml::parse_document(request.psm_xml));
  SEGBUS_ASSIGN_OR_RETURN(platform::PlatformModel platform,
                          platform::from_xml(psm_doc));
  if (request.package_size != 0) {
    SEGBUS_RETURN_IF_ERROR(application.set_package_size(request.package_size));
    SEGBUS_RETURN_IF_ERROR(platform.set_package_size(request.package_size));
  }

  const service::EstimateParams& params = request.estimate;
  EstimatorOptions options;
  SEGBUS_ASSIGN_OR_RETURN(options.spec.compute_scale,
                          Distribution::parse(params.compute));
  SEGBUS_ASSIGN_OR_RETURN(options.spec.items_scale,
                          Distribution::parse(params.items));
  options.seed = params.seed;
  options.min_replications = params.min_replications;
  options.max_replications = params.max_replications;
  options.round_replications = params.round_replications;
  options.confidence = params.confidence;
  options.target_relative_half_width = params.target_relative_half_width;
  options.reference_timing = request.reference_timing;
  options.engine = request.engine;
  // Mirror submit semantics: a request may lower the tick budget, never
  // raise it past the serving configuration.
  options.max_ticks = server.config().max_ticks;
  if (request.max_ticks != 0) {
    options.max_ticks = std::min(options.max_ticks, request.max_ticks);
  }

  psdf::ModeTable mode_table;
  if (!params.modes_xml.empty()) {
    SEGBUS_ASSIGN_OR_RETURN(mode_table,
                            psdf::modes_from_xml(params.modes_xml));
    options.mode_table = &mode_table;
    options.mode_schedule = mode_table.generate_schedule(
        params.seed, std::max<std::uint32_t>(1, params.schedule_length));
  }

  // Replications fan out through an inner server sized from the serving
  // pool (see the header comment for why not the serving pool itself).
  service::ServerConfig inner_config;
  inner_config.workers = std::max(1u, server.config().workers);
  inner_config.queue_depth =
      std::max<std::size_t>(server.config().queue_depth,
                            options.max_replications);
  inner_config.max_ticks = server.config().max_ticks;
  inner_config.default_backend = server.config().default_backend;
  service::JobServer inner(inner_config);

  obs::Span run_span = span.child("estimate/run");
  Estimator estimator(inner);
  SEGBUS_ASSIGN_OR_RETURN(Estimate estimate,
                          estimator.run(application, platform, options));
  run_span.set_attribute(
      "replications",
      static_cast<std::uint64_t>(estimate.replications.size()));
  run_span.set_attribute("unique_runs", estimate.unique_runs);

  server.count_estimate("emulated", estimate.unique_runs);
  server.count_estimate("deduplicated",
                        estimate.replications.size() - estimate.unique_runs);

  service::JobResponse response;
  response.id = request.id;
  response.ok = true;
  response.report_json = estimate.to_json().to_string();
  response.execution_time = Picoseconds(
      static_cast<std::int64_t>(std::llround(estimate.mean_ps)));
  // Fingerprint the *base* scheme so a degenerate estimate and a plain
  // submit of the same scheme answer the same digest.
  core::SessionConfig digest_config;
  digest_config.timing = request.reference_timing
                             ? emu::TimingModel::reference()
                             : emu::TimingModel::emulator();
  // Same tick-budget resolution as run_submit, so the digests line up.
  digest_config.engine.max_ticks_per_domain =
      request.max_ticks != 0
          ? std::min(request.max_ticks, server.config().max_ticks)
          : server.config().max_ticks;
  if (Result<std::string> digest =
          core::scheme_digest(application, platform, digest_config);
      digest.is_ok()) {
    response.digest = std::move(digest).value();
  }
  return response;
}

}  // namespace

service::JobResponse service_estimate_handler(
    const service::JobRequest& request, service::JobServer& server,
    obs::Span& span) {
  Result<service::JobResponse> result =
      run_estimate_request(request, server, span);
  if (result.is_ok()) return std::move(result).value();
  const Status& status = result.status();
  const std::string code =
      status.code() == StatusCode::kInvalidArgument ||
              status.code() == StatusCode::kParseError ||
              status.code() == StatusCode::kValidationError
          ? "validation"
          : "internal";
  return service::JobResponse::failure(request.id, code,
                                       std::string(status.message()));
}

}  // namespace segbus::stoch
