// The `"estimate"` wire-request handler.
//
// Like guided search, the replicated-run estimator fans jobs *through* a
// service::JobServer, so the service layer cannot link against src/stoch
// without a cycle; ServerConfig carries an estimate_handler hook and
// embedding binaries (tools/service_common.hpp) install this function.
// The handler runs on the serving worker thread and spins up its own
// inner JobServer for the replication fan-out (sized from the serving
// config) — submitting back into the serving pool from one of its own
// workers could deadlock it. Replication outcomes are reported into the
// serving server's segbus_estimate_replications_total counters.
#pragma once

#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace segbus::stoch {

/// Runs the replicated estimation described by `request.estimate` and
/// answers with the deterministic estimate report JSON; `execution_time`
/// carries the rounded mean and `digest` fingerprints the base scheme.
/// Install as ServerConfig::estimate_handler.
service::JobResponse service_estimate_handler(
    const service::JobRequest& request, service::JobServer& server,
    obs::Span& span);

}  // namespace segbus::stoch
