// Seeded timing distributions for stochastic workloads — ROADMAP item 4b.
//
// A Distribution describes a multiplicative scale factor drawn per flow:
// realized C_f = max(1, round(C_f * draw)) and likewise for item counts
// (see stoch/workload.hpp). The catalogue covers the workload classes of
// the Stochastic Automata Network SoC-communication study (PAPERS.md):
// deterministic point, bounded uniform jitter, normal (truncated at zero),
// and the heavy-tailed lognormal / Pareto service times of bursty traffic.
//
// Everything is deterministic given a Xoshiro256 stream: sampling uses a
// fixed number of generator draws per kind, so replication k of seed s is
// reproducible on any platform, any thread count, any backend.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace segbus::stoch {

/// The distribution families the estimator understands.
enum class DistributionKind : std::uint8_t {
  kPoint,      ///< degenerate: always `a`
  kUniform,    ///< uniform on [a, b]
  kNormal,     ///< normal(mean = a, sd = b), truncated below at 0
  kLognormal,  ///< exp(normal(mu = a, sigma = b))
  kPareto,     ///< Pareto(alpha = a, xm = b): xm * U^(-1/alpha)
};

std::string_view to_string(DistributionKind kind) noexcept;

/// One scale-factor distribution. `a`/`b` are the family's two parameters
/// (see DistributionKind); kPoint uses only `a`.
struct Distribution {
  DistributionKind kind = DistributionKind::kPoint;
  double a = 1.0;
  double b = 0.0;

  static Distribution point(double value) {
    return {DistributionKind::kPoint, value, 0.0};
  }
  static Distribution uniform(double lo, double hi) {
    return {DistributionKind::kUniform, lo, hi};
  }
  static Distribution normal(double mean, double sd) {
    return {DistributionKind::kNormal, mean, sd};
  }
  static Distribution lognormal(double mu, double sigma) {
    return {DistributionKind::kLognormal, mu, sigma};
  }
  static Distribution pareto(double alpha, double xm) {
    return {DistributionKind::kPareto, alpha, xm};
  }

  /// True when every draw returns the same value (the degenerate cases:
  /// kPoint, zero-width uniform, zero-sd normal/lognormal).
  bool is_point() const noexcept;

  /// Analytic mean of the *untruncated* family. The zero-truncation of
  /// kNormal biases realized draws upward when mean < ~3 sd; the catalogue
  /// documents this in docs/WORKLOADS.md. Pareto with alpha <= 1 has an
  /// infinite mean (returned as +inf).
  double mean() const noexcept;

  /// Analytic variance (untruncated; +inf for Pareto with alpha <= 2).
  double variance() const noexcept;

  /// Draws one value. Consumes a fixed number of rng values per kind
  /// (1 for point/uniform/pareto, 2 for normal/lognormal) so downstream
  /// draws never shift when a parameter changes.
  double sample(Xoshiro256& rng) const noexcept;

  /// Parameter sanity: finite values, uniform lo <= hi with lo >= 0,
  /// sd/sigma >= 0, Pareto alpha > 0 and xm > 0, point/normal >= 0.
  Status validate() const;

  /// Compact spec string, e.g. "pareto:3,0.667" or "point:1".
  std::string spec() const;

  /// Parses a spec string ("kind:a[,b]"); inverse of spec().
  static Result<Distribution> parse(std::string_view spec);

  /// JSON form: {"kind": "...", "a": ..., "b": ...}.
  JsonValue to_json() const;
  static Result<Distribution> from_json(const JsonValue& value);

  friend bool operator==(const Distribution&, const Distribution&) = default;
};

}  // namespace segbus::stoch
