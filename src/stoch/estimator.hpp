// Replicated-run confidence estimation — the statistically honest TCT.
//
// A stochastic spec turns one scheme into a distribution over schemes;
// the estimator samples it: N seeded replications are realized
// (stoch/workload.hpp), deduplicated by content-addressed fingerprint,
// fanned through a service::JobServer (or run inline for multi-mode
// schedules), and summarized as mean/p50/p95/p99 with a Student-t
// confidence interval:
//
//   mean ± t_{n-1, conf} * s / sqrt(n)
//
// Stopping rule: replications are added in rounds until the *relative
// half-width* (half-width / mean) drops to the target or the replication
// budget is exhausted — the classical sequential-replication procedure of
// discrete-event simulation practice.
//
// Determinism contract: replication k's model depends only on (seed, k);
// jobs are submitted and collected in replication order; dedup decisions
// are made locally before submission. Reports are therefore byte-identical
// across worker counts and backends (asserted by tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "psdf/modes.hpp"
#include "service/server.hpp"
#include "stoch/workload.hpp"
#include "support/json.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::stoch {

/// Estimation parameters. Replication counts bound the sequential
/// procedure: at least `min_replications` always run; rounds of
/// `round_replications` are added until the stopping rule fires or
/// `max_replications` is reached.
struct EstimatorOptions {
  StochasticSpec spec;
  std::uint64_t seed = 1;
  std::uint32_t min_replications = 8;
  std::uint32_t max_replications = 64;
  std::uint32_t round_replications = 8;
  /// Two-sided confidence level of the interval.
  double confidence = 0.95;
  /// Stopping target for half_width / mean; 0 disables the rule (run
  /// exactly max_replications).
  double target_relative_half_width = 0.0;
  /// Engine backend for replication jobs ("" = server default). All
  /// backends are bit-identical, so this only affects speed.
  std::string engine;
  std::uint64_t max_ticks = 0;       ///< per-job tick budget (0 = default)
  bool reference_timing = false;     ///< reference instead of emulator preset
  /// Multi-mode estimation: when set, each replication realizes the spec
  /// and runs `schedule` over the table inline (chained sessions) instead
  /// of submitting a single static job. The table/schedule must outlive
  /// the run() call.
  const psdf::ModeTable* mode_table = nullptr;
  std::vector<std::size_t> mode_schedule;
};

/// One replication's outcome.
struct Replication {
  std::uint64_t index = 0;
  std::string digest;             ///< realized scheme fingerprint
  Picoseconds execution_time{0};  ///< realized TCT (total across modes)
  bool deduplicated = false;      ///< digest matched an earlier replication
};

/// The replicated-run estimate.
struct Estimate {
  std::vector<Replication> replications;  ///< replication order
  std::uint64_t unique_runs = 0;          ///< distinct schemes emulated
  double mean_ps = 0.0;
  double stddev_ps = 0.0;
  double p50_ps = 0.0;
  double p95_ps = 0.0;
  double p99_ps = 0.0;
  double confidence = 0.0;
  double ci_low_ps = 0.0;
  double ci_high_ps = 0.0;
  double half_width_ps = 0.0;
  double relative_half_width = 0.0;
  bool converged = false;  ///< stopping rule met (or rule disabled)
  /// Deterministic TCT of the mean-valued model (scale every flow by the
  /// analytic distribution mean); < 0 when undefined (infinite mean).
  double mean_model_ps = -1.0;
  bool ci_contains_mean_model = false;

  /// Full machine-readable report (schema: docs/WORKLOADS.md).
  JsonValue to_json() const;
};

/// Runs the replicated estimation through `server` (static specs) or
/// inline (multi-mode specs). Thread-compatible: one estimator per run.
class Estimator {
 public:
  explicit Estimator(service::JobServer& server) : server_(&server) {}

  Result<Estimate> run(const psdf::PsdfModel& application,
                       const platform::PlatformModel& platform,
                       const EstimatorOptions& options);

 private:
  service::JobServer* server_;
};

/// Server-free convenience used by the oracle and tests: replications run
/// through in-process sessions, same report, same determinism contract.
Result<Estimate> estimate_inline(const psdf::PsdfModel& application,
                                 const platform::PlatformModel& platform,
                                 const EstimatorOptions& options);

}  // namespace segbus::stoch
