#include "stoch/multimode.hpp"

#include <set>
#include <utility>

#include "support/strings.hpp"

namespace segbus::stoch {

JsonValue MultiModeResult::to_json() const {
  JsonValue object = JsonValue::object();
  JsonValue mode_array = JsonValue::array();
  for (const ModeRun& run : runs) {
    JsonValue entry = JsonValue::object();
    entry.set("mode", JsonValue::string(run.mode_name));
    entry.set("index", JsonValue::unsigned_integer(run.mode_index));
    entry.set("execution_time_ps",
              JsonValue::integer(run.execution_time.count()));
    entry.set("completed", JsonValue::boolean(run.completed));
    mode_array.push(std::move(entry));
  }
  object.set("runs", std::move(mode_array));
  object.set("transition_total_ps", JsonValue::integer(transition_total.count()));
  object.set("total_time_ps", JsonValue::integer(total_time.count()));
  object.set("completed", JsonValue::boolean(completed));
  return object;
}

Result<MultiModeResult> run_multimode(const psdf::PsdfModel& application,
                                      const platform::PlatformModel& platform,
                                      const psdf::ModeTable& table,
                                      const std::vector<std::size_t>& schedule,
                                      const core::SessionConfig& config) {
  SEGBUS_RETURN_IF_ERROR(table.validate(application));
  if (schedule.empty()) {
    return invalid_argument_error("mode schedule is empty");
  }
  for (std::size_t entry : schedule) {
    if (entry >= table.modes().size()) {
      return invalid_argument_error(
          str_format("schedule entry %zu out of range (%zu modes)", entry,
                     table.modes().size()));
    }
  }

  // Extract + bind each distinct mode once; schedules repeat modes and
  // a bound session can emulate repeatedly.
  const std::set<std::size_t> distinct(schedule.begin(), schedule.end());
  std::vector<std::unique_ptr<core::EmulationSession>> sessions(
      table.modes().size());
  for (std::size_t index : distinct) {
    SEGBUS_ASSIGN_OR_RETURN(psdf::PsdfModel mode_model,
                            table.mode_model(application, index));
    // Rebuild the platform with only the functional units this mode's
    // model still has, dropping segments that end up empty — a mode whose
    // flow subset vacates a whole segment must not trip the every-segment-
    // hosts-an-FU validation (SB024) of the full platform.
    platform::PlatformModel pruned(platform.name() + ":" +
                                   table.mode(index).name);
    SEGBUS_RETURN_IF_ERROR(pruned.set_package_size(platform.package_size()));
    SEGBUS_RETURN_IF_ERROR(pruned.set_ca_clock(platform.ca_clock()));
    for (platform::SegmentId s = 0; s < platform.segment_count(); ++s) {
      const platform::Segment& segment = platform.segment(s);
      std::vector<const platform::FunctionalUnit*> kept;
      for (const platform::FunctionalUnit& fu : segment.fus) {
        if (mode_model.find_process(fu.process).has_value()) {
          kept.push_back(&fu);
        }
      }
      if (kept.empty()) continue;
      auto added = pruned.add_segment(segment.clock);
      if (!added.is_ok()) return added.status();
      for (const platform::FunctionalUnit* fu : kept) {
        SEGBUS_RETURN_IF_ERROR(pruned.map_process(fu->process, *added,
                                                  fu->masters, fu->slaves));
      }
    }
    if (pruned.segment_count() > 1 && !platform.border_units().empty()) {
      SEGBUS_RETURN_IF_ERROR(pruned.set_bu_capacity(
          platform.border_units().front().capacity_packages));
    }
    SEGBUS_ASSIGN_OR_RETURN(
        core::EmulationSession session,
        core::EmulationSession::from_models(std::move(mode_model),
                                            std::move(pruned), config));
    sessions[index] =
        std::make_unique<core::EmulationSession>(std::move(session));
  }

  MultiModeResult result;
  result.completed = true;
  for (std::size_t entry : schedule) {
    SEGBUS_ASSIGN_OR_RETURN(emu::EmulationResult mode_result,
                            sessions[entry]->emulate());
    ModeRun run;
    run.mode_index = entry;
    run.mode_name = table.mode(entry).name;
    run.execution_time = mode_result.total_execution_time;
    run.completed = mode_result.completed;
    result.completed = result.completed && run.completed;
    result.total_time += run.execution_time;
    result.runs.push_back(std::move(run));
  }
  result.transition_total =
      table.transition_delay() *
      static_cast<std::int64_t>(schedule.size() - 1);
  result.total_time += result.transition_total;
  return result;
}

}  // namespace segbus::stoch
