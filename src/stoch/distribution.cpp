#include "stoch/distribution.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "support/strings.hpp"

namespace segbus::stoch {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Standard normal draw via Box-Muller; always consumes exactly two
/// generator values.
double standard_normal(Xoshiro256& rng) noexcept {
  // 1 - u in (0, 1] keeps the log argument away from zero.
  const double u1 = 1.0 - rng.next_double();
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace

std::string_view to_string(DistributionKind kind) noexcept {
  switch (kind) {
    case DistributionKind::kPoint:
      return "point";
    case DistributionKind::kUniform:
      return "uniform";
    case DistributionKind::kNormal:
      return "normal";
    case DistributionKind::kLognormal:
      return "lognormal";
    case DistributionKind::kPareto:
      return "pareto";
  }
  return "point";
}

bool Distribution::is_point() const noexcept {
  switch (kind) {
    case DistributionKind::kPoint:
      return true;
    case DistributionKind::kUniform:
      return a == b;
    case DistributionKind::kNormal:
    case DistributionKind::kLognormal:
      return b == 0.0;
    case DistributionKind::kPareto:
      return false;
  }
  return false;
}

double Distribution::mean() const noexcept {
  switch (kind) {
    case DistributionKind::kPoint:
      return a;
    case DistributionKind::kUniform:
      return 0.5 * (a + b);
    case DistributionKind::kNormal:
      return a;
    case DistributionKind::kLognormal:
      return std::exp(a + 0.5 * b * b);
    case DistributionKind::kPareto:
      if (a <= 1.0) return std::numeric_limits<double>::infinity();
      return a * b / (a - 1.0);
  }
  return a;
}

double Distribution::variance() const noexcept {
  switch (kind) {
    case DistributionKind::kPoint:
      return 0.0;
    case DistributionKind::kUniform: {
      const double width = b - a;
      return width * width / 12.0;
    }
    case DistributionKind::kNormal:
      return b * b;
    case DistributionKind::kLognormal: {
      const double s2 = b * b;
      return (std::exp(s2) - 1.0) * std::exp(2.0 * a + s2);
    }
    case DistributionKind::kPareto: {
      if (a <= 2.0) return std::numeric_limits<double>::infinity();
      const double am1 = a - 1.0;
      return b * b * a / (am1 * am1 * (a - 2.0));
    }
  }
  return 0.0;
}

double Distribution::sample(Xoshiro256& rng) const noexcept {
  switch (kind) {
    case DistributionKind::kPoint:
      return a;
    case DistributionKind::kUniform:
      return a + (b - a) * rng.next_double();
    case DistributionKind::kNormal:
      return std::max(0.0, a + b * standard_normal(rng));
    case DistributionKind::kLognormal:
      return std::exp(a + b * standard_normal(rng));
    case DistributionKind::kPareto: {
      const double u = 1.0 - rng.next_double();  // (0, 1]
      return b * std::pow(u, -1.0 / a);
    }
  }
  return a;
}

Status Distribution::validate() const {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return invalid_argument_error("distribution parameters must be finite");
  }
  switch (kind) {
    case DistributionKind::kPoint:
      if (a < 0.0) {
        return invalid_argument_error("point distribution value must be >= 0");
      }
      break;
    case DistributionKind::kUniform:
      if (a < 0.0 || b < a) {
        return invalid_argument_error(
            "uniform distribution requires 0 <= lo <= hi, got " + spec());
      }
      break;
    case DistributionKind::kNormal:
      if (a < 0.0 || b < 0.0) {
        return invalid_argument_error(
            "normal distribution requires mean >= 0 and sd >= 0, got " +
            spec());
      }
      break;
    case DistributionKind::kLognormal:
      if (b < 0.0) {
        return invalid_argument_error(
            "lognormal distribution requires sigma >= 0, got " + spec());
      }
      break;
    case DistributionKind::kPareto:
      if (a <= 0.0 || b <= 0.0) {
        return invalid_argument_error(
            "pareto distribution requires alpha > 0 and xm > 0, got " +
            spec());
      }
      break;
  }
  return Status::ok();
}

std::string Distribution::spec() const {
  if (kind == DistributionKind::kPoint) {
    return str_format("point:%g", a);
  }
  return str_format("%s:%g,%g", std::string(to_string(kind)).c_str(), a, b);
}

Result<Distribution> Distribution::parse(std::string_view text) {
  const std::size_t colon = text.find(':');
  const std::string_view name = text.substr(0, colon);
  Distribution distribution;
  bool needs_b = true;
  if (name == "point") {
    distribution.kind = DistributionKind::kPoint;
    needs_b = false;
  } else if (name == "uniform") {
    distribution.kind = DistributionKind::kUniform;
  } else if (name == "normal") {
    distribution.kind = DistributionKind::kNormal;
  } else if (name == "lognormal") {
    distribution.kind = DistributionKind::kLognormal;
  } else if (name == "pareto") {
    distribution.kind = DistributionKind::kPareto;
  } else {
    return parse_error("unknown distribution kind '" + std::string(name) +
                       "' (expected point|uniform|normal|lognormal|pareto)");
  }
  if (colon == std::string_view::npos) {
    return parse_error("distribution spec '" + std::string(text) +
                       "' is missing parameters (expected kind:a[,b])");
  }
  const std::string_view params = text.substr(colon + 1);
  const std::vector<std::string_view> parts = split(params, ',');
  const std::size_t expected = needs_b ? 2 : 1;
  if (parts.size() != expected) {
    return parse_error(str_format(
        "distribution '%s' expects %zu parameter(s), got %zu in '%s'",
        std::string(name).c_str(), expected, parts.size(),
        std::string(text).c_str()));
  }
  const std::optional<double> a_value = parse_double(trim(parts[0]));
  if (!a_value.has_value()) {
    return parse_error("malformed distribution parameter '" +
                       std::string(parts[0]) + "'");
  }
  distribution.a = *a_value;
  if (needs_b) {
    const std::optional<double> b_value = parse_double(trim(parts[1]));
    if (!b_value.has_value()) {
      return parse_error("malformed distribution parameter '" +
                         std::string(parts[1]) + "'");
    }
    distribution.b = *b_value;
  }
  SEGBUS_RETURN_IF_ERROR(distribution.validate());
  return distribution;
}

JsonValue Distribution::to_json() const {
  JsonValue object = JsonValue::object();
  object.set("kind", JsonValue::string(to_string(kind)));
  object.set("a", JsonValue::number(a));
  if (kind != DistributionKind::kPoint) {
    object.set("b", JsonValue::number(b));
  }
  return object;
}

Result<Distribution> Distribution::from_json(const JsonValue& value) {
  if (!value.is_object()) {
    return parse_error("distribution JSON must be an object");
  }
  const JsonValue* kind = value.find("kind");
  if (kind == nullptr || !kind->is_string()) {
    return parse_error("distribution JSON is missing string field 'kind'");
  }
  std::string spec = kind->as_string();
  const JsonValue* a = value.find("a");
  if (a == nullptr || !a->is_number()) {
    return parse_error("distribution JSON is missing numeric field 'a'");
  }
  spec += ":" + str_format("%.17g", a->as_number());
  if (const JsonValue* b = value.find("b"); b != nullptr && b->is_number()) {
    spec += "," + str_format("%.17g", b->as_number());
  } else if (kind->as_string() != "point") {
    return parse_error("distribution JSON is missing numeric field 'b'");
  }
  return parse(spec);
}

}  // namespace segbus::stoch
