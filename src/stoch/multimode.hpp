// Multi-mode emulation: runs a seeded mode schedule as chained engine
// sessions and reports per-mode plus total execution time.
//
// Each schedule entry extracts its mode's flow subset as a standalone PSDF
// model (psdf::ModeTable::mode_model), prunes the platform to the
// processes that mode uses, and emulates it through the selected backend
// (reference/parallel/fast — bit-identical, so multi-mode totals are too;
// asserted by the oracle's mode-chaining invariant). Between consecutive
// schedule entries the table's transition delay is charged once:
//
//   total = sum(mode TCT_i) + transition_delay * (len(schedule) - 1)
//
// This is the "sequential mode execution" model of Jung/Oh/Ha: one mode
// drains completely (PSDF flows are finite) before the switch begins, so
// chaining independent sessions is exact, not an approximation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "psdf/modes.hpp"
#include "support/json.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::stoch {

/// One executed schedule entry.
struct ModeRun {
  std::size_t mode_index = 0;
  std::string mode_name;
  Picoseconds execution_time{0};  ///< this mode's TCT (paper formula)
  bool completed = false;
};

/// The outcome of running a whole mode schedule.
struct MultiModeResult {
  std::vector<ModeRun> runs;          ///< schedule order
  Picoseconds transition_total{0};    ///< delay * (runs - 1)
  Picoseconds total_time{0};          ///< sum of runs + transition_total
  bool completed = false;             ///< all modes completed

  JsonValue to_json() const;
};

/// Runs `schedule` (entries are mode indices) of `table` over the
/// application/platform pair. The platform is pruned per mode: mappings
/// of processes absent from the mode's model are dropped, and segments
/// left without any functional unit are removed entirely (clocks, BU
/// capacities and package size of what remains are kept). Fails on an
/// invalid table, an out-of-range schedule entry, or an empty schedule.
Result<MultiModeResult> run_multimode(const psdf::PsdfModel& application,
                                      const platform::PlatformModel& platform,
                                      const psdf::ModeTable& table,
                                      const std::vector<std::size_t>& schedule,
                                      const core::SessionConfig& config = {});

}  // namespace segbus::stoch
