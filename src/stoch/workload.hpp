// Stochastic workload specs: per-flow scale distributions on compute times
// and item counts, realized into concrete PSDF models per replication.
//
// Determinism contract (load-bearing for the oracle and the estimator):
//   - replication k of master seed s draws from
//     Xoshiro256(derive_seed(derive_seed(s, "stoch/replication"), k)),
//     one (compute, items) draw pair per flow in insertion order;
//   - a draw of exactly 1.0 preserves the flow's value bit-identically,
//     so a degenerate spec (point:1) realizes the input model unchanged
//     and the whole stochastic path collapses to the deterministic one.
#pragma once

#include <cstdint>

#include "psdf/model.hpp"
#include "stoch/distribution.hpp"
#include "support/json.hpp"
#include "support/status.hpp"

namespace segbus::stoch {

/// Substream label the per-replication draws derive from (registry:
/// DESIGN.md "Seed substream registry").
inline constexpr std::string_view kReplicationSubstream = "stoch/replication";

/// What varies between replications. Scales are multiplicative per flow:
/// realized C = round(C * draw) (min 1 when C > 0), realized D =
/// max(1, round(D * draw)).
struct StochasticSpec {
  Distribution compute_scale = Distribution::point(1.0);
  Distribution items_scale = Distribution::point(1.0);

  /// True when every replication realizes the identical model (both
  /// scales degenerate at exactly 1.0; a degenerate distribution's mean
  /// is its constant).
  bool is_identity() const noexcept {
    return compute_scale.is_point() && compute_scale.mean() == 1.0 &&
           items_scale.is_point() && items_scale.mean() == 1.0;
  }

  Status validate() const;

  /// JSON form: {"compute": {...}, "items": {...}}.
  JsonValue to_json() const;
  static Result<StochasticSpec> from_json(const JsonValue& value);

  friend bool operator==(const StochasticSpec&,
                         const StochasticSpec&) = default;
};

/// Realizes replication `replication` of `spec` over `model` (see the
/// determinism contract above). The realized model keeps the name,
/// package size, and process set; only flow D/C values change.
Result<psdf::PsdfModel> realize(const psdf::PsdfModel& model,
                                const StochasticSpec& spec,
                                std::uint64_t seed,
                                std::uint64_t replication);

/// The mean-valued deterministic model: every flow scaled by the analytic
/// distribution means (the classical "plug in the expectation" estimate
/// the confidence interval is compared against). Fails when a scale's
/// mean is infinite (Pareto alpha <= 1).
Result<psdf::PsdfModel> mean_model(const psdf::PsdfModel& model,
                                   const StochasticSpec& spec);

}  // namespace segbus::stoch
