#include "stoch/estimator.hpp"

#include <cmath>
#include <future>
#include <unordered_map>
#include <utility>

#include "core/fingerprint.hpp"
#include "platform/platform_xml.hpp"
#include "psdf/psdf_xml.hpp"
#include "stoch/multimode.hpp"
#include "support/statistics.hpp"
#include "support/strings.hpp"
#include "xml/writer.hpp"

namespace segbus::stoch {

namespace {

/// Builds the session config a replication runs under (inline paths).
Result<core::SessionConfig> session_config(const EstimatorOptions& options) {
  core::SessionConfig config;
  config.timing = options.reference_timing ? emu::TimingModel::reference()
                                           : emu::TimingModel::emulator();
  if (options.max_ticks > 0) {
    config.engine.max_ticks_per_domain = options.max_ticks;
  }
  if (!options.engine.empty()) {
    const auto backend = emu::parse_engine_backend(options.engine);
    if (!backend.has_value()) {
      return invalid_argument_error("unknown engine backend '" +
                                    options.engine + "'");
    }
    config.backend.backend = *backend;
  } else {
    // Inline replications default to the fast engine — bit-identical to
    // the reference engine and the right choice for sampling campaigns.
    config.backend.backend = emu::EngineBackend::kFast;
  }
  return config;
}

Status check_options(const EstimatorOptions& options) {
  SEGBUS_RETURN_IF_ERROR(options.spec.validate());
  if (options.min_replications == 0) {
    return invalid_argument_error("min_replications must be >= 1");
  }
  if (options.max_replications < options.min_replications) {
    return invalid_argument_error(
        "max_replications must be >= min_replications");
  }
  if (options.round_replications == 0) {
    return invalid_argument_error("round_replications must be >= 1");
  }
  if (!(options.confidence > 0.0) || !(options.confidence < 1.0)) {
    return invalid_argument_error("confidence must be in (0, 1)");
  }
  if (options.target_relative_half_width < 0.0) {
    return invalid_argument_error(
        "target_relative_half_width must be >= 0");
  }
  if (options.mode_table != nullptr && options.mode_schedule.empty()) {
    return invalid_argument_error(
        "multi-mode estimation requires a non-empty mode schedule");
  }
  return Status::ok();
}

/// Resolves one realized model to its TCT. Exactly one of `server` /
/// inline execution is used; multi-mode schedules always run inline.
class ReplicationRunner {
 public:
  ReplicationRunner(const platform::PlatformModel& platform,
                    const EstimatorOptions& options,
                    service::JobServer* server)
      : platform_(platform), options_(options), server_(server) {}

  Status init() {
    SEGBUS_ASSIGN_OR_RETURN(config_, session_config(options_));
    if (server_ != nullptr && options_.mode_table == nullptr) {
      psm_xml_ = xml::write_document(platform::to_xml(platform_));
    }
    return Status::ok();
  }

  const core::SessionConfig& config() const noexcept { return config_; }

  /// Fingerprint used for dedup decisions (always computed locally so
  /// decisions are independent of the server's cache state).
  Result<std::string> digest(const psdf::PsdfModel& realized) const {
    return core::scheme_digest(realized, platform_, config_);
  }

  /// Starts one replication; `tag` labels the job id. Returns a future
  /// resolving to (digest, execution time). Inline paths resolve
  /// immediately on this thread.
  Result<std::future<service::JobResponse>> submit(
      const psdf::PsdfModel& realized, const std::string& tag) {
    service::JobRequest request;
    request.id = tag;
    request.psdf_xml = xml::write_document(psdf::to_xml(realized));
    request.psm_xml = psm_xml_;
    request.reference_timing = options_.reference_timing;
    request.engine = options_.engine;
    request.max_ticks = options_.max_ticks;
    return server_->submit_async(std::move(request));
  }

  /// Inline resolution: emulates the realized model (or its mode
  /// schedule) directly. Returns the TCT.
  Result<Picoseconds> run_inline(const psdf::PsdfModel& realized,
                                 const std::string& tag) const {
    if (options_.mode_table != nullptr) {
      SEGBUS_ASSIGN_OR_RETURN(
          MultiModeResult result,
          run_multimode(realized, platform_, *options_.mode_table,
                        options_.mode_schedule, config_));
      if (!result.completed) {
        return failed_precondition_error(tag +
                                         ": a mode run hit the tick limit");
      }
      return result.total_time;
    }
    SEGBUS_ASSIGN_OR_RETURN(
        core::EmulationSession session,
        core::EmulationSession::from_models(realized, platform_, config_));
    SEGBUS_ASSIGN_OR_RETURN(emu::EmulationResult result, session.emulate());
    if (!result.completed) {
      return failed_precondition_error(tag + ": emulation hit the tick limit");
    }
    return result.total_execution_time;
  }

  bool uses_server() const noexcept {
    return server_ != nullptr && options_.mode_table == nullptr;
  }

 private:
  const platform::PlatformModel& platform_;
  const EstimatorOptions& options_;
  service::JobServer* server_;
  core::SessionConfig config_;
  std::string psm_xml_;
};

/// Recomputes the summary statistics over the replications so far.
void summarize(Estimate& estimate, const EstimatorOptions& options) {
  RunningStats stats;
  std::vector<double> samples;
  samples.reserve(estimate.replications.size());
  for (const Replication& replication : estimate.replications) {
    const auto value = static_cast<double>(replication.execution_time.count());
    stats.add(value);
    samples.push_back(value);
  }
  estimate.mean_ps = stats.mean();
  estimate.stddev_ps = stats.stddev();
  estimate.p50_ps = sample_quantile(samples, 0.50);
  estimate.p95_ps = sample_quantile(samples, 0.95);
  estimate.p99_ps = sample_quantile(samples, 0.99);
  estimate.confidence = options.confidence;
  double half_width = 0.0;
  if (stats.count() >= 2 && estimate.stddev_ps > 0.0) {
    const double t =
        student_t_critical(stats.count() - 1, options.confidence);
    half_width =
        t * estimate.stddev_ps / std::sqrt(static_cast<double>(stats.count()));
  }
  estimate.half_width_ps = half_width;
  estimate.ci_low_ps = estimate.mean_ps - half_width;
  estimate.ci_high_ps = estimate.mean_ps + half_width;
  estimate.relative_half_width =
      estimate.mean_ps > 0.0 ? half_width / estimate.mean_ps : 0.0;
  estimate.ci_contains_mean_model =
      estimate.mean_model_ps >= 0.0 &&
      estimate.ci_low_ps <= estimate.mean_model_ps &&
      estimate.mean_model_ps <= estimate.ci_high_ps;
}

Result<Estimate> estimate_with(const psdf::PsdfModel& application,
                               const platform::PlatformModel& platform,
                               const EstimatorOptions& options,
                               service::JobServer* server) {
  SEGBUS_RETURN_IF_ERROR(check_options(options));
  if (options.mode_table != nullptr) {
    SEGBUS_RETURN_IF_ERROR(options.mode_table->validate(application));
    for (std::size_t entry : options.mode_schedule) {
      if (entry >= options.mode_table->modes().size()) {
        return invalid_argument_error(
            str_format("mode schedule entry %zu out of range", entry));
      }
    }
  }
  ReplicationRunner runner(platform, options, server);
  SEGBUS_RETURN_IF_ERROR(runner.init());

  Estimate estimate;

  // Deterministic plug-in-the-expectation baseline, when defined.
  if (Result<psdf::PsdfModel> mean = mean_model(application, options.spec);
      mean.is_ok()) {
    SEGBUS_ASSIGN_OR_RETURN(Picoseconds mean_time,
                            runner.run_inline(*mean, "estimate-mean"));
    estimate.mean_model_ps = static_cast<double>(mean_time.count());
  }

  // Sequential replication rounds. Dedup decisions and round boundaries
  // depend only on (seed, replication index, collected values), never on
  // worker scheduling — reports are byte-identical across worker counts.
  std::unordered_map<std::string, std::size_t> first_by_digest;
  const double target = options.target_relative_half_width;
  std::uint32_t next = 0;
  while (next < options.max_replications) {
    const std::uint32_t round_end =
        next == 0 ? options.min_replications
                  : std::min(options.max_replications,
                             next + options.round_replications);
    struct PendingJob {
      std::size_t replication;
      std::future<service::JobResponse> future;
    };
    std::vector<PendingJob> pending;
    std::vector<std::pair<std::size_t, std::size_t>> duplicates;
    for (std::uint32_t k = next; k < round_end; ++k) {
      SEGBUS_ASSIGN_OR_RETURN(
          psdf::PsdfModel realized,
          realize(application, options.spec, options.seed, k));
      SEGBUS_ASSIGN_OR_RETURN(std::string digest, runner.digest(realized));
      Replication replication;
      replication.index = k;
      const std::size_t slot = estimate.replications.size();
      const auto [it, inserted] = first_by_digest.emplace(digest, slot);
      if (!inserted) {
        replication.deduplicated = true;
        duplicates.emplace_back(slot, it->second);
        estimate.replications.push_back(std::move(replication));
        continue;
      }
      replication.digest = digest;
      const std::string tag = str_format("estimate-rep-%u", k);
      if (runner.uses_server()) {
        SEGBUS_ASSIGN_OR_RETURN(std::future<service::JobResponse> future,
                                runner.submit(realized, tag));
        pending.push_back({slot, std::move(future)});
        estimate.replications.push_back(std::move(replication));
      } else {
        SEGBUS_ASSIGN_OR_RETURN(replication.execution_time,
                                runner.run_inline(realized, tag));
        estimate.replications.push_back(std::move(replication));
      }
    }
    // Collect the round's jobs in submission order.
    for (PendingJob& job : pending) {
      service::JobResponse response = job.future.get();
      if (!response.ok) {
        return internal_error(str_format(
            "replication %llu failed: %s: %s",
            static_cast<unsigned long long>(
                estimate.replications[job.replication].index),
            response.error_code.c_str(), response.error_message.c_str()));
      }
      estimate.replications[job.replication].execution_time =
          response.execution_time;
    }
    // Resolve intra-round duplicates now that every original ran.
    for (const auto& [slot, first] : duplicates) {
      estimate.replications[slot].digest = estimate.replications[first].digest;
      estimate.replications[slot].execution_time =
          estimate.replications[first].execution_time;
    }
    next = round_end;
    summarize(estimate, options);
    if (target > 0.0 && estimate.relative_half_width <= target) break;
  }

  estimate.unique_runs = first_by_digest.size();
  estimate.converged =
      target <= 0.0 || estimate.relative_half_width <= target;
  return estimate;
}

}  // namespace

Result<Estimate> Estimator::run(const psdf::PsdfModel& application,
                                const platform::PlatformModel& platform,
                                const EstimatorOptions& options) {
  return estimate_with(application, platform, options, server_);
}

Result<Estimate> estimate_inline(const psdf::PsdfModel& application,
                                 const platform::PlatformModel& platform,
                                 const EstimatorOptions& options) {
  return estimate_with(application, platform, options, nullptr);
}

JsonValue Estimate::to_json() const {
  JsonValue object = JsonValue::object();
  object.set("kind", JsonValue::string("estimate"));
  object.set("replications",
             JsonValue::unsigned_integer(replications.size()));
  object.set("unique_runs", JsonValue::unsigned_integer(unique_runs));
  object.set("deduplicated", JsonValue::unsigned_integer(
                                 replications.size() >= unique_runs
                                     ? replications.size() - unique_runs
                                     : 0));
  object.set("mean_ps", JsonValue::number(mean_ps));
  object.set("stddev_ps", JsonValue::number(stddev_ps));
  object.set("p50_ps", JsonValue::number(p50_ps));
  object.set("p95_ps", JsonValue::number(p95_ps));
  object.set("p99_ps", JsonValue::number(p99_ps));
  object.set("confidence", JsonValue::number(confidence));
  object.set("ci_low_ps", JsonValue::number(ci_low_ps));
  object.set("ci_high_ps", JsonValue::number(ci_high_ps));
  object.set("half_width_ps", JsonValue::number(half_width_ps));
  object.set("relative_half_width", JsonValue::number(relative_half_width));
  object.set("converged", JsonValue::boolean(converged));
  if (mean_model_ps >= 0.0) {
    object.set("mean_model_ps", JsonValue::number(mean_model_ps));
    object.set("ci_contains_mean_model",
               JsonValue::boolean(ci_contains_mean_model));
  }
  JsonValue samples = JsonValue::array();
  for (const Replication& replication : replications) {
    JsonValue entry = JsonValue::object();
    entry.set("replication", JsonValue::unsigned_integer(replication.index));
    entry.set("digest", JsonValue::string(replication.digest));
    entry.set("execution_ps",
              JsonValue::integer(replication.execution_time.count()));
    entry.set("deduplicated", JsonValue::boolean(replication.deduplicated));
    samples.push(std::move(entry));
  }
  object.set("samples", std::move(samples));
  return object;
}

}  // namespace segbus::stoch
