#include "stoch/workload.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace segbus::stoch {

namespace {

/// Largest realized value we allow; keeps C * draw inside uint64 (and the
/// engine's tick budget honest) even for extreme heavy-tail draws.
constexpr double kMaxScaled = 1e15;

/// Applies one multiplicative draw. A draw of exactly 1.0 is the identity
/// (bit-preserving — the degenerate-spec oracle invariant depends on it);
/// otherwise round-to-nearest clamped to [minimum, kMaxScaled].
std::uint64_t scale_value(std::uint64_t value, double draw,
                          std::uint64_t minimum) noexcept {
  if (draw == 1.0) return value;
  double scaled = static_cast<double>(value) * draw;
  if (!(scaled >= 0.0)) scaled = 0.0;  // NaN / negative guard
  if (scaled > kMaxScaled) scaled = kMaxScaled;
  const auto rounded = static_cast<std::uint64_t>(std::llround(scaled));
  return rounded < minimum ? minimum : rounded;
}

}  // namespace

Status StochasticSpec::validate() const {
  SEGBUS_RETURN_IF_ERROR(compute_scale.validate());
  SEGBUS_RETURN_IF_ERROR(items_scale.validate());
  return Status::ok();
}

JsonValue StochasticSpec::to_json() const {
  JsonValue object = JsonValue::object();
  object.set("compute", compute_scale.to_json());
  object.set("items", items_scale.to_json());
  return object;
}

Result<StochasticSpec> StochasticSpec::from_json(const JsonValue& value) {
  if (!value.is_object()) {
    return parse_error("stochastic spec JSON must be an object");
  }
  StochasticSpec spec;
  if (const JsonValue* compute = value.find("compute"); compute != nullptr) {
    SEGBUS_ASSIGN_OR_RETURN(spec.compute_scale,
                            Distribution::from_json(*compute));
  }
  if (const JsonValue* items = value.find("items"); items != nullptr) {
    SEGBUS_ASSIGN_OR_RETURN(spec.items_scale, Distribution::from_json(*items));
  }
  return spec;
}

Result<psdf::PsdfModel> realize(const psdf::PsdfModel& model,
                                const StochasticSpec& spec,
                                std::uint64_t seed,
                                std::uint64_t replication) {
  SEGBUS_RETURN_IF_ERROR(spec.validate());
  Xoshiro256 rng(
      derive_seed(derive_seed(seed, kReplicationSubstream), replication));

  psdf::PsdfModel realized(model.name());
  SEGBUS_RETURN_IF_ERROR(realized.set_package_size(model.package_size()));
  for (const psdf::Process& process : model.processes()) {
    SEGBUS_RETURN_IF_ERROR(realized.add_process(process.name).status());
  }
  for (const psdf::Flow& flow : model.flows()) {
    // Fixed draw order per flow: compute first, then items.
    const double compute_draw = spec.compute_scale.sample(rng);
    const double items_draw = spec.items_scale.sample(rng);
    const std::uint64_t compute =
        scale_value(flow.compute_ticks, compute_draw,
                    flow.compute_ticks > 0 ? 1 : 0);
    const std::uint64_t items = scale_value(flow.data_items, items_draw, 1);
    SEGBUS_RETURN_IF_ERROR(realized.add_flow(flow.source, flow.target, items,
                                             flow.ordering, compute));
  }
  return realized;
}

Result<psdf::PsdfModel> mean_model(const psdf::PsdfModel& model,
                                   const StochasticSpec& spec) {
  SEGBUS_RETURN_IF_ERROR(spec.validate());
  const double compute_mean = spec.compute_scale.mean();
  const double items_mean = spec.items_scale.mean();
  if (!std::isfinite(compute_mean) || !std::isfinite(items_mean)) {
    return failed_precondition_error(
        "mean-valued model undefined: a scale distribution has an infinite "
        "mean (Pareto with alpha <= 1)");
  }
  psdf::PsdfModel scaled(model.name());
  SEGBUS_RETURN_IF_ERROR(scaled.set_package_size(model.package_size()));
  for (const psdf::Process& process : model.processes()) {
    SEGBUS_RETURN_IF_ERROR(scaled.add_process(process.name).status());
  }
  for (const psdf::Flow& flow : model.flows()) {
    const std::uint64_t compute =
        scale_value(flow.compute_ticks, compute_mean,
                    flow.compute_ticks > 0 ? 1 : 0);
    const std::uint64_t items = scale_value(flow.data_items, items_mean, 1);
    SEGBUS_RETURN_IF_ERROR(scaled.add_flow(flow.source, flow.target, items,
                                           flow.ordering, compute));
  }
  return scaled;
}

}  // namespace segbus::stoch
