#include "platform/constraints.hpp"

#include <set>

#include "support/strings.hpp"

namespace segbus::platform {

namespace {

std::string segment_type_name(SegmentId id) {
  return str_format("Segment%u", id + 1);
}

SourceLocation segment_location(SegmentId id) {
  return {std::string(), scheme_type_path(segment_type_name(id))};
}

SourceLocation fu_location(SegmentId id, std::string_view process) {
  return {std::string(),
          scheme_element_path(segment_type_name(id), to_lower(process))};
}

}  // namespace

ValidationReport validate(const PlatformModel& platform) {
  ValidationReport report;

  // Every check runs even after earlier ones fail (single-pass reporting).
  if (!platform.ca_clock().valid()) {
    report.add(Severity::kError, "SB020", "psm.platform.one_ca",
               "the platform's CA clock is not configured",
               {std::string(), scheme_type_path("CA")});
  }
  if (platform.segment_count() == 0) {
    report.add(Severity::kError, "SB021", "psm.platform.segments",
               "the platform has no segments",
               {std::string(), scheme_type_path("SBP")});
  }
  if (platform.package_size() == 0) {
    report.add(Severity::kError, "SB022", "psm.package_size",
               "package size must be positive");
  } else if (platform.package_size() > 4096) {
    report.add(Severity::kWarning, "SB022", "psm.package_size",
               str_format("package size %u is unusually large",
                          platform.package_size()));
  }

  for (SegmentId id = 0; id < platform.segment_count(); ++id) {
    const Segment& segment = platform.segment(id);
    if (!segment.clock.valid()) {
      report.add(Severity::kError, "SB023", "psm.segment.clock",
                 segment.name + " has an invalid clock",
                 segment_location(id));
    }
    if (segment.fus.empty()) {
      report.add(Severity::kError, "SB024", "psm.segment.fus",
                 segment.name + " hosts no functional units",
                 segment_location(id));
    }
    for (const FunctionalUnit& fu : segment.fus) {
      if (fu.masters + fu.slaves == 0) {
        report.add(Severity::kError, "SB025", "psm.fu.interfaces",
                   "FU for process " + fu.process + " in " + segment.name +
                       " has neither a master nor a slave interface",
                   fu_location(id, fu.process));
      }
    }
  }

  // psm.bu.adjacency: exactly one BU between each consecutive pair, none
  // elsewhere.
  {
    std::set<std::pair<SegmentId, SegmentId>> seen;
    for (const BorderUnitSpec& bu : platform.border_units()) {
      SourceLocation location{std::string(), scheme_type_path(bu.name())};
      if (bu.left + 1 != bu.right) {
        report.add(Severity::kError, "SB026", "psm.bu.adjacency",
                   bu.name() + " does not connect adjacent segments",
                   std::move(location));
        continue;
      }
      if (bu.right >= platform.segment_count()) {
        report.add(Severity::kError, "SB026", "psm.bu.adjacency",
                   bu.name() + " references a nonexistent segment",
                   std::move(location));
        continue;
      }
      if (!seen.insert({bu.left, bu.right}).second) {
        report.add(Severity::kError, "SB026", "psm.bu.adjacency",
                   "duplicate border unit " + bu.name(), location);
      }
      if (bu.capacity_packages == 0) {
        report.add(Severity::kError, "SB027", "psm.bu.capacity",
                   bu.name() + " has zero FIFO capacity",
                   std::move(location));
      }
    }
    for (SegmentId id = 0; id + 1 < platform.segment_count(); ++id) {
      if (seen.find({id, id + 1}) == seen.end()) {
        report.add(Severity::kError, "SB026", "psm.bu.adjacency",
                   str_format("missing border unit between segment %u and %u",
                              id + 1, id + 2),
                   {std::string(), scheme_type_path("SBP")});
      }
    }
  }

  // psm.map.unique.
  {
    std::set<std::string> names;
    for (const std::string& process : platform.mapped_processes()) {
      if (!names.insert(process).second) {
        report.add(Severity::kError, "SB028", "psm.map.unique",
                   "process " + process + " is mapped more than once");
      }
    }
  }

  return report;
}

ValidationReport validate_mapping(const PlatformModel& platform,
                                  const psdf::PsdfModel& application) {
  ValidationReport report = validate(platform);

  // map.total / map.known.
  std::set<std::string> mapped;
  for (const std::string& process : platform.mapped_processes()) {
    mapped.insert(process);
  }
  for (const psdf::Process& process : application.processes()) {
    if (mapped.find(process.name) == mapped.end()) {
      report.add(Severity::kError, "SB030", "map.total",
                 "application process " + process.name +
                     " is not mapped to any segment",
                 {std::string(), scheme_type_path(process.name)});
    }
  }
  std::set<std::string> known;
  for (const psdf::Process& process : application.processes()) {
    known.insert(process.name);
  }
  for (const std::string& process : mapped) {
    if (known.find(process) == known.end()) {
      SourceLocation location;
      if (auto segment = platform.segment_of(process)) {
        location = fu_location(*segment, process);
      }
      report.add(Severity::kError, "SB031", "map.known",
                 "FU realizes unknown process " + process,
                 std::move(location));
    }
  }

  // map.master_needed / map.slave_needed.
  for (const psdf::Process& process : application.processes()) {
    auto segment = platform.segment_of(process.name);
    if (!segment) continue;
    const FunctionalUnit* fu = nullptr;
    for (const FunctionalUnit& candidate :
         platform.segment(*segment).fus) {
      if (candidate.process == process.name) {
        fu = &candidate;
        break;
      }
    }
    if (fu == nullptr) continue;
    bool sends = !application.flows_from(process.id).empty();
    bool receives = !application.flows_into(process.id).empty();
    if (sends && fu->masters == 0) {
      report.add(Severity::kError, "SB032", "map.master_needed",
                 "process " + process.name +
                     " initiates transfers but its FU has no master "
                     "interface",
                 fu_location(*segment, process.name));
    }
    if (receives && fu->slaves == 0) {
      report.add(Severity::kError, "SB033", "map.slave_needed",
                 "process " + process.name +
                     " receives transfers but its FU has no slave "
                     "interface",
                 fu_location(*segment, process.name));
    }
  }

  // Package-size agreement between the two models (warning only; the
  // emulator rescales).
  if (application.package_size() != platform.package_size()) {
    report.add(Severity::kWarning, "SB034", "map.package_size",
               str_format("PSDF compute ticks refer to package size %u but "
                          "the platform is configured with %u",
                          application.package_size(),
                          platform.package_size()));
  }

  return report;
}

Status validate_or_error(const PlatformModel& platform) {
  ValidationReport report = validate(platform);
  if (report.ok()) return Status::ok();
  return validation_error("PSM validation failed:\n" + report.to_string());
}

Status validate_mapping_or_error(const PlatformModel& platform,
                                 const psdf::PsdfModel& application) {
  ValidationReport report = validate_mapping(platform, application);
  if (report.ok()) return Status::ok();
  return validation_error("system validation failed:\n" + report.to_string());
}

}  // namespace segbus::platform
