// Graphviz DOT export of a platform instance: the segment chain with its
// FUs, SAs, BUs and the CA — the structural diagram of the paper's
// Figure 1, generated from a PSM.
#pragma once

#include <string>

#include "platform/model.hpp"

namespace segbus::platform {

/// Options for DOT rendering.
struct PlatformDotOptions {
  /// Include each FU's process name inside the segment cluster.
  bool show_fus = true;
  /// Annotate segments and the CA with their clock labels.
  bool show_clocks = true;
};

/// Renders the platform as a DOT digraph with one cluster per segment.
std::string to_dot(const PlatformModel& platform,
                   const PlatformDotOptions& options = {});

}  // namespace segbus::platform
