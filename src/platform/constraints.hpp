// OCL-style structural constraints of the SegBus DSL — paper §2.2.
//
// "The DSL comprises a number of structural constraints related to the
// platform, written in OCL, to implement the correct component approach to
// platform design. ... Upon breach of any constraint requirement during the
// design process, the tool provides appropriate error message."
//
// Constraint ids:
//   psm.platform.one_ca        — exactly one CA with a valid clock
//   psm.platform.segments      — at least one segment
//   psm.segment.one_arbiter    — every segment has exactly one SA (implied
//                                 by construction; checked via clock)
//   psm.segment.fus            — every segment hosts at least one FU
//   psm.segment.clock          — every segment clock is valid
//   psm.bu.adjacency           — BUs exist exactly between consecutive
//                                 segments (linear topology)
//   psm.bu.capacity            — BU FIFO depth >= 1 package
//   psm.fu.interfaces          — every FU has >= 1 master or slave
//   psm.map.unique             — no process is mapped twice
//   psm.package_size           — package size >= 1 (warning if > 4096)
//
// Cross-model (PSDF x PSM) checks:
//   map.total                  — every PSDF process is mapped
//   map.known                  — every mapped FU realizes a PSDF process
//   map.master_needed          — a process that sends has a master interface
//   map.slave_needed           — a process that receives has a slave
#pragma once

#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/diag.hpp"
#include "support/status.hpp"

namespace segbus::platform {

/// Structural validation of the platform alone.
ValidationReport validate(const PlatformModel& platform);

/// Full system validation: platform structure plus mapping of the given
/// application — the step the paper runs before a PSM is accepted.
ValidationReport validate_mapping(const PlatformModel& platform,
                                  const psdf::PsdfModel& application);

/// OK status or a ValidationError carrying the rendered report.
Status validate_or_error(const PlatformModel& platform);
Status validate_mapping_or_error(const PlatformModel& platform,
                                 const psdf::PsdfModel& application);

}  // namespace segbus::platform
