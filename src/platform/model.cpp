#include "platform/model.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace segbus::platform {

std::string BorderUnitSpec::name() const {
  return str_format("BU%u%u", left + 1, right + 1);
}

Status PlatformModel::set_package_size(std::uint32_t size) {
  if (size == 0) {
    return invalid_argument_error("package size must be positive");
  }
  package_size_ = size;
  return Status::ok();
}

Result<SegmentId> PlatformModel::add_segment(Frequency clock) {
  SEGBUS_RETURN_IF_ERROR(validate_frequency(clock, "segment clock"));
  auto id = static_cast<SegmentId>(segments_.size());
  Segment segment;
  segment.name = segment_display_name(id);
  segment.clock = clock;
  segments_.push_back(std::move(segment));
  if (id > 0) {
    border_units_.push_back(BorderUnitSpec{id - 1, id, 1});
  }
  return id;
}

Status PlatformModel::set_ca_clock(Frequency clock) {
  SEGBUS_RETURN_IF_ERROR(validate_frequency(clock, "CA clock"));
  ca_clock_ = clock;
  return Status::ok();
}

Status PlatformModel::set_bu_capacity(std::uint32_t packages) {
  if (packages == 0) {
    return invalid_argument_error("BU capacity must be at least one package");
  }
  for (BorderUnitSpec& bu : border_units_) bu.capacity_packages = packages;
  return Status::ok();
}

Status PlatformModel::map_process(std::string process, SegmentId segment,
                                  std::uint32_t masters,
                                  std::uint32_t slaves) {
  if (segment >= segments_.size()) {
    return invalid_argument_error(
        str_format("segment %u does not exist (platform has %zu segments)",
                   segment + 1, segments_.size()));
  }
  if (!is_identifier(process)) {
    return invalid_argument_error("process name '" + process +
                                  "' is not a valid identifier");
  }
  if (masters + slaves == 0) {
    return invalid_argument_error(
        "an FU must contain at least one master or one slave (process '" +
        process + "')");
  }
  if (segment_of(process)) {
    return already_exists_error("process '" + process +
                                "' is already mapped");
  }
  segments_[segment].fus.push_back(
      FunctionalUnit{std::move(process), masters, slaves});
  return Status::ok();
}

Status PlatformModel::unmap_process(std::string_view process) {
  for (Segment& segment : segments_) {
    auto it = std::find_if(segment.fus.begin(), segment.fus.end(),
                           [&](const FunctionalUnit& fu) {
                             return fu.process == process;
                           });
    if (it != segment.fus.end()) {
      segment.fus.erase(it);
      return Status::ok();
    }
  }
  return not_found_error("process '" + std::string(process) +
                         "' is not mapped");
}

Status PlatformModel::move_process(std::string_view process, SegmentId to) {
  if (to >= segments_.size()) {
    return invalid_argument_error(
        str_format("segment %u does not exist", to + 1));
  }
  for (Segment& segment : segments_) {
    auto it = std::find_if(segment.fus.begin(), segment.fus.end(),
                           [&](const FunctionalUnit& fu) {
                             return fu.process == process;
                           });
    if (it != segment.fus.end()) {
      FunctionalUnit fu = *it;
      segment.fus.erase(it);
      segments_[to].fus.push_back(std::move(fu));
      return Status::ok();
    }
  }
  return not_found_error("process '" + std::string(process) +
                         "' is not mapped");
}

std::optional<SegmentId> PlatformModel::segment_of(
    std::string_view process) const {
  for (SegmentId id = 0; id < segments_.size(); ++id) {
    for (const FunctionalUnit& fu : segments_[id].fus) {
      if (fu.process == process) return id;
    }
  }
  return std::nullopt;
}

Result<SegmentId> PlatformModel::require_segment_of(
    std::string_view process) const {
  if (auto id = segment_of(process)) return *id;
  return not_found_error("process '" + std::string(process) +
                         "' is not mapped to any segment");
}

std::vector<std::string> PlatformModel::mapped_processes() const {
  std::vector<std::string> out;
  for (const Segment& segment : segments_) {
    for (const FunctionalUnit& fu : segment.fus) out.push_back(fu.process);
  }
  return out;
}

std::uint32_t PlatformModel::distance(SegmentId a, SegmentId b) const {
  return a > b ? a - b : b - a;
}

Result<std::vector<PathHop>> PlatformModel::path(SegmentId from,
                                                 SegmentId to) const {
  if (from >= segments_.size() || to >= segments_.size()) {
    return invalid_argument_error("path endpoints must be valid segments");
  }
  std::vector<PathHop> hops;
  if (from == to) {
    hops.push_back(PathHop{from, std::nullopt});
    return hops;
  }
  const int step = from < to ? 1 : -1;
  SegmentId current = from;
  while (current != to) {
    SegmentId next =
        static_cast<SegmentId>(static_cast<int>(current) + step);
    SEGBUS_ASSIGN_OR_RETURN(std::size_t bu, bu_between(current, next));
    hops.push_back(PathHop{current, bu});
    current = next;
  }
  hops.push_back(PathHop{to, std::nullopt});
  return hops;
}

Result<std::size_t> PlatformModel::bu_between(SegmentId a, SegmentId b) const {
  SegmentId lo = std::min(a, b);
  SegmentId hi = std::max(a, b);
  for (std::size_t i = 0; i < border_units_.size(); ++i) {
    if (border_units_[i].left == lo && border_units_[i].right == hi) {
      return i;
    }
  }
  return not_found_error(str_format(
      "no border unit between segment %u and segment %u", a + 1, b + 1));
}

std::string PlatformModel::segment_display_name(SegmentId id) {
  return str_format("Segment %u", id + 1);
}

std::string PlatformModel::summary() const {
  std::size_t fus = 0;
  for (const Segment& s : segments_) fus += s.fus.size();
  return str_format("%zu segment(s), %zu FU(s), %zu BU(s), package size %u",
                    segments_.size(), fus, border_units_.size(),
                    package_size_);
}

}  // namespace segbus::platform
