// PSM <-> XML scheme codec, matching the paper's §3.4 snippet:
//
//   <xs:complexType name="SBP">
//      <xs:all>
//         <xs:element name="segment1" type="Segment1"/>
//         <xs:element name="segment2" type="Segment2"/>
//         <xs:element name="ca"       type="CA"/>
//         <xs:element name="bu12"     type="BU12"/>
//      </xs:all>
//   </xs:complexType>
//   <xs:complexType name="Segment1">
//      <xs:all>
//         <xs:element name="buRight" type="BU12"/>
//         <xs:element name="p5"      type="P5"/>
//         ...
//         <xs:element name="arbiter" type="SA1"/>
//      </xs:all>
//   </xs:complexType>
//
// Clock frequencies and BU capacities — which the paper configures in the
// tool rather than in the scheme — are carried as segbus:* attributes on
// the CA/segment/BU complex types so a scheme file is self-contained.
#pragma once

#include <string>

#include "platform/model.hpp"
#include "support/status.hpp"
#include "xml/node.hpp"

namespace segbus::platform {

/// Builds the XML scheme document for a platform model.
xml::Document to_xml(const PlatformModel& platform);

/// Reconstructs a platform model from a scheme document.
Result<PlatformModel> from_xml(const xml::Document& document);

/// File-level conveniences.
Status write_platform_file(const PlatformModel& platform,
                           const std::string& path);
Result<PlatformModel> read_platform_file(const std::string& path);

}  // namespace segbus::platform
