// Platform Specific Model (PSM) of a SegBus instance — paper §2.1 / §2.2.
//
// A SegBusPlatform is composed of Segments (each with exactly one Segment
// Arbiter and at least one Functional Unit), exactly one Central Arbiter,
// and Border Units between adjacent segments (Figure 5's hierarchy). The
// platforms studied in the paper have a linear topology; BUs connect
// consecutive segments. Every segment and the CA own a clock domain.
//
// Application mapping: each FU hosts exactly one PSDF process (identified
// here by name, keeping this library independent of segbus::psdf; the core
// library binds the two models).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::platform {

/// Index of a segment within a platform (0-based internally; user-facing
/// names are 1-based: "Segment 1" is segment_index 0).
using SegmentId = std::uint32_t;

inline constexpr SegmentId kInvalidSegment = 0xFFFFFFFFu;

/// A Functional Unit: the library component an application process runs on.
/// Per Figure 5 an FU contains at least one Master or one Slave interface;
/// a master initiates transfers, a slave receives them.
struct FunctionalUnit {
  std::string process;     ///< name of the PSDF process realized by this FU
  std::uint32_t masters = 1;  ///< master interfaces (>=0; masters+slaves >= 1)
  std::uint32_t slaves = 1;   ///< slave interfaces
};

/// One bus segment: a "traditional" packet-based bus with a local arbiter.
struct Segment {
  std::string name;           ///< e.g. "Segment 1"
  Frequency clock;            ///< segment clock domain
  std::vector<FunctionalUnit> fus;
};

/// A Border Unit: the FIFO bridge between two adjacent segments.
struct BorderUnitSpec {
  SegmentId left = kInvalidSegment;   ///< lower-numbered segment
  SegmentId right = kInvalidSegment;  ///< higher-numbered segment
  std::uint32_t capacity_packages = 1;  ///< FIFO depth, in packages

  /// Paper-style name: "BU12" bridges segment 1 and segment 2.
  std::string name() const;
};

/// A hop along the linear path between two segments.
struct PathHop {
  SegmentId segment = kInvalidSegment;  ///< segment the package traverses
  /// Index into PlatformModel::border_units() of the BU *leaving* this
  /// segment toward the next hop; nullopt on the final (destination) hop.
  std::optional<std::size_t> exit_bu;
};

/// The platform instance ("SBP" in the paper's scheme).
class PlatformModel {
 public:
  PlatformModel() = default;
  explicit PlatformModel(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Package size (data items per package) of this configuration.
  std::uint32_t package_size() const noexcept { return package_size_; }
  Status set_package_size(std::uint32_t size);

  // --- structure --------------------------------------------------------
  /// Appends a segment with the given clock; returns its id. BUs for the
  /// linear topology are created automatically between consecutive
  /// segments.
  Result<SegmentId> add_segment(Frequency clock);
  std::size_t segment_count() const noexcept { return segments_.size(); }
  const Segment& segment(SegmentId id) const { return segments_.at(id); }
  const std::vector<Segment>& segments() const noexcept { return segments_; }

  /// The Central Arbiter clock.
  Frequency ca_clock() const noexcept { return ca_clock_; }
  Status set_ca_clock(Frequency clock);

  const std::vector<BorderUnitSpec>& border_units() const noexcept {
    return border_units_;
  }
  /// Sets the FIFO depth of every BU (default 1 package).
  Status set_bu_capacity(std::uint32_t packages);

  // --- mapping ------------------------------------------------------------
  /// Places the FU realizing `process` on `segment`. Each process may be
  /// mapped at most once (OCL constraint psm.map.unique).
  Status map_process(std::string process, SegmentId segment,
                     std::uint32_t masters = 1, std::uint32_t slaves = 1);
  /// Removes a process mapping (used by placement search / re-mapping).
  Status unmap_process(std::string_view process);
  /// Moves a process to another segment (the paper's "shift P9 from
  /// segment 1 to segment 3" experiment).
  Status move_process(std::string_view process, SegmentId to);

  /// Segment hosting `process`, or nullopt when unmapped.
  std::optional<SegmentId> segment_of(std::string_view process) const;
  Result<SegmentId> require_segment_of(std::string_view process) const;

  /// All mapped process names, in (segment, FU) order.
  std::vector<std::string> mapped_processes() const;

  // --- topology -----------------------------------------------------------
  /// Hop count between two segments (0 when equal).
  std::uint32_t distance(SegmentId a, SegmentId b) const;

  /// The ordered traversal from `from` to `to` (linear topology): the
  /// source segment with its exit BU, every intermediate segment with its
  /// exit BU, and the destination segment with no exit. A local transfer
  /// yields a single hop with no exit BU.
  Result<std::vector<PathHop>> path(SegmentId from, SegmentId to) const;

  /// Index of the BU between adjacent segments `a` and `b`.
  Result<std::size_t> bu_between(SegmentId a, SegmentId b) const;

  /// "Segment k" 1-based display name for a segment id.
  static std::string segment_display_name(SegmentId id);

  /// One-line structural summary ("3 segments, 15 FUs, 2 BUs").
  std::string summary() const;

 private:
  std::string name_ = "SBP";
  std::uint32_t package_size_ = 36;
  Frequency ca_clock_ = Frequency::from_mhz(100.0);
  std::vector<Segment> segments_;
  std::vector<BorderUnitSpec> border_units_;
};

}  // namespace segbus::platform
