#include "platform/platform_dot.hpp"

#include "support/strings.hpp"

namespace segbus::platform {

std::string to_dot(const PlatformModel& platform,
                   const PlatformDotOptions& options) {
  std::string out = "digraph \"" + platform.name() + "\" {\n";
  out += "  rankdir=LR;\n";
  out += "  compound=true;\n";
  out += "  node [shape=box, style=rounded];\n";

  // The CA sits above the chain.
  {
    std::string label = "CA";
    if (options.show_clocks) {
      ClockDomain domain("CA", platform.ca_clock());
      label += "\\n" + domain.frequency_label();
    }
    out += str_format("  ca [label=\"%s\", shape=hexagon];\n",
                      label.c_str());
  }

  for (SegmentId id = 0; id < platform.segment_count(); ++id) {
    const Segment& segment = platform.segment(id);
    out += str_format("  subgraph cluster_seg%u {\n", id + 1);
    std::string label = segment.name;
    if (options.show_clocks) {
      ClockDomain domain(segment.name, segment.clock);
      label += " @ " + domain.frequency_label();
    }
    out += str_format("    label=\"%s\";\n", label.c_str());
    out += str_format("    sa%u [label=\"SA%u\", shape=diamond];\n",
                      id + 1, id + 1);
    if (options.show_fus) {
      for (const FunctionalUnit& fu : segment.fus) {
        out += str_format("    fu_%s [label=\"%s\"];\n",
                          fu.process.c_str(), fu.process.c_str());
        out += str_format("    fu_%s -> sa%u [style=dotted, dir=none];\n",
                          fu.process.c_str(), id + 1);
      }
    }
    out += "  }\n";
    // CA controls every SA.
    out += str_format("  ca -> sa%u [style=dashed];\n", id + 1);
  }

  // Border units between consecutive segments.
  for (const BorderUnitSpec& bu : platform.border_units()) {
    const std::string name = to_lower(bu.name());
    out += str_format(
        "  %s [label=\"%s\\ncap %u\", shape=cds];\n", name.c_str(),
        bu.name().c_str(), bu.capacity_packages);
    out += str_format("  sa%u -> %s [dir=both];\n", bu.left + 1,
                      name.c_str());
    out += str_format("  %s -> sa%u [dir=both];\n", name.c_str(),
                      bu.right + 1);
  }

  out += "}\n";
  return out;
}

}  // namespace segbus::platform
