#include "platform/platform_xml.hpp"

#include "support/strings.hpp"
#include "xml/parser.hpp"
#include "xml/query.hpp"
#include "xml/writer.hpp"

namespace segbus::platform {

namespace {
constexpr std::string_view kXsdNamespace = "http://www.w3.org/2001/XMLSchema";
constexpr std::string_view kSegBusNamespace = "urn:segbus:psm";

std::string mhz_string(Frequency f) {
  // %.6g is the human-friendly form, but it drops precision for
  // frequencies needing more than six significant digits; fall back to
  // %.17g whenever the short form does not parse back to the same clock.
  std::string text = str_format("%.6g", f.mhz());
  auto parsed = parse_double(text);
  if (!parsed || Frequency::from_mhz(*parsed).khz() != f.khz()) {
    text = str_format("%.17g", f.mhz());
  }
  return text;
}

/// True for the wiring elements to_xml adds to every segment (buLeft /
/// buRight / arbiter). They are recognized by name AND structural type so
/// that an application process that happens to be *named* "Arbiter" (its
/// element is <xs:element name="arbiter" type="Arbiter"/>) still round-trips
/// as a functional unit instead of silently vanishing from the mapping.
bool is_structural_element(std::string_view name, std::string_view type) {
  auto numbered = [](std::string_view t, std::string_view prefix) {
    if (t.size() <= prefix.size() || t.substr(0, prefix.size()) != prefix) {
      return false;
    }
    for (char c : t.substr(prefix.size())) {
      if (c < '0' || c > '9') return false;
    }
    return true;
  };
  if ((name == "buLeft" || name == "buRight") && numbered(type, "BU")) {
    return true;
  }
  return name == "arbiter" && numbered(type, "SA");
}
}  // namespace

xml::Document to_xml(const PlatformModel& platform) {
  auto root = std::make_unique<xml::Element>("xs:schema");
  root->set_attribute("xmlns:xs", kXsdNamespace);
  root->set_attribute("xmlns:segbus", kSegBusNamespace);
  root->set_attribute("segbus:platform", platform.name());
  root->set_attribute("segbus:packageSize",
                      str_format("%u", platform.package_size()));

  // Top-level SBP structure.
  xml::Element& sbp = root->add_child("xs:complexType");
  sbp.set_attribute("name", "SBP");
  xml::Element& sbp_all = sbp.add_child("xs:all");
  for (SegmentId id = 0; id < platform.segment_count(); ++id) {
    xml::Element& e = sbp_all.add_child("xs:element");
    e.set_attribute("name", str_format("segment%u", id + 1));
    e.set_attribute("type", str_format("Segment%u", id + 1));
  }
  {
    xml::Element& e = sbp_all.add_child("xs:element");
    e.set_attribute("name", "ca");
    e.set_attribute("type", "CA");
  }
  for (const BorderUnitSpec& bu : platform.border_units()) {
    xml::Element& e = sbp_all.add_child("xs:element");
    e.set_attribute("name", to_lower(bu.name()));
    e.set_attribute("type", bu.name());
  }

  // CA type with its clock.
  {
    xml::Element& ca = root->add_child("xs:complexType");
    ca.set_attribute("name", "CA");
    ca.set_attribute("segbus:frequencyMHz", mhz_string(platform.ca_clock()));
  }

  // BU types with capacity.
  for (const BorderUnitSpec& bu : platform.border_units()) {
    xml::Element& e = root->add_child("xs:complexType");
    e.set_attribute("name", bu.name());
    e.set_attribute("segbus:capacity",
                    str_format("%u", bu.capacity_packages));
  }

  // Segment types.
  for (SegmentId id = 0; id < platform.segment_count(); ++id) {
    const Segment& segment = platform.segment(id);
    xml::Element& type = root->add_child("xs:complexType");
    type.set_attribute("name", str_format("Segment%u", id + 1));
    type.set_attribute("segbus:frequencyMHz", mhz_string(segment.clock));
    xml::Element& all = type.add_child("xs:all");
    if (id > 0) {
      xml::Element& e = all.add_child("xs:element");
      e.set_attribute("name", "buLeft");
      e.set_attribute("type", str_format("BU%u%u", id, id + 1));
    }
    if (id + 1 < platform.segment_count()) {
      xml::Element& e = all.add_child("xs:element");
      e.set_attribute("name", "buRight");
      e.set_attribute("type", str_format("BU%u%u", id + 1, id + 2));
    }
    for (const FunctionalUnit& fu : segment.fus) {
      xml::Element& e = all.add_child("xs:element");
      e.set_attribute("name", to_lower(fu.process));
      e.set_attribute("type", fu.process);
      if (fu.masters != 1) {
        e.set_attribute("segbus:masters", str_format("%u", fu.masters));
      }
      if (fu.slaves != 1) {
        e.set_attribute("segbus:slaves", str_format("%u", fu.slaves));
      }
    }
    xml::Element& arbiter = all.add_child("xs:element");
    arbiter.set_attribute("name", "arbiter");
    arbiter.set_attribute("type", str_format("SA%u", id + 1));
  }

  return xml::Document(std::move(root));
}

namespace {

Result<Frequency> read_frequency(const xml::Element& element,
                                 std::string_view what) {
  auto attr = element.attribute("segbus:frequencyMHz");
  if (!attr) {
    return parse_error(std::string(what) +
                       " is missing a segbus:frequencyMHz attribute");
  }
  auto mhz = parse_double(*attr);
  if (!mhz || *mhz <= 0.0) {
    return parse_error(std::string(what) + " has invalid frequency '" +
                       std::string(*attr) + "'");
  }
  return Frequency::from_mhz(*mhz);
}

}  // namespace

Result<PlatformModel> from_xml(const xml::Document& document) {
  const xml::Element& root = document.root();
  if (root.local_name() != "schema") {
    return parse_error("PSM document root must be an xs:schema element, "
                       "found <" +
                       root.name() + ">");
  }
  PlatformModel platform(root.attribute_or("segbus:platform", "SBP"));
  {
    std::string attr = root.attribute_or("segbus:packageSize", "36");
    SEGBUS_ASSIGN_OR_RETURN(std::uint64_t parsed,
                            parse_uint_or_error(attr, "segbus:packageSize"));
    if (parsed == 0 || parsed > 0xFFFFFFFFull) {
      return parse_error("segbus:packageSize out of range");
    }
    SEGBUS_RETURN_IF_ERROR(
        platform.set_package_size(static_cast<std::uint32_t>(parsed)));
  }

  SEGBUS_ASSIGN_OR_RETURN(
      const xml::Element* sbp,
      xml::require_first(root, "complexType[@name='SBP']"));

  // Count segments from the SBP structure ("the emulator application first
  // looks for the SegBus platform instance ... analyzes its structure by
  // counting how many segments and BU it contains").
  std::vector<std::string> segment_types;
  std::vector<std::string> bu_types;
  bool saw_ca = false;
  const xml::Element* sbp_all = sbp->first_child_local("all");
  if (sbp_all == nullptr) sbp_all = sbp;
  for (const xml::Element* child : sbp_all->children_local("element")) {
    SEGBUS_ASSIGN_OR_RETURN(std::string type, child->require_attribute("type"));
    if (starts_with(type, "Segment")) {
      segment_types.push_back(type);
    } else if (type == "CA") {
      saw_ca = true;
    } else if (starts_with(type, "BU")) {
      bu_types.push_back(type);
    } else {
      return parse_error("SBP contains element of unknown type '" + type +
                         "'");
    }
  }
  if (segment_types.empty()) {
    return parse_error("SBP declares no segments");
  }
  if (!saw_ca) {
    return parse_error("SBP declares no central arbiter (CA)");
  }

  // CA clock.
  SEGBUS_ASSIGN_OR_RETURN(const xml::Element* ca,
                          xml::require_first(root,
                                             "complexType[@name='CA']"));
  SEGBUS_ASSIGN_OR_RETURN(Frequency ca_clock, read_frequency(*ca, "CA"));
  SEGBUS_RETURN_IF_ERROR(platform.set_ca_clock(ca_clock));

  // Segments in declaration order (Segment1, Segment2, ...).
  for (std::size_t i = 0; i < segment_types.size(); ++i) {
    std::string expected = str_format("Segment%zu", i + 1);
    // Accept any ordering in SBP by looking the type up by its number.
    SEGBUS_ASSIGN_OR_RETURN(
        const xml::Element* type,
        xml::require_first(root, "complexType[@name='" + expected + "']"));
    SEGBUS_ASSIGN_OR_RETURN(Frequency clock,
                            read_frequency(*type, expected));
    SEGBUS_ASSIGN_OR_RETURN(SegmentId segment, platform.add_segment(clock));
    const xml::Element* all = type->first_child_local("all");
    if (all == nullptr) all = type;
    for (const xml::Element* child : all->children_local("element")) {
      SEGBUS_ASSIGN_OR_RETURN(std::string name,
                              child->require_attribute("name"));
      SEGBUS_ASSIGN_OR_RETURN(std::string fu_type,
                              child->require_attribute("type"));
      if (is_structural_element(name, fu_type)) {
        continue;  // structural wiring, reconstructed from the topology
      }
      std::uint32_t masters = 1;
      std::uint32_t slaves = 1;
      if (auto attr = child->attribute("segbus:masters")) {
        SEGBUS_ASSIGN_OR_RETURN(std::uint64_t v,
                                parse_uint_or_error(*attr, "segbus:masters"));
        masters = static_cast<std::uint32_t>(v);
      }
      if (auto attr = child->attribute("segbus:slaves")) {
        SEGBUS_ASSIGN_OR_RETURN(std::uint64_t v,
                                parse_uint_or_error(*attr, "segbus:slaves"));
        slaves = static_cast<std::uint32_t>(v);
      }
      SEGBUS_RETURN_IF_ERROR(
          platform.map_process(fu_type, segment, masters, slaves));
    }
  }

  // BU capacities (BUs themselves were created by add_segment).
  if (bu_types.size() != platform.border_units().size()) {
    return parse_error(str_format(
        "SBP declares %zu border units but a linear %zu-segment platform "
        "requires %zu",
        bu_types.size(), platform.segment_count(),
        platform.border_units().size()));
  }
  for (const BorderUnitSpec& bu : platform.border_units()) {
    SEGBUS_ASSIGN_OR_RETURN(
        const xml::Element* type,
        xml::require_first(root, "complexType[@name='" + bu.name() + "']"));
    if (auto attr = type->attribute("segbus:capacity")) {
      SEGBUS_ASSIGN_OR_RETURN(std::uint64_t v,
                              parse_uint_or_error(*attr, "segbus:capacity"));
      if (v == 0) {
        return parse_error(bu.name() + " has zero capacity");
      }
      // Apply per-BU capacity; set_bu_capacity is global, so poke the spec
      // through a rebuild-free path: all BUs share capacity in this
      // implementation when read back individually equal values.
    }
  }
  // Per-BU capacities: the model stores capacity per BU; re-read them.
  // (All paper configurations use depth 1.)
  {
    std::uint32_t capacity = platform.border_units().empty()
                                 ? 1u
                                 : platform.border_units().front()
                                       .capacity_packages;
    bool uniform = true;
    std::uint32_t first_seen = 0;
    bool any = false;
    for (const BorderUnitSpec& bu : platform.border_units()) {
      SEGBUS_ASSIGN_OR_RETURN(
          const xml::Element* type,
          xml::require_first(root,
                             "complexType[@name='" + bu.name() + "']"));
      std::uint32_t c = 1;
      if (auto attr = type->attribute("segbus:capacity")) {
        SEGBUS_ASSIGN_OR_RETURN(std::uint64_t v,
                                parse_uint_or_error(*attr,
                                                    "segbus:capacity"));
        c = static_cast<std::uint32_t>(v);
      }
      if (!any) {
        first_seen = c;
        any = true;
      } else if (c != first_seen) {
        uniform = false;
      }
    }
    if (any && uniform && first_seen != capacity) {
      SEGBUS_RETURN_IF_ERROR(platform.set_bu_capacity(first_seen));
    } else if (any && !uniform) {
      return parse_error(
          "per-BU capacities differ; this implementation supports a uniform "
          "BU depth");
    }
  }

  return platform;
}

Status write_platform_file(const PlatformModel& platform,
                           const std::string& path) {
  return xml::write_file(to_xml(platform), path);
}

Result<PlatformModel> read_platform_file(const std::string& path) {
  SEGBUS_ASSIGN_OR_RETURN(xml::Document doc, xml::parse_file(path));
  return from_xml(doc);
}

}  // namespace segbus::platform
