// Chrome trace-event JSON export (Perfetto / chrome://tracing loadable).
//
// Merges two time axes into one file as two trace "processes":
//   pid 0 — host wall-clock phase spans from the PhaseProfiler
//           (parse -> platform build -> emulate -> report), ph "X";
//   pid 1 — emulated time: every protocol trace event as an instant
//           (ph "i") on its clock domain's thread, BU occupancy and
//           per-element activity as counter tracks (ph "C").
// Emulated timestamps map 1 ps -> 1e-6 trace-us so Perfetto renders the
// picosecond protocol timeline with full precision.
#pragma once

#include <string>

#include <vector>

#include "emu/stats.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/status.hpp"

namespace segbus::obs {

/// Builds the trace-event document. `profiler` is optional (host spans are
/// omitted when null); protocol instants require a result recorded with
/// EngineOptions::record_trace.
JsonValue chrome_trace_json(const emu::EmulationResult& result,
                            const PhaseProfiler* profiler = nullptr);

/// Host-only variant: just the profiler's phase spans.
JsonValue chrome_trace_json(const PhaseProfiler& profiler);

/// Serializes chrome_trace_json(result, profiler) to `path`.
Status write_chrome_trace_file(const std::string& path,
                               const emu::EmulationResult& result,
                               const PhaseProfiler* profiler = nullptr);

/// Merge mode: host span-tree records (tracer spans, pid 0 — one trace
/// thread per span-record thread is overkill, so spans render on tid 0
/// nested by their tree depth) alongside the emulated-time protocol
/// events (pid 1) on one timeline. Span timestamps are already
/// microseconds on the tracer's clock; pass `result` = nullptr for a
/// host-only merge.
JsonValue chrome_trace_json(const std::vector<SpanRecord>& spans,
                            const emu::EmulationResult* result);

}  // namespace segbus::obs
