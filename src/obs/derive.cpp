#include "obs/derive.hpp"

#include <algorithm>
#include <map>

namespace segbus::obs {

namespace {

std::string flow_label(const emu::EmulationResult& result,
                       std::uint32_t flow) {
  if (flow >= result.flows.size()) return "?";
  return result.flows[flow].source + "->" + result.flows[flow].target;
}

}  // namespace

Status derive_metrics(const emu::EmulationResult& result,
                      const platform::PlatformModel& platform,
                      MetricsRegistry& registry) {
  // --- summary gauges (always available) ----------------------------------
  for (std::size_t s = 0; s < result.sas.size(); ++s) {
    const Labels labels{{"segment", platform.segment(
                                        static_cast<platform::SegmentId>(s))
                                        .name}};
    registry
        .gauge("segbus_sa_utilization", labels,
               "Busy fraction of a segment bus up to its last activity")
        .set(result.sa_utilization(s));
  }
  registry
      .gauge("segbus_ca_utilization", {},
             "Fraction of CA ticks with a transaction in flight")
      .set(result.ca_utilization());
  registry
      .gauge("segbus_execution_time_ps", {},
             "Total execution time (max over arbiter execution times)")
      .set(static_cast<double>(result.total_execution_time.count()));
  const std::vector<platform::BorderUnitSpec>& bus = platform.border_units();
  for (std::size_t b = 0; b < result.bus.size() && b < bus.size(); ++b) {
    const Labels labels{{"bu", bus[b].name()}};
    registry
        .gauge("segbus_bu_useful_ticks", labels,
               "Border-unit useful-period ticks (loads + unloads)")
        .set(static_cast<double>(result.bus[b].up_ticks));
    registry
        .gauge("segbus_bu_waiting_ticks", labels,
               "Border-unit waiting-period ticks (loaded, awaiting grant)")
        .set(static_cast<double>(result.bus[b].wp_ticks));
  }

  // --- trace-derived series -----------------------------------------------
  if (result.trace.empty()) return Status::ok();
  const std::vector<double> ps_bounds = exponential_bounds(1000.0, 2.0, 32);

  // Request->grant and grant->delivery latency per flow, and CA path-setup
  // latency (grant -> the package's first BU load).
  struct LatencyFamily {
    emu::TraceKind earlier;
    emu::TraceKind later;
    const char* name;
    const char* help;
  };
  const LatencyFamily families[] = {
      {emu::TraceKind::kRequest, emu::TraceKind::kGrant,
       "segbus_flow_request_to_grant_ps",
       "Per-flow arbitration latency: bus request to grant, picoseconds"},
      {emu::TraceKind::kGrant, emu::TraceKind::kDelivery,
       "segbus_flow_grant_to_delivery_ps",
       "Per-flow transfer latency: grant to delivery, picoseconds"},
      {emu::TraceKind::kGrant, emu::TraceKind::kBuLoad,
       "segbus_ca_path_setup_ps",
       "Inter-segment path setup: CA grant to the first BU load, "
       "picoseconds"},
  };
  for (const LatencyFamily& family : families) {
    for (const auto& [earlier, later] :
         emu::match_events(result.trace, family.earlier, family.later)) {
      const emu::TraceEvent& from = result.trace[earlier];
      const emu::TraceEvent& to = result.trace[later];
      registry
          .histogram(family.name, ps_bounds,
                     {{"flow", flow_label(result, to.flow)}}, family.help)
          .observe(static_cast<double>((to.time - from.time).count()));
    }
  }

  // BU queue depth / occupancy: sample the depth after every load/unload.
  std::map<std::uint32_t, std::int64_t> depth;
  std::map<std::uint32_t, std::int64_t> max_depth;
  const std::vector<double> depth_bounds = linear_bounds(0.0, 1.0, 17);
  for (const emu::TraceEvent& event : result.trace) {
    if (event.kind != emu::TraceKind::kBuLoad &&
        event.kind != emu::TraceKind::kBuUnload) {
      continue;
    }
    std::int64_t& d = depth[event.element];
    d += event.kind == emu::TraceKind::kBuLoad ? 1 : -1;
    max_depth[event.element] = std::max(max_depth[event.element], d);
    const std::string name = event.element < bus.size()
                                 ? bus[event.element].name()
                                 : "BU?";
    registry
        .histogram("segbus_bu_queue_depth", depth_bounds, {{"bu", name}},
                   "Border-unit occupancy (packages) sampled at every "
                   "load/unload transition")
        .observe(static_cast<double>(d));
  }
  for (const auto& [bu, peak] : max_depth) {
    const std::string name = bu < bus.size() ? bus[bu].name() : "BU?";
    registry
        .gauge("segbus_bu_queue_depth_max", {{"bu", name}},
               "Peak border-unit occupancy in packages")
        .set(static_cast<double>(peak));
  }

  // Per-segment bus-utilization time series (busy ticks per activity
  // bucket) when the run recorded activity.
  if (!result.activity.empty() && result.activity_bucket.count() > 0) {
    for (const emu::ActivitySeries& series : result.activity) {
      Histogram histogram = registry.histogram(
          "segbus_busy_ticks_per_bucket",
          exponential_bounds(1.0, 2.0, 16), {{"element", series.element}},
          "Distribution of per-activity-bucket busy tick counts");
      for (std::uint32_t ticks : series.busy_ticks_per_bucket) {
        histogram.observe(static_cast<double>(ticks));
      }
    }
  }
  return Status::ok();
}

}  // namespace segbus::obs
