#include "obs/export.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "support/build_info.hpp"
#include "support/strings.hpp"

namespace segbus::obs {

namespace {

/// Prometheus escaping for label values and help text: backslash, quote
/// and newline.
std::string prom_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Numbers render as integers when they are integral (Prometheus accepts
/// both; integral output keeps golden files readable).
std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    return str_format("%lld", static_cast<long long>(value));
  }
  return str_format("%g", value);
}

std::string label_block(const Labels& labels, std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += prom_escape(value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += std::string(extra_key) + "=\"" + prom_escape(extra_value) + "\"";
  }
  out += '}';
  return out;
}

std::string_view type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string labels_csv(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ';';
    out += key + "=" + value;
  }
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  std::set<std::string> families_seen;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const Metric& metric = registry.metric(i);
    if (families_seen.insert(metric.name).second) {
      if (!metric.help.empty()) {
        out += "# HELP " + metric.name + " " + prom_escape(metric.help) +
               "\n";
      }
      out += "# TYPE " + metric.name + " " +
             std::string(type_name(metric.kind)) + "\n";
    }
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += metric.name + label_block(metric.labels) + " " +
               str_format("%llu",
                          static_cast<unsigned long long>(
                              metric.counter_value)) +
               "\n";
        break;
      case MetricKind::kGauge:
        out += metric.name + label_block(metric.labels) + " " +
               format_number(metric.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        // Cumulative le buckets; underflow samples satisfy every le bound,
        // so they seed the running count.
        std::uint64_t cumulative = metric.underflow;
        for (std::size_t b = 0; b < metric.bounds.size(); ++b) {
          cumulative += metric.buckets[b];
          out += metric.name + "_bucket" +
                 label_block(metric.labels, "le",
                             format_number(metric.bounds[b])) +
                 " " +
                 str_format("%llu",
                            static_cast<unsigned long long>(cumulative)) +
                 "\n";
        }
        cumulative += metric.overflow();
        out += metric.name + "_bucket" +
               label_block(metric.labels, "le", "+Inf") + " " +
               str_format("%llu",
                          static_cast<unsigned long long>(cumulative)) +
               "\n";
        out += metric.name + "_sum" + label_block(metric.labels) + " " +
               format_number(metric.sum) + "\n";
        out += metric.name + "_count" + label_block(metric.labels) + " " +
               str_format("%llu",
                          static_cast<unsigned long long>(
                              metric.observations)) +
               "\n";
        break;
      }
    }
  }
  return out;
}

JsonValue to_json_series(const MetricsRegistry& registry) {
  JsonValue series = JsonValue::array();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const Metric& metric = registry.metric(i);
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue::string(metric.name));
    entry.set("type", JsonValue::string(type_name(metric.kind)));
    JsonValue labels = JsonValue::object();
    for (const auto& [key, value] : metric.labels) {
      labels.set(key, JsonValue::string(value));
    }
    entry.set("labels", std::move(labels));
    switch (metric.kind) {
      case MetricKind::kCounter:
        entry.set("value", JsonValue::unsigned_integer(metric.counter_value));
        break;
      case MetricKind::kGauge:
        entry.set("value", JsonValue::number(metric.gauge_value));
        break;
      case MetricKind::kHistogram: {
        JsonValue bounds = JsonValue::array();
        for (double bound : metric.bounds) {
          bounds.push(JsonValue::number(bound));
        }
        JsonValue buckets = JsonValue::array();
        for (std::uint64_t count : metric.buckets) {
          buckets.push(JsonValue::unsigned_integer(count));
        }
        entry.set("bounds", std::move(bounds));
        entry.set("buckets", std::move(buckets));
        entry.set("underflow", JsonValue::unsigned_integer(metric.underflow));
        entry.set("count", JsonValue::unsigned_integer(metric.observations));
        entry.set("sum", JsonValue::number(metric.sum));
        entry.set("p50", JsonValue::number(metric.quantile(0.5)));
        entry.set("p99", JsonValue::number(metric.quantile(0.99)));
        break;
      }
    }
    series.push(std::move(entry));
  }
  return series;
}

JsonValue to_json(const MetricsRegistry& registry) {
  JsonValue root = JsonValue::object();
  root.set("metrics", to_json_series(registry));
  return root;
}

CsvWriter to_csv(const MetricsRegistry& registry) {
  CsvWriter csv({"name", "type", "labels", "value", "count", "sum", "p50",
                 "p99"});
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const Metric& metric = registry.metric(i);
    std::string value;
    std::string count;
    std::string sum;
    std::string p50;
    std::string p99;
    switch (metric.kind) {
      case MetricKind::kCounter:
        value = str_format(
            "%llu", static_cast<unsigned long long>(metric.counter_value));
        break;
      case MetricKind::kGauge:
        value = format_number(metric.gauge_value);
        break;
      case MetricKind::kHistogram:
        count = str_format(
            "%llu", static_cast<unsigned long long>(metric.observations));
        sum = format_number(metric.sum);
        p50 = format_number(metric.quantile(0.5));
        p99 = format_number(metric.quantile(0.99));
        break;
    }
    csv.add_row({metric.name, std::string(type_name(metric.kind)),
                 labels_csv(metric.labels), value, count, sum, p50, p99});
  }
  return csv;
}

Status write_text_file(const std::string& path, std::string_view text) {
  std::error_code ec;
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    if (ec) {
      return internal_error("cannot create directory for " + path + ": " +
                            ec.message());
    }
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) {
    return internal_error("cannot open " + path + " for writing");
  }
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file.good()) {
    return internal_error("short write to " + path);
  }
  return Status::ok();
}

void add_build_info(MetricsRegistry& registry) {
  const BuildInfo& info = build_info();
  registry
      .gauge("segbus_build_info",
             {{"build_type", info.build_type},
              {"compiler", info.compiler},
              {"revision", info.git_hash},
              {"version", info.version}},
             "build identity (always 1; the labels carry the information)")
      .set(1.0);
}

}  // namespace segbus::obs
