#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "support/strings.hpp"

namespace segbus::obs {

namespace {

/// Canonical lookup key: name + sorted "key=value" label pairs, separated
/// by characters that cannot appear unescaped in either.
std::string metric_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

void sort_labels(Labels& labels) {
  std::sort(labels.begin(), labels.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// Metric
// ---------------------------------------------------------------------------

void Metric::observe(double value) noexcept {
  ++observations;
  sum += value;
  if (value < floor) {
    ++underflow;
    return;
  }
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds.begin(), it));
  ++buckets[bucket];  // it == end() -> the +Inf overflow bucket
}

double Metric::quantile(double q) const noexcept {
  if (observations == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(observations);
  double cumulative = static_cast<double>(underflow);
  if (rank <= cumulative) return floor;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (rank <= cumulative + in_bucket) {
      if (i >= bounds.size()) {
        // Overflow bucket: clamp to the largest representable bound.
        return bounds.empty() ? floor : bounds.back();
      }
      const double lo = i == 0 ? floor : bounds[i - 1];
      const double hi = bounds[i];
      const double within = in_bucket == 0.0
                                ? 1.0
                                : (rank - cumulative) / in_bucket;
      return lo + within * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? floor : bounds.back();
}

Status Metric::combine(const Metric& other) {
  if (kind != other.kind) {
    return invalid_argument_error("metric kind mismatch merging '" + name +
                                  "'");
  }
  switch (kind) {
    case MetricKind::kCounter:
      counter_value += other.counter_value;
      break;
    case MetricKind::kGauge:
      if (other.gauge_set) {
        gauge_value = other.gauge_value;
        gauge_set = true;
      }
      break;
    case MetricKind::kHistogram: {
      if (bounds != other.bounds) {
        return invalid_argument_error(
            "histogram bucket layout mismatch merging '" + name + "'");
      }
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        buckets[i] += other.buckets[i];
      }
      underflow += other.underflow;
      observations += other.observations;
      sum += other.sum;
      break;
    }
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Bucket-bound factories
// ---------------------------------------------------------------------------

std::vector<double> linear_bounds(double start, double width,
                                  std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double value = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(value);
    value *= factor;
  }
  return bounds;
}

std::vector<double> hdr_bounds(std::uint64_t max_value,
                               unsigned sub_buckets) {
  std::vector<double> bounds;
  if (max_value == 0 || sub_buckets == 0) return bounds;
  std::uint64_t width = 1;
  std::uint64_t value = 0;
  while (value < max_value) {
    for (unsigned i = 0; i < sub_buckets && value < max_value; ++i) {
      value += width;
      bounds.push_back(static_cast<double>(value));
    }
    width *= 2;
  }
  return bounds;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Metric& MetricsRegistry::find_or_create(MetricKind kind,
                                        std::string_view name, Labels labels,
                                        std::string_view help) {
  sort_labels(labels);
  const std::string key = metric_key(name, labels);
  if (auto it = index_.find(key); it != index_.end()) {
    return metrics_[it->second];
  }
  Metric metric;
  metric.kind = kind;
  metric.name = std::string(name);
  metric.labels = std::move(labels);
  metric.help = std::string(help);
  index_.emplace(key, metrics_.size());
  metrics_.push_back(std::move(metric));
  return metrics_.back();
}

Counter MetricsRegistry::counter(std::string_view name, Labels labels,
                                 std::string_view help) {
  return Counter(
      &find_or_create(MetricKind::kCounter, name, std::move(labels), help));
}

Gauge MetricsRegistry::gauge(std::string_view name, Labels labels,
                             std::string_view help) {
  return Gauge(
      &find_or_create(MetricKind::kGauge, name, std::move(labels), help));
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds,
                                     Labels labels, std::string_view help,
                                     double floor) {
  Metric& metric =
      find_or_create(MetricKind::kHistogram, name, std::move(labels), help);
  if (metric.buckets.empty()) {  // first registration fixes the layout
    metric.bounds = std::move(bounds);
    metric.buckets.assign(metric.bounds.size() + 1, 0);
    metric.floor = floor;
  }
  return Histogram(&metric);
}

const Metric* MetricsRegistry::find(std::string_view name,
                                    Labels labels) const {
  sort_labels(labels);
  const auto it = index_.find(metric_key(name, labels));
  return it == index_.end() ? nullptr : &metrics_[it->second];
}

std::optional<Metric> MetricsRegistry::sum_family(
    std::string_view name) const {
  std::optional<Metric> total;
  for (const Metric& metric : metrics_) {
    if (metric.name != name) continue;
    if (!total) {
      total = metric;
      total->labels.clear();
    } else if (!total->combine(metric).is_ok()) {
      return std::nullopt;
    }
  }
  return total;
}

std::uint64_t MetricsRegistry::family_count(std::string_view name) const {
  std::uint64_t count = 0;
  for (const Metric& metric : metrics_) {
    if (metric.name != name) continue;
    count += metric.kind == MetricKind::kHistogram ? metric.observations
                                                   : metric.counter_value;
  }
  return count;
}

Status MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const Metric& metric : other.metrics_) {
    Metric& mine =
        find_or_create(metric.kind, metric.name, metric.labels, metric.help);
    if (mine.kind == MetricKind::kHistogram && mine.buckets.empty()) {
      mine.bounds = metric.bounds;
      mine.buckets.assign(mine.bounds.size() + 1, 0);
      mine.floor = metric.floor;
    }
    if (mine.help.empty()) mine.help = metric.help;
    SEGBUS_RETURN_IF_ERROR(mine.combine(metric));
  }
  return Status::ok();
}

}  // namespace segbus::obs
