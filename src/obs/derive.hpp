// Derived instrumentation: metrics computed offline from a finished
// emulation's statistics and protocol trace, complementing the engine's
// live per-domain counters (see EngineOptions::record_metrics).
//
//   - per-flow request->grant and grant->delivery latency histograms (ps)
//   - CA path-setup latency (grant -> first BU load) per flow
//   - BU queue depth / occupancy sampled at every load/unload transition
//   - per-segment bus utilization and per-element summary gauges
//
// Utilization gauges need only the base statistics; the latency/occupancy
// series need a trace (EngineOptions::record_trace) and are skipped —
// not an error — when the result carries none.
#pragma once

#include "emu/stats.hpp"
#include "obs/metrics.hpp"
#include "platform/model.hpp"
#include "support/status.hpp"

namespace segbus::obs {

Status derive_metrics(const emu::EmulationResult& result,
                      const platform::PlatformModel& platform,
                      MetricsRegistry& registry);

}  // namespace segbus::obs
