// Host wall-clock phase profiler: RAII spans over the tool-chain pipeline
// (parse -> platform build -> comm matrix -> emulate -> report). Spans nest;
// records feed the telemetry summary table and merge with emulated-time
// trace events into the Chrome trace-event export (chrome_trace.hpp).
//
// Not thread-safe: one profiler instruments one pipeline on one thread
// (the emulation engine's own parallelism happens *inside* a span).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace segbus::obs {

class PhaseProfiler {
 public:
  /// One recorded phase. Times are microseconds since the profiler was
  /// constructed; `duration_us` is 0 while the span is still open.
  struct Phase {
    std::string name;
    std::uint64_t start_us = 0;
    std::uint64_t duration_us = 0;
    unsigned depth = 0;  ///< nesting level at open time
    bool closed = false;
  };

  /// RAII handle: closes its phase on destruction (or explicit close()).
  class Span {
   public:
    Span(Span&& other) noexcept
        : profiler_(other.profiler_), index_(other.index_) {
      other.profiler_ = nullptr;
    }
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { close(); }

    void close() {
      if (profiler_ != nullptr) profiler_->close_span(index_);
      profiler_ = nullptr;
    }

   private:
    friend class PhaseProfiler;
    Span(PhaseProfiler* profiler, std::size_t index)
        : profiler_(profiler), index_(index) {}
    PhaseProfiler* profiler_;
    std::size_t index_;
  };

  PhaseProfiler() : epoch_(std::chrono::steady_clock::now()) {}

  /// Opens a phase; it closes when the returned span is destroyed.
  [[nodiscard]] Span span(std::string name);

  /// Microseconds elapsed since construction.
  std::uint64_t now_us() const;

  const std::vector<Phase>& phases() const noexcept { return phases_; }

  /// Phase table: name (indented by nesting), duration, share of the
  /// profiled wall-clock.
  std::string render() const;

 private:
  void close_span(std::size_t index);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<Phase> phases_;
  unsigned depth_ = 0;
};

}  // namespace segbus::obs
