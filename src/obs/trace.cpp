#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <map>
#include <random>

#include "obs/flight_recorder.hpp"
#include "support/strings.hpp"

namespace segbus::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// splitmix64 — the same finalizer support/rng builds on; good enough to
/// whiten seeds and to hash trace ids for the sampling decision.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::optional<std::uint64_t> parse_hex64(std::string_view text) noexcept {
  std::uint64_t value = 0;
  for (char c : text) {
    const int digit = hex_digit(c);
    if (digit < 0) return std::nullopt;
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

}  // namespace

// --- TraceId ----------------------------------------------------------------

std::string TraceId::to_hex() const {
  return str_format("%016" PRIx64 "%016" PRIx64, hi, lo);
}

std::optional<TraceId> TraceId::from_hex(std::string_view text) {
  TraceId id;
  if (text.size() == 32) {
    auto hi = parse_hex64(text.substr(0, 16));
    auto lo = parse_hex64(text.substr(16));
    if (!hi || !lo) return std::nullopt;
    id.hi = *hi;
    id.lo = *lo;
  } else if (text.size() == 16) {
    auto lo = parse_hex64(text);
    if (!lo) return std::nullopt;
    id.lo = *lo;
  } else {
    return std::nullopt;
  }
  if (!id.valid()) return std::nullopt;
  return id;
}

TraceId TraceId::generate() {
  // Seeded once per thread from random_device; no locks on the fast path.
  thread_local std::mt19937_64 rng{[] {
    std::random_device device;
    return (static_cast<std::uint64_t>(device()) << 32) ^ device() ^
           steady_ns();
  }()};
  TraceId id;
  do {
    id.hi = rng();
    id.lo = rng();
  } while (!id.valid());
  return id;
}

TraceId TraceId::from_seed(std::uint64_t seed) noexcept {
  TraceId id;
  id.hi = mix64(seed ^ 0x5e6b5e6b5e6b5e6bULL);
  id.lo = mix64(seed + 0x9e3779b97f4a7c15ULL);
  if (!id.valid()) id.lo = 1;  // unreachable in practice, kept for safety
  return id;
}

// --- Tracer thread buffers --------------------------------------------------

/// Single-producer ring of finished spans. The owning thread appends
/// lock-free (slot write, then a release publish of `head`); collectors
/// serialize on the tracer's registry mutex and advance `tail`.
struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) : slots(capacity) {}

  std::vector<SpanRecord> slots;
  std::atomic<std::uint64_t> head{0};     ///< next write index (monotonic)
  std::atomic<std::uint64_t> tail{0};     ///< consumed below this index
  std::atomic<std::uint64_t> dropped{0};  ///< lost to a full ring

  void push(SpanRecord record) noexcept {
    const std::uint64_t head_now = head.load(std::memory_order_relaxed);
    if (head_now - tail.load(std::memory_order_acquire) >= slots.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots[head_now % slots.size()] = std::move(record);
    head.store(head_now + 1, std::memory_order_release);
  }
};

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{0};

}  // namespace

Tracer::Tracer() : Tracer(Config{}) {}

Tracer::Tracer(Config config)
    : config_(config),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed) + 1),
      epoch_ns_(steady_ns()) {
  if (config_.buffer_capacity == 0) config_.buffer_capacity = 1;
  config_.sample_ratio = std::clamp(config_.sample_ratio, 0.0, 1.0);
}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_us() const {
  return (steady_ns() - epoch_ns_) / 1000;
}

bool Tracer::sample(const TraceId& trace, bool force) const noexcept {
  if (force) return true;
  if (config_.sample_ratio <= 0.0) return false;
  if (config_.sample_ratio >= 1.0) return true;
  // Deterministic per trace id: every participant of one request agrees.
  const double unit = static_cast<double>(mix64(trace.hi ^ trace.lo)) /
                      static_cast<double>(UINT64_MAX);
  return unit < config_.sample_ratio;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Thread-local cache: tracer id -> buffer. Keyed by the process-unique
  // tracer id (not the pointer), so a dead tracer's cache entry can never
  // alias a new tracer at the same address. The shared_ptr keeps a buffer
  // alive past tracer destruction for threads still holding it (pushes
  // into an orphaned buffer are harmless — nobody collects them).
  thread_local std::vector<
      std::pair<std::uint64_t, std::shared_ptr<ThreadBuffer>>>
      cache;
  for (auto& [tracer_id, buffer] : cache) {
    if (tracer_id == id_) return *buffer;
  }
  auto buffer = std::make_shared<ThreadBuffer>(config_.buffer_capacity);
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers_.push_back(buffer);
  }
  cache.emplace_back(id_, buffer);
  return *cache.back().second;
}

Span Tracer::start_trace(std::string name, TraceId trace, bool force) {
  SpanRecord record;
  record.trace = trace;
  record.name = std::move(name);
  if (!sample(trace, force)) {
    // Context (trace id) still propagates; nothing is recorded.
    Span span(nullptr, std::move(record));
    return span;
  }
  record.span_id = next_span_id();
  record.start_us = now_us();
  if (config_.flight_recorder) {
    FlightRecorder::instance().record('B', record.name, {}, record.trace,
                                      record.span_id);
  }
  return Span(this, std::move(record));
}

Span Tracer::start_span(std::string name, const SpanContext& parent) {
  SpanRecord record;
  record.trace = parent.trace;
  record.parent_id = parent.span_id;
  record.name = std::move(name);
  if (!parent.sampled) return Span(nullptr, std::move(record));
  record.span_id = next_span_id();
  record.start_us = now_us();
  if (config_.flight_recorder) {
    FlightRecorder::instance().record('B', record.name, {}, record.trace,
                                      record.span_id);
  }
  return Span(this, std::move(record));
}

void Tracer::add_span(const SpanContext& parent, std::string name,
                      std::uint64_t start_us, std::uint64_t duration_us,
                      SpanAttributes attributes) {
  if (!parent.sampled) return;
  SpanRecord record;
  record.trace = parent.trace;
  record.parent_id = parent.span_id;
  record.span_id = next_span_id();
  record.name = std::move(name);
  record.start_us = start_us;
  record.duration_us = duration_us;
  record.attributes = std::move(attributes);
  finish(std::move(record));
}

void Tracer::finish(SpanRecord record) {
  if (config_.flight_recorder) {
    FlightRecorder::instance().record('E', record.name, {}, record.trace,
                                      record.span_id);
  }
  local_buffer().push(std::move(record));
}

std::vector<SpanRecord> Tracer::drain(const TraceId* trace) {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    std::uint64_t tail = buffer->tail.load(std::memory_order_relaxed);
    std::vector<SpanRecord> kept;
    for (; tail != head; ++tail) {
      SpanRecord& slot = buffer->slots[tail % buffer->slots.size()];
      if (trace == nullptr || slot.trace == *trace) {
        out.push_back(std::move(slot));
      } else {
        kept.push_back(std::move(slot));
      }
    }
    // Re-append the spans of other traces so a selective collect does not
    // discard them. The ring has room: we just freed at least that many
    // slots. (Publication order within this buffer is preserved.)
    buffer->tail.store(head, std::memory_order_release);
    for (SpanRecord& record : kept) buffer->push(std::move(record));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.span_id < b.span_id;
            });
  return out;
}

std::vector<SpanRecord> Tracer::collect(const TraceId& trace) {
  return drain(&trace);
}

std::vector<SpanRecord> Tracer::collect_all() { return drain(nullptr); }

std::uint64_t Tracer::dropped() const noexcept {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

// --- Span -------------------------------------------------------------------

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

SpanContext Span::context() const noexcept {
  SpanContext context;
  context.trace = record_.trace;
  context.span_id = record_.span_id;
  context.sampled = tracer_ != nullptr;
  return context;
}

void Span::set_attribute(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  record_.attributes.emplace_back(std::string(key), std::string(value));
}

void Span::set_attribute(std::string_view key, std::uint64_t value) {
  set_attribute(key, str_format("%llu",
                                static_cast<unsigned long long>(value)));
}

void Span::set_attribute(std::string_view key, double value) {
  set_attribute(key, str_format("%.6g", value));
}

void Span::set_start_us(std::uint64_t start_us) noexcept {
  if (tracer_ != nullptr) record_.start_us = start_us;
}

std::uint64_t Span::now_us() const {
  return tracer_ == nullptr ? 0 : tracer_->now_us();
}

Span Span::child(std::string name) {
  if (tracer_ == nullptr) {
    // Propagate the (unsampled) context so grandchildren stay consistent.
    SpanRecord record;
    record.trace = record_.trace;
    record.parent_id = record_.span_id;
    record.name = std::move(name);
    return Span(nullptr, std::move(record));
  }
  return tracer_->start_span(std::move(name), context());
}

void Span::add_child(std::string name, std::uint64_t start_us,
                     std::uint64_t duration_us, SpanAttributes attributes) {
  if (tracer_ == nullptr) return;
  tracer_->add_span(context(), std::move(name), start_us, duration_us,
                    std::move(attributes));
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  record_.duration_us = tracer->now_us() - record_.start_us;
  tracer->finish(std::move(record_));
}

// --- JSON / text rendering --------------------------------------------------

namespace {

JsonValue span_json(const SpanRecord& record) {
  JsonValue node = JsonValue::object();
  node.set("name", JsonValue::string(record.name));
  node.set("span_id", JsonValue::unsigned_integer(record.span_id));
  node.set("parent_id", JsonValue::unsigned_integer(record.parent_id));
  node.set("start_us", JsonValue::unsigned_integer(record.start_us));
  node.set("duration_us", JsonValue::unsigned_integer(record.duration_us));
  if (!record.attributes.empty()) {
    JsonValue attributes = JsonValue::object();
    for (const auto& [key, value] : record.attributes) {
      attributes.set(key, JsonValue::string(value));
    }
    node.set("attributes", std::move(attributes));
  }
  return node;
}

}  // namespace

JsonValue span_tree_json(const std::vector<SpanRecord>& spans) {
  // Children sorted by (start, id); spans with a missing parent are roots.
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& record : spans) ordered.push_back(&record);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->start_us != b->start_us ? a->start_us < b->start_us
                                                : a->span_id < b->span_id;
            });
  auto known = [&spans](std::uint64_t id) {
    return id != 0 &&
           std::any_of(spans.begin(), spans.end(),
                       [id](const SpanRecord& r) { return r.span_id == id; });
  };
  for (const SpanRecord* record : ordered) {
    children[known(record->parent_id) ? record->parent_id : 0].push_back(
        record);
  }

  // Recursive lambda via explicit stack-free structure.
  struct Builder {
    const std::map<std::uint64_t, std::vector<const SpanRecord*>>& children;
    JsonValue build(const SpanRecord& record) const {
      JsonValue node = span_json(record);
      auto it = children.find(record.span_id);
      if (it != children.end() && !it->second.empty()) {
        JsonValue kids = JsonValue::array();
        for (const SpanRecord* child : it->second) {
          kids.push(build(*child));
        }
        node.set("children", std::move(kids));
      }
      return node;
    }
  };

  JsonValue doc = JsonValue::object();
  if (!spans.empty()) {
    doc.set("trace_id", JsonValue::string(spans.front().trace.to_hex()));
  }
  JsonValue roots = JsonValue::array();
  Builder builder{children};
  auto it = children.find(0);
  if (it != children.end()) {
    for (const SpanRecord* root : it->second) roots.push(builder.build(*root));
  }
  doc.set("spans", std::move(roots));
  return doc;
}

namespace {

void flatten_span_json(const JsonValue& node, const TraceId& trace,
                       std::uint64_t parent,
                       std::vector<SpanRecord>& out) {
  SpanRecord record;
  record.trace = trace;
  record.span_id = node.get("span_id").as_uint64();
  record.parent_id = node.get("parent_id").as_uint64(parent);
  record.name = node.get("name").as_string();
  record.start_us = node.get("start_us").as_uint64();
  record.duration_us = node.get("duration_us").as_uint64();
  if (const JsonValue* attributes = node.find("attributes");
      attributes != nullptr && attributes->is_object()) {
    for (std::string_view key : attributes->keys()) {
      record.attributes.emplace_back(std::string(key),
                                     attributes->get(key).as_string());
    }
  }
  const std::uint64_t id = record.span_id;
  out.push_back(std::move(record));
  if (const JsonValue* kids = node.find("children");
      kids != nullptr && kids->is_array()) {
    for (std::size_t i = 0; i < kids->size(); ++i) {
      flatten_span_json(kids->at(i), trace, id, out);
    }
  }
}

}  // namespace

Result<std::vector<SpanRecord>> span_records_from_json(const JsonValue& doc) {
  if (!doc.is_object()) {
    return parse_error("span tree must be a JSON object");
  }
  TraceId trace;
  if (auto parsed = TraceId::from_hex(doc.get("trace_id").as_string())) {
    trace = *parsed;
  }
  const JsonValue* spans = doc.find("spans");
  if (spans == nullptr || !spans->is_array()) {
    return parse_error("span tree is missing its \"spans\" array");
  }
  std::vector<SpanRecord> out;
  for (std::size_t i = 0; i < spans->size(); ++i) {
    flatten_span_json(spans->at(i), trace, 0, out);
  }
  return out;
}

std::string render_span_tree(const std::vector<SpanRecord>& spans) {
  struct Row {
    const SpanRecord* record;
    unsigned depth;
  };
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  auto known = [&spans](std::uint64_t id) {
    return id != 0 &&
           std::any_of(spans.begin(), spans.end(),
                       [id](const SpanRecord& r) { return r.span_id == id; });
  };
  for (const SpanRecord& record : spans) {
    children[known(record.parent_id) ? record.parent_id : 0].push_back(
        &record);
  }
  for (auto& [id, list] : children) {
    std::sort(list.begin(), list.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->start_us != b->start_us
                           ? a->start_us < b->start_us
                           : a->span_id < b->span_id;
              });
  }

  std::string out;
  if (!spans.empty()) {
    out += "trace " + spans.front().trace.to_hex() + "\n";
  }
  std::vector<Row> stack;
  auto it = children.find(0);
  if (it != children.end()) {
    for (auto root = it->second.rbegin(); root != it->second.rend(); ++root) {
      stack.push_back({*root, 0});
    }
  }
  while (!stack.empty()) {
    const Row row = stack.back();
    stack.pop_back();
    out += str_format("%*s%-24s %10.3f ms  @%.3f ms",
                      static_cast<int>(row.depth * 2), "",
                      row.record->name.c_str(),
                      static_cast<double>(row.record->duration_us) / 1000.0,
                      static_cast<double>(row.record->start_us) / 1000.0);
    for (const auto& [key, value] : row.record->attributes) {
      out += "  " + key + "=" + value;
    }
    out += '\n';
    auto kids = children.find(row.record->span_id);
    if (kids != children.end()) {
      for (auto child = kids->second.rbegin(); child != kids->second.rend();
           ++child) {
        stack.push_back({*child, row.depth + 1});
      }
    }
  }
  return out;
}

}  // namespace segbus::obs
