#include "obs/flight_recorder.hpp"

#include <csignal>
#include <cstring>
#include <chrono>

#include <fcntl.h>
#include <unistd.h>

#include "obs/trace.hpp"

namespace segbus::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Copies `text` into `out` (size N), keeping only printable ASCII that
/// needs no JSON escaping; everything else becomes '_'. Always NUL-ends.
template <std::size_t N>
void sanitize_into(char (&out)[N], std::string_view text) noexcept {
  std::size_t n = 0;
  for (char c : text) {
    if (n + 1 >= N) break;
    const bool plain = c >= 0x20 && c < 0x7f && c != '"' && c != '\\';
    out[n++] = plain ? c : '_';
  }
  out[n] = '\0';
}

/// Signal-safe buffered writer: accumulates into a fixed buffer, flushing
/// with write(2). No allocation, no stdio.
class FdWriter {
 public:
  explicit FdWriter(int fd) noexcept : fd_(fd) {}
  ~FdWriter() { flush(); }

  void text(const char* s) noexcept {
    while (*s != '\0') put(*s++);
  }
  void ch(char c) noexcept { put(c); }
  void u64(std::uint64_t value) noexcept {
    char digits[20];
    int n = 0;
    do {
      digits[n++] = static_cast<char>('0' + value % 10);
      value /= 10;
    } while (value != 0);
    while (n > 0) put(digits[--n]);
  }
  void hex128(std::uint64_t hi, std::uint64_t lo) noexcept {
    hex64(hi);
    hex64(lo);
  }
  void flush() noexcept {
    std::size_t done = 0;
    while (done < used_) {
      const ssize_t n = ::write(fd_, buffer_ + done, used_ - done);
      if (n <= 0) break;  // best-effort: we may be dying
      done += static_cast<std::size_t>(n);
    }
    used_ = 0;
  }

 private:
  void hex64(std::uint64_t value) noexcept {
    static const char* kHex = "0123456789abcdef";
    for (int shift = 60; shift >= 0; shift -= 4) {
      put(kHex[(value >> shift) & 0xf]);
    }
  }
  void put(char c) noexcept {
    if (used_ == sizeof(buffer_)) flush();
    buffer_[used_++] = c;
  }

  int fd_;
  char buffer_[512];
  std::size_t used_ = 0;
};

}  // namespace

/// Fixed ring of events owned by one thread. Registered once on a
/// process-wide lock-free list and never removed (threads are few and the
/// rings must stay readable from a signal handler at any time).
struct FlightRecorder::ThreadRing {
  explicit ThreadRing(std::size_t ring_capacity, std::uint32_t thread_id)
      : events(new Event[ring_capacity]),
        capacity(ring_capacity),
        thread(thread_id) {}

  Event* events;  ///< leaked on purpose: signal handlers may still read it
  std::size_t capacity;
  std::uint32_t thread;
  std::atomic<std::uint64_t> head{0};  ///< next write index (monotonic)
  ThreadRing* next = nullptr;          ///< registry list link
};

FlightRecorder& FlightRecorder::instance() noexcept {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable(std::size_t capacity_per_thread) {
  if (capacity_per_thread == 0) capacity_per_thread = 1;
  capacity_.store(capacity_per_thread, std::memory_order_relaxed);
  if (epoch_ns_ == 0) epoch_ns_ = steady_ns();
  enabled_.store(true, std::memory_order_release);
}

FlightRecorder::ThreadRing* FlightRecorder::local_ring() noexcept {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    ring = new ThreadRing(capacity_.load(std::memory_order_relaxed),
                          next_thread_.fetch_add(1,
                                                 std::memory_order_relaxed));
    ThreadRing* head = rings_.load(std::memory_order_relaxed);
    do {
      ring->next = head;
    } while (!rings_.compare_exchange_weak(head, ring,
                                           std::memory_order_release,
                                           std::memory_order_relaxed));
  }
  return ring;
}

void FlightRecorder::record(char kind, std::string_view name,
                            std::string_view detail, const TraceId& trace,
                            std::uint64_t span_id) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  ThreadRing* ring = local_ring();
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Event& event = ring->events[head % ring->capacity];
  event.time_us = (steady_ns() - epoch_ns_) / 1000;
  event.trace_hi = trace.hi;
  event.trace_lo = trace.lo;
  event.span_id = span_id;
  event.thread = ring->thread;
  event.kind = kind;
  sanitize_into(event.name, name);
  sanitize_into(event.detail, detail);
  // Publish after the slot is fully written so the dump path (which reads
  // head with acquire) never sees a half-filled newest slot. Older slots
  // being overwritten mid-dump can tear, which the dump tolerates: every
  // field is either plain integer or NUL-sanitized text.
  ring->head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::note(std::string_view name,
                          std::string_view detail) noexcept {
  record('I', name, detail, TraceId{}, 0);
}

void FlightRecorder::dump_to_fd(int fd) const noexcept {
  FdWriter out(fd);
  for (const ThreadRing* ring = rings_.load(std::memory_order_acquire);
       ring != nullptr; ring = ring->next) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t begin =
        head > ring->capacity ? head - ring->capacity : 0;
    for (std::uint64_t i = begin; i < head; ++i) {
      const Event& event = ring->events[i % ring->capacity];
      out.text("{\"t_us\":");
      out.u64(event.time_us);
      out.text(",\"thread\":");
      out.u64(event.thread);
      out.text(",\"kind\":\"");
      out.ch(event.kind);
      out.text("\",\"name\":\"");
      out.text(event.name);
      out.ch('"');
      if (event.detail[0] != '\0') {
        out.text(",\"detail\":\"");
        out.text(event.detail);
        out.ch('"');
      }
      if ((event.trace_hi | event.trace_lo) != 0) {
        out.text(",\"trace_id\":\"");
        out.hex128(event.trace_hi, event.trace_lo);
        out.ch('"');
      }
      if (event.span_id != 0) {
        out.text(",\"span_id\":");
        out.u64(event.span_id);
      }
      out.text("}\n");
    }
  }
  out.flush();
}

bool FlightRecorder::dump_to_file(const char* path) const noexcept {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  dump_to_fd(fd);
  ::close(fd);
  return true;
}

std::uint64_t FlightRecorder::overwritten() const noexcept {
  std::uint64_t total = 0;
  for (const ThreadRing* ring = rings_.load(std::memory_order_acquire);
       ring != nullptr; ring = ring->next) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    if (head > ring->capacity) total += head - ring->capacity;
  }
  return total;
}

namespace {

char g_crash_path[512] = {};
bool g_crash_stderr = false;

void crash_handler(int signum) {
  // Dump, restore the default disposition, re-raise. Everything here is
  // async-signal-safe.
  const FlightRecorder& recorder = FlightRecorder::instance();
  if (g_crash_path[0] != '\0') recorder.dump_to_file(g_crash_path);
  if (g_crash_stderr) recorder.dump_to_fd(2);
  ::signal(signum, SIG_DFL);
  ::raise(signum);
}

}  // namespace

void FlightRecorder::arm_crash_dump(const char* path, bool also_stderr) {
  if (path != nullptr) {
    std::size_t n = 0;
    for (; path[n] != '\0' && n + 1 < sizeof(g_crash_path); ++n) {
      g_crash_path[n] = path[n];
    }
    g_crash_path[n] = '\0';
  }
  g_crash_stderr = also_stderr;
  struct sigaction action = {};
  action.sa_handler = crash_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
}

}  // namespace segbus::obs
