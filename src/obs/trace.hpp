// Request-scoped tracing: span trees over the estimation pipeline.
//
// A Tracer hands out RAII Spans carrying a (trace id, span id, parent id)
// triple, monotonic microsecond timestamps relative to the tracer's epoch,
// and key/value attributes. Finished spans land in *per-thread* buffers —
// the producer side is lock-free (a single-writer ring published with a
// release store), so instrumented hot paths never contend; collect() is
// the locked consumer that drains matching records.
//
// Sampling: a trace is either sampled (its spans are recorded) or not (all
// span operations degrade to a couple of branches — the "tracing disabled"
// cost). The head decision is made once per trace from the configured
// ratio, deterministically from the trace id, so every component of one
// request agrees without coordination; callers that *need* the tree (e.g.
// `submit --trace`) force-sample their root.
//
// Trace ids are 128-bit. The service generates random ids; the scenario
// fuzzer derives them from the scenario seed (TraceId::from_seed) so a
// violation's trace id is reproducible from the campaign log alone.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/json.hpp"
#include "support/status.hpp"

namespace segbus::obs {

/// 128-bit trace identifier (zero = invalid).
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool valid() const noexcept { return (hi | lo) != 0; }
  /// 32 lowercase hex digits.
  std::string to_hex() const;
  /// Parses to_hex() output (also accepts 16-digit ids into `lo`).
  static std::optional<TraceId> from_hex(std::string_view text);
  /// A fresh random id (thread-safe).
  static TraceId generate();
  /// Deterministic id from a 64-bit seed (scenario fuzzing: the violation
  /// trace is re-derivable from the logged scenario seed).
  static TraceId from_seed(std::uint64_t seed) noexcept;

  friend bool operator==(const TraceId& a, const TraceId& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

/// What a child span needs to attach to its parent.
struct SpanContext {
  TraceId trace;
  std::uint64_t span_id = 0;  ///< 0 = no parent (root)
  bool sampled = false;
  bool valid() const noexcept { return trace.valid() && span_id != 0; }
};

using SpanAttributes = std::vector<std::pair<std::string, std::string>>;

/// One finished span as drained from the thread buffers.
struct SpanRecord {
  TraceId trace;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of its trace
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  SpanAttributes attributes;
};

class Tracer;

/// RAII span handle. Default-constructed (or unsampled) spans are no-ops;
/// every operation is safe on them, so instrumentation sites need no
/// "is tracing on" branches. Move-only; ends on destruction.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// True when this span will be recorded at end().
  bool recording() const noexcept { return tracer_ != nullptr; }
  /// Context for attaching children (valid even when not recording, so an
  /// unsampled trace id still propagates end-to-end).
  SpanContext context() const noexcept;

  void set_attribute(std::string_view key, std::string_view value);
  void set_attribute(std::string_view key, std::uint64_t value);
  void set_attribute(std::string_view key, double value);

  /// Back-dates the recorded start (microseconds on the tracer's clock) —
  /// for phases measured before the span object existed (queue wait is
  /// only known at dequeue time).
  void set_start_us(std::uint64_t start_us) noexcept;

  /// Microseconds now on the owning tracer's clock (0 when not recording).
  std::uint64_t now_us() const;

  /// Opens a live child span.
  Span child(std::string name);
  /// Records an already-measured phase as a finished child span.
  void add_child(std::string name, std::uint64_t start_us,
                 std::uint64_t duration_us, SpanAttributes attributes = {});

  /// Closes the span (idempotent; the destructor calls it).
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord record)
      : tracer_(tracer), record_(std::move(record)) {}

  Tracer* tracer_ = nullptr;  ///< null = not recording
  SpanRecord record_;         ///< trace id kept even when not recording
};

/// Span factory + per-thread collection buffers. Thread-safe.
class Tracer {
 public:
  struct Config {
    /// Probability a start_trace() root is sampled: 0 = never (the
    /// cheap path), 1 = always. The decision hashes the trace id, so it
    /// is deterministic per trace.
    double sample_ratio = 1.0;
    /// Finished-span capacity of each per-thread buffer; overflow drops
    /// the newest span and counts it (see dropped()).
    std::size_t buffer_capacity = 4096;
    /// Mirror span begin/end into the process-wide FlightRecorder ring
    /// (flight_recorder.hpp) when that is enabled.
    bool flight_recorder = false;
  };

  Tracer();
  explicit Tracer(Config config);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since the tracer was constructed (monotonic).
  std::uint64_t now_us() const;

  /// Opens a root span. The trace is sampled per Config::sample_ratio
  /// (deterministically from `trace`); `force` overrides to sampled.
  Span start_trace(std::string name, TraceId trace = TraceId::generate(),
                   bool force = false);

  /// Opens a child span of `parent` (records only when parent.sampled).
  Span start_span(std::string name, const SpanContext& parent);

  /// Records an already-finished span (explicit timestamps).
  void add_span(const SpanContext& parent, std::string name,
                std::uint64_t start_us, std::uint64_t duration_us,
                SpanAttributes attributes = {});

  /// Drains every finished span of `trace` from all thread buffers,
  /// ordered by (start_us, span_id). Other traces' spans stay buffered.
  std::vector<SpanRecord> collect(const TraceId& trace);
  /// Drains everything, same order.
  std::vector<SpanRecord> collect_all();

  /// Spans lost to full thread buffers since construction.
  std::uint64_t dropped() const noexcept;

  const Config& config() const noexcept { return config_; }

 private:
  friend class Span;

  struct ThreadBuffer;

  bool sample(const TraceId& trace, bool force) const noexcept;
  std::uint64_t next_span_id() noexcept {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// The calling thread's buffer (registered on first use).
  ThreadBuffer& local_buffer();
  void finish(SpanRecord record);
  std::vector<SpanRecord> drain(const TraceId* trace);

  Config config_;
  std::uint64_t id_ = 0;  ///< process-unique tracer id (thread cache key)
  std::uint64_t epoch_ns_ = 0;  ///< steady_clock epoch at construction
  std::atomic<std::uint64_t> next_span_id_{0};

  mutable std::mutex registry_mutex_;  ///< guards buffers_ and consumers
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// Nested JSON form of one trace's span records:
///   {"trace_id": "...", "spans": [{"name", "span_id", "parent_id",
///    "start_us", "duration_us", "attributes": {...}, "children": [...]}]}
/// Spans whose parent is absent from `spans` surface as roots. Stable
/// ordering: (start_us, span_id) at every level.
JsonValue span_tree_json(const std::vector<SpanRecord>& spans);

/// Parses span_tree_json() output back into flat records.
Result<std::vector<SpanRecord>> span_records_from_json(const JsonValue& doc);

/// Indented text rendering of the tree (for `segbus_cli submit --trace`).
std::string render_span_tree(const std::vector<SpanRecord>& spans);

}  // namespace segbus::obs
