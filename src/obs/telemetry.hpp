// Telemetry facade: one call turns a finished emulation (plus an optional
// phase profiler) into the full artifact set — Prometheus text, metrics
// JSON/CSV, and the Chrome trace-event file — and renders the at-a-glance
// summary (phase timings + top latency percentiles) the example programs
// print.
#pragma once

#include <string>
#include <vector>

#include "emu/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "platform/model.hpp"
#include "support/status.hpp"

namespace segbus::obs {

struct TelemetryExportOptions {
  bool prometheus = true;    ///< <prefix>.prom
  bool json = true;          ///< <prefix>.metrics.json
  bool csv = true;           ///< <prefix>.metrics.csv
  bool chrome_trace = true;  ///< <prefix>.trace.json
  /// Adds the segbus_build_info gauge to the metric exports.
  bool build_info = true;
  /// Tracer span records to merge into the Chrome trace (host pid)
  /// alongside the emulated-time protocol events. Empty = profiler
  /// phases only (the pre-tracing behavior).
  std::vector<SpanRecord> spans;
};

/// The engine's recorded metrics plus everything obs::derive_metrics can
/// add from the result (per-flow latency, BU occupancy, utilization).
Result<MetricsRegistry> full_metrics(const emu::EmulationResult& result,
                                     const platform::PlatformModel& platform);

/// Phase-timing table (when a profiler is given) and grant/delivery latency
/// percentiles from the result's metrics registry.
std::string render_telemetry_summary(const emu::EmulationResult& result,
                                     const PhaseProfiler* profiler = nullptr);

/// Writes the selected artifacts under `dir` (created if missing) with the
/// given file-name prefix; returns the paths written.
Result<std::vector<std::string>> export_telemetry(
    const emu::EmulationResult& result,
    const platform::PlatformModel& platform, const PhaseProfiler* profiler,
    const std::string& dir, const std::string& prefix,
    const TelemetryExportOptions& options = {});

}  // namespace segbus::obs
