#include "obs/telemetry.hpp"

#include "obs/chrome_trace.hpp"
#include "obs/derive.hpp"
#include "obs/export.hpp"
#include "support/strings.hpp"

namespace segbus::obs {

namespace {

void append_percentiles(std::string& out, const MetricsRegistry& registry,
                        std::string_view family, const char* label) {
  const std::optional<Metric> total = registry.sum_family(family);
  if (!total || total->observations == 0) return;
  out += str_format(
      "  %-18s p50=%-8.0f p90=%-8.0f p99=%-8.0f (n=%llu, mean=%.1f)\n",
      label, total->quantile(0.5), total->quantile(0.9),
      total->quantile(0.99),
      static_cast<unsigned long long>(total->observations),
      total->sum / static_cast<double>(total->observations));
}

}  // namespace

Result<MetricsRegistry> full_metrics(
    const emu::EmulationResult& result,
    const platform::PlatformModel& platform) {
  MetricsRegistry registry;
  SEGBUS_RETURN_IF_ERROR(registry.merge_from(result.metrics));
  SEGBUS_RETURN_IF_ERROR(derive_metrics(result, platform, registry));
  return registry;
}

std::string render_telemetry_summary(const emu::EmulationResult& result,
                                     const PhaseProfiler* profiler) {
  std::string out = "--- telemetry ---\n";
  if (profiler != nullptr && !profiler->phases().empty()) {
    out += profiler->render();
  }
  if (result.metrics.empty()) {
    out += "(metrics registry empty; enable "
           "EngineOptions::record_metrics)\n";
    return out;
  }
  out += "latency percentiles (clock ticks):\n";
  append_percentiles(out, result.metrics, "segbus_grant_latency_ticks",
                     "request->grant");
  append_percentiles(out, result.metrics, "segbus_delivery_latency_ticks",
                     "request->delivery");
  out += str_format(
      "events: %llu requests, %llu grants, %llu deliveries, %llu BU "
      "loads\n",
      static_cast<unsigned long long>(
          result.metrics.family_count("segbus_requests_total")),
      static_cast<unsigned long long>(
          result.metrics.family_count("segbus_grants_total")),
      static_cast<unsigned long long>(
          result.metrics.family_count("segbus_deliveries_total")),
      static_cast<unsigned long long>(
          result.metrics.family_count("segbus_bu_loads_total")));
  return out;
}

Result<std::vector<std::string>> export_telemetry(
    const emu::EmulationResult& result,
    const platform::PlatformModel& platform, const PhaseProfiler* profiler,
    const std::string& dir, const std::string& prefix,
    const TelemetryExportOptions& options) {
  SEGBUS_ASSIGN_OR_RETURN(MetricsRegistry registry,
                          full_metrics(result, platform));
  if (options.build_info) add_build_info(registry);
  const std::string base = dir.empty() ? prefix : dir + "/" + prefix;
  std::vector<std::string> written;
  if (options.prometheus) {
    const std::string path = base + ".prom";
    SEGBUS_RETURN_IF_ERROR(write_text_file(path, to_prometheus(registry)));
    written.push_back(path);
  }
  if (options.json) {
    const std::string path = base + ".metrics.json";
    SEGBUS_RETURN_IF_ERROR(
        write_text_file(path, to_json(registry).to_string(/*pretty=*/true)));
    written.push_back(path);
  }
  if (options.csv) {
    const std::string path = base + ".metrics.csv";
    SEGBUS_RETURN_IF_ERROR(to_csv(registry).write_file(path));
    written.push_back(path);
  }
  if (options.chrome_trace) {
    const std::string path = base + ".trace.json";
    if (!options.spans.empty()) {
      // Merge mode: tracer spans on the host pid next to the emulated-time
      // protocol events.
      SEGBUS_RETURN_IF_ERROR(write_text_file(
          path, chrome_trace_json(options.spans, &result).to_string()));
    } else {
      SEGBUS_RETURN_IF_ERROR(write_chrome_trace_file(path, result, profiler));
    }
    written.push_back(path);
  }
  return written;
}

}  // namespace segbus::obs
