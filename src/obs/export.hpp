// Exporters for the metrics registry: Prometheus text exposition format,
// JSON (support/json) and CSV (support/csv). All outputs list series in the
// registry's insertion order, which the deterministic shard merge makes
// stable across repeated runs — byte-identical files diff clean.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "support/csv.hpp"
#include "support/json.hpp"
#include "support/status.hpp"

namespace segbus::obs {

/// Prometheus text exposition format (version 0.0.4): `# HELP`/`# TYPE`
/// once per family, histograms as cumulative `_bucket{le=...}` series plus
/// `_sum` and `_count`.
std::string to_prometheus(const MetricsRegistry& registry);

/// JSON document: {"metrics": [...]} wrapping to_json_series.
JsonValue to_json(const MetricsRegistry& registry);

/// Bare JSON array of series objects ({name, type, labels, value} or
/// {..., buckets, count, sum} for histograms) — for embedding in a larger
/// document (core::result_to_json does this).
JsonValue to_json_series(const MetricsRegistry& registry);

/// Flat CSV: one row per series (histograms report count/sum/p50/p99).
CsvWriter to_csv(const MetricsRegistry& registry);

/// Writes `text` to `path` (overwriting), creating parent directories.
Status write_text_file(const std::string& path, std::string_view text);

/// Adds the `segbus_build_info` gauge (value 1, identity as labels:
/// version, git hash, compiler, build type) — the conventional
/// Prometheus build-identity series.
void add_build_info(MetricsRegistry& registry);

}  // namespace segbus::obs
