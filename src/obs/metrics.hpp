// Low-overhead metrics registry: counters, gauges and histograms, keyed by
// (name, labels) and exported in Prometheus/JSON/CSV form (see export.hpp).
//
// The registry is designed to be *sharded*: the emulation engine owns one
// registry per clock domain (mirroring its per-domain trace buffers), each
// written by exactly one domain step at a time, so the parallel engine
// records metrics without any cross-thread contention. Shards are merged at
// collection time with MetricsRegistry::merge_from; merging is associative
// and — because every shard's insertion order is itself deterministic —
// produces bit-identical output across repeated (parallel) runs.
//
// Histograms come in two flavours of bucket layout:
//   - fixed bounds (linear_bounds / exponential_bounds): explicit ascending
//     upper bucket bounds, Prometheus classic-histogram style;
//   - HDR-style (hdr_bounds): log2 octaves split into linear sub-buckets,
//     giving ~constant relative error over many orders of magnitude at a
//     small fixed bucket count.
// Values below the histogram floor land in a dedicated underflow bucket,
// values above the last bound in the +Inf overflow bucket; both still count
// toward count() and sum() so cumulative bucket exports stay consistent.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.hpp"

namespace segbus::obs {

/// Label pairs identifying one series of a metric family. Stored sorted by
/// key, so label order never affects identity or export.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One metric series. Manipulate through the Counter/Gauge/Histogram
/// handles; read directly when exporting.
struct Metric {
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  Labels labels;  ///< sorted by key
  std::string help;

  // counter
  std::uint64_t counter_value = 0;

  // gauge
  double gauge_value = 0.0;
  bool gauge_set = false;

  // histogram
  std::vector<double> bounds;          ///< ascending finite upper bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size()+1; last is +Inf
  double floor = 0.0;                  ///< values below it underflow
  std::uint64_t underflow = 0;
  std::uint64_t observations = 0;
  double sum = 0.0;

  void observe(double value) noexcept;
  std::uint64_t overflow() const noexcept {
    return buckets.empty() ? 0 : buckets.back();
  }
  /// Estimated value at quantile q in [0, 1] (linear interpolation within
  /// the bucket; underflow clamps to `floor`, overflow to the last bound).
  /// 0 when empty.
  double quantile(double q) const noexcept;

  /// Folds `other` into this series. Counters add; gauges take the other's
  /// value when it was set (last shard wins — deterministic under a fixed
  /// shard order); histograms add bucket-wise. Fails on kind or bucket
  /// layout mismatch.
  Status combine(const Metric& other);
};

/// Increment-only counter handle. Default-constructed handles are no-ops,
/// so instrumentation sites need no "is recording enabled" branches.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t delta = 1) noexcept {
    if (metric_ != nullptr) metric_->counter_value += delta;
  }
  std::uint64_t value() const noexcept {
    return metric_ == nullptr ? 0 : metric_->counter_value;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(Metric* metric) : metric_(metric) {}
  Metric* metric_ = nullptr;
};

/// Last-value gauge handle (no-op when default-constructed).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) noexcept {
    if (metric_ == nullptr) return;
    metric_->gauge_value = value;
    metric_->gauge_set = true;
  }
  void add(double delta) noexcept {
    if (metric_ == nullptr) return;
    metric_->gauge_value += delta;
    metric_->gauge_set = true;
  }
  double value() const noexcept {
    return metric_ == nullptr ? 0.0 : metric_->gauge_value;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(Metric* metric) : metric_(metric) {}
  Metric* metric_ = nullptr;
};

/// Histogram handle (no-op when default-constructed).
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) noexcept {
    if (metric_ != nullptr) metric_->observe(value);
  }
  std::uint64_t count() const noexcept {
    return metric_ == nullptr ? 0 : metric_->observations;
  }
  double quantile(double q) const noexcept {
    return metric_ == nullptr ? 0.0 : metric_->quantile(q);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(Metric* metric) : metric_(metric) {}
  Metric* metric_ = nullptr;
};

/// Bucket-bound factories.
std::vector<double> linear_bounds(double start, double width,
                                  std::size_t count);
std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count);
/// HDR-style layout: log2 octaves, each split into `sub_buckets` linear
/// sub-buckets, covering (0, >= max_value].
std::vector<double> hdr_bounds(std::uint64_t max_value,
                               unsigned sub_buckets);

/// Insertion-ordered collection of metric series. Handles returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime
/// (but not across copies of it). Lookup is find-or-create: re-requesting
/// an existing series returns the same handle (a histogram's bounds are
/// fixed by its first registration).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  Counter counter(std::string_view name, Labels labels = {},
                  std::string_view help = {});
  Gauge gauge(std::string_view name, Labels labels = {},
              std::string_view help = {});
  Histogram histogram(std::string_view name, std::vector<double> bounds,
                      Labels labels = {}, std::string_view help = {},
                      double floor = 0.0);

  std::size_t size() const noexcept { return metrics_.size(); }
  bool empty() const noexcept { return metrics_.empty(); }
  const Metric& metric(std::size_t index) const { return metrics_.at(index); }

  /// The series with exactly these (sorted or unsorted) labels, or nullptr.
  const Metric* find(std::string_view name, Labels labels = {}) const;

  /// All series of family `name` folded into one metric (labels dropped).
  /// nullopt when the family does not exist or its members are incompatible.
  std::optional<Metric> sum_family(std::string_view name) const;

  /// Total event count of a family: counter values summed, histogram
  /// observation counts summed.
  std::uint64_t family_count(std::string_view name) const;

  /// Folds every series of `other` into this registry, creating missing
  /// series in `other`'s insertion order. Associative; deterministic for a
  /// fixed shard order.
  Status merge_from(const MetricsRegistry& other);

 private:
  Metric& find_or_create(MetricKind kind, std::string_view name,
                         Labels labels, std::string_view help);

  std::deque<Metric> metrics_;  ///< deque: stable addresses for handles
  std::map<std::string, std::size_t, std::less<>> index_;
};

}  // namespace segbus::obs
