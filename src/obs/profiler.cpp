#include "obs/profiler.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace segbus::obs {

std::uint64_t PhaseProfiler::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count());
}

PhaseProfiler::Span PhaseProfiler::span(std::string name) {
  Phase phase;
  phase.name = std::move(name);
  phase.start_us = now_us();
  phase.depth = depth_++;
  phases_.push_back(std::move(phase));
  return Span(this, phases_.size() - 1);
}

void PhaseProfiler::close_span(std::size_t index) {
  Phase& phase = phases_[index];
  if (phase.closed) return;
  phase.closed = true;
  phase.duration_us = now_us() - phase.start_us;
  if (depth_ > 0) --depth_;
}

std::string PhaseProfiler::render() const {
  if (phases_.empty()) return "(no phases recorded)\n";
  std::uint64_t total_us = 0;
  for (const Phase& phase : phases_) {
    total_us = std::max(total_us, phase.start_us + phase.duration_us);
  }
  std::string out = str_format("%-32s %12s %8s\n", "phase", "duration",
                               "share");
  for (const Phase& phase : phases_) {
    const std::string label =
        std::string(2 * phase.depth, ' ') + phase.name;
    const double ms = static_cast<double>(phase.duration_us) / 1000.0;
    const double share =
        total_us == 0 ? 0.0
                      : 100.0 * static_cast<double>(phase.duration_us) /
                            static_cast<double>(total_us);
    out += str_format("%-32s %10.3fms %7.1f%%\n", label.c_str(), ms, share);
  }
  return out;
}

}  // namespace segbus::obs
