// Crash/timeout flight recorder: a bounded per-thread ring of recent trace
// events that can be dumped as JSONL after the fact — on SIGSEGV/SIGABRT
// (via arm_crash_dump), on job tick-budget cancellation, or on a fuzz
// oracle violation.
//
// Events are fixed-size PODs whose text fields are sanitized *at record
// time* (printable ASCII minus '"' and '\\'), so the dump path needs no
// escaping or allocation: dump_to_fd() uses only write(2) and hand-rolled
// integer formatting and is safe to call from a signal handler.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace segbus::obs {

struct TraceId;

/// Process-wide recorder. Disabled (the default) record() is two loads and
/// a branch; enable() switches it on for the whole process.
class FlightRecorder {
 public:
  /// One recorded event. POD with inline sanitized text; safe to read from
  /// a signal handler.
  struct Event {
    std::uint64_t time_us = 0;   ///< microseconds since recorder epoch
    std::uint64_t trace_hi = 0;  ///< trace id (0 when not span-linked)
    std::uint64_t trace_lo = 0;
    std::uint64_t span_id = 0;
    std::uint32_t thread = 0;  ///< small per-thread ordinal
    char kind = 'I';           ///< 'B'egin / 'E'nd span, 'I'nstant
    char name[40] = {};        ///< sanitized, NUL-terminated
    char detail[88] = {};      ///< sanitized, NUL-terminated
  };

  static FlightRecorder& instance() noexcept;

  /// Turns recording on; rings are allocated lazily per thread (capacity
  /// events each, newest overwrites oldest).
  void enable(std::size_t capacity_per_thread = 256);
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one event (no-op when disabled). Truncates/sanitizes `name`
  /// and `detail` into the fixed-size fields.
  void record(char kind, std::string_view name, std::string_view detail,
              const TraceId& trace, std::uint64_t span_id = 0) noexcept;
  /// Instant event with no span linkage.
  void note(std::string_view name, std::string_view detail) noexcept;

  /// Writes every buffered event as JSONL to `fd`, oldest-first per
  /// thread. Async-signal-safe: write(2) + integer formatting only.
  void dump_to_fd(int fd) const noexcept;
  /// dump_to_fd() into a newly created file (0644). Returns false when the
  /// file cannot be created. Async-signal-safe.
  bool dump_to_file(const char* path) const noexcept;

  /// Installs SIGSEGV/SIGABRT handlers that dump to `path` (and stderr
  /// when `also_stderr`) then re-raise with the default disposition.
  /// Idempotent; the path is copied into static storage.
  static void arm_crash_dump(const char* path, bool also_stderr = false);

  /// Total events overwritten before they could be dumped.
  std::uint64_t overwritten() const noexcept;

 private:
  struct ThreadRing;

  FlightRecorder() = default;
  ThreadRing* local_ring() noexcept;

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{256};
  std::atomic<std::uint32_t> next_thread_{0};
  std::atomic<ThreadRing*> rings_{nullptr};  ///< lock-free singly-linked list
  std::uint64_t epoch_ns_ = 0;
};

}  // namespace segbus::obs
