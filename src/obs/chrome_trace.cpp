#include "obs/chrome_trace.hpp"

#include <map>

#include "obs/export.hpp"

namespace segbus::obs {

namespace {

constexpr int kHostPid = 0;
constexpr int kEmuPid = 1;

JsonValue metadata(const char* name, int pid, std::int64_t tid,
                   std::string_view value) {
  JsonValue event = JsonValue::object();
  event.set("name", JsonValue::string(name));
  event.set("ph", JsonValue::string("M"));
  event.set("pid", JsonValue::integer(pid));
  event.set("tid", JsonValue::integer(tid));
  JsonValue args = JsonValue::object();
  args.set("name", JsonValue::string(value));
  event.set("args", std::move(args));
  return event;
}

void append_phase_spans(JsonValue& events, const PhaseProfiler& profiler) {
  events.push(metadata("process_name", kHostPid, 0, "host (wall clock)"));
  events.push(metadata("thread_name", kHostPid, 0, "pipeline"));
  for (const PhaseProfiler::Phase& phase : profiler.phases()) {
    JsonValue event = JsonValue::object();
    event.set("name", JsonValue::string(phase.name));
    event.set("cat", JsonValue::string("phase"));
    event.set("ph", JsonValue::string("X"));
    event.set("pid", JsonValue::integer(kHostPid));
    event.set("tid", JsonValue::integer(0));
    event.set("ts", JsonValue::unsigned_integer(phase.start_us));
    event.set("dur", JsonValue::unsigned_integer(phase.duration_us));
    events.push(std::move(event));
  }
}

/// 1 ps of emulated time -> 1e-6 trace microseconds (i.e. trace "us" field
/// counts picoseconds scaled so Perfetto's nanosecond grid is exact).
double emu_ts(Picoseconds t) {
  return static_cast<double>(t.count()) / 1e6;
}

void append_protocol_events(JsonValue& events,
                            const emu::EmulationResult& result) {
  events.push(
      metadata("process_name", kEmuPid, 0, "segbus (emulated time)"));
  for (std::size_t d = 0; d < result.domain_names.size(); ++d) {
    events.push(metadata("thread_name", kEmuPid,
                         static_cast<std::int64_t>(d),
                         result.domain_names[d]));
  }
  for (const emu::TraceEvent& trace_event : result.trace) {
    JsonValue event = JsonValue::object();
    event.set("name",
              JsonValue::string(emu::trace_kind_name(trace_event.kind)));
    event.set("cat", JsonValue::string("protocol"));
    event.set("ph", JsonValue::string("i"));
    event.set("s", JsonValue::string("t"));
    event.set("pid", JsonValue::integer(kEmuPid));
    event.set("tid", JsonValue::integer(trace_event.domain));
    event.set("ts", JsonValue::number(emu_ts(trace_event.time)));
    JsonValue args = JsonValue::object();
    if (trace_event.flow != emu::TraceEvent::kNoValue) {
      args.set("flow", JsonValue::unsigned_integer(trace_event.flow));
      if (trace_event.flow < result.flows.size()) {
        args.set("route",
                 JsonValue::string(
                     result.flows[trace_event.flow].source + "->" +
                     result.flows[trace_event.flow].target));
      }
    }
    if (trace_event.package != emu::TraceEvent::kNoValue) {
      args.set("package", JsonValue::unsigned_integer(trace_event.package));
    }
    if (trace_event.element != emu::TraceEvent::kNoValue) {
      args.set("element", JsonValue::unsigned_integer(trace_event.element));
    }
    event.set("args", std::move(args));
    events.push(std::move(event));
  }

  // BU occupancy as counter tracks, rebuilt from the load/unload instants.
  std::map<std::uint32_t, std::int64_t> depth;
  for (const emu::TraceEvent& trace_event : result.trace) {
    if (trace_event.kind != emu::TraceKind::kBuLoad &&
        trace_event.kind != emu::TraceKind::kBuUnload) {
      continue;
    }
    std::int64_t& d = depth[trace_event.element];
    d += trace_event.kind == emu::TraceKind::kBuLoad ? 1 : -1;
    JsonValue event = JsonValue::object();
    event.set("name", JsonValue::string(
                          "bu" + std::to_string(trace_event.element) +
                          " occupancy"));
    event.set("ph", JsonValue::string("C"));
    event.set("pid", JsonValue::integer(kEmuPid));
    event.set("tid", JsonValue::integer(0));
    event.set("ts", JsonValue::number(emu_ts(trace_event.time)));
    JsonValue args = JsonValue::object();
    args.set("packages", JsonValue::integer(d));
    event.set("args", std::move(args));
    events.push(std::move(event));
  }

  // Per-element activity (busy ticks per bucket) as counter tracks.
  if (!result.activity.empty() && result.activity_bucket.count() > 0) {
    for (const emu::ActivitySeries& series : result.activity) {
      for (std::size_t bucket = 0;
           bucket < series.busy_ticks_per_bucket.size(); ++bucket) {
        JsonValue event = JsonValue::object();
        event.set("name", JsonValue::string(series.element + " busy"));
        event.set("ph", JsonValue::string("C"));
        event.set("pid", JsonValue::integer(kEmuPid));
        event.set("tid", JsonValue::integer(0));
        event.set("ts",
                  JsonValue::number(emu_ts(Picoseconds(
                      static_cast<std::int64_t>(bucket) *
                      result.activity_bucket.count()))));
        JsonValue args = JsonValue::object();
        args.set("busy_ticks",
                 JsonValue::unsigned_integer(
                     series.busy_ticks_per_bucket[bucket]));
        event.set("args", std::move(args));
        events.push(std::move(event));
      }
    }
  }
}

JsonValue finish(JsonValue events) {
  JsonValue root = JsonValue::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", JsonValue::string("ns"));
  return root;
}

}  // namespace

JsonValue chrome_trace_json(const emu::EmulationResult& result,
                            const PhaseProfiler* profiler) {
  JsonValue events = JsonValue::array();
  if (profiler != nullptr) append_phase_spans(events, *profiler);
  append_protocol_events(events, result);
  return finish(std::move(events));
}

JsonValue chrome_trace_json(const PhaseProfiler& profiler) {
  JsonValue events = JsonValue::array();
  append_phase_spans(events, profiler);
  return finish(std::move(events));
}

JsonValue chrome_trace_json(const std::vector<SpanRecord>& spans,
                            const emu::EmulationResult* result) {
  JsonValue events = JsonValue::array();
  events.push(metadata("process_name", kHostPid, 0, "host (wall clock)"));
  events.push(metadata("thread_name", kHostPid, 0, "request"));
  for (const SpanRecord& span : spans) {
    JsonValue event = JsonValue::object();
    event.set("name", JsonValue::string(span.name));
    event.set("cat", JsonValue::string("span"));
    event.set("ph", JsonValue::string("X"));
    event.set("pid", JsonValue::integer(kHostPid));
    event.set("tid", JsonValue::integer(0));
    event.set("ts", JsonValue::unsigned_integer(span.start_us));
    event.set("dur", JsonValue::unsigned_integer(span.duration_us));
    JsonValue args = JsonValue::object();
    args.set("trace_id", JsonValue::string(span.trace.to_hex()));
    args.set("span_id", JsonValue::unsigned_integer(span.span_id));
    if (span.parent_id != 0) {
      args.set("parent_id", JsonValue::unsigned_integer(span.parent_id));
    }
    for (const auto& [key, value] : span.attributes) {
      args.set(key, JsonValue::string(value));
    }
    event.set("args", std::move(args));
    events.push(std::move(event));
  }
  if (result != nullptr) append_protocol_events(events, *result);
  return finish(std::move(events));
}

Status write_chrome_trace_file(const std::string& path,
                               const emu::EmulationResult& result,
                               const PhaseProfiler* profiler) {
  return write_text_file(path,
                         chrome_trace_json(result, profiler).to_string());
}

}  // namespace segbus::obs
