#include "search/pareto.hpp"

#include <algorithm>
#include <tuple>

namespace segbus::search {

bool dominates(const Objectives& a, const Objectives& b) {
  if (a.execution_time > b.execution_time) return false;
  if (a.bu_transfers > b.bu_transfers) return false;
  if (a.energy_pj > b.energy_pj) return false;
  return a.execution_time < b.execution_time ||
         a.bu_transfers < b.bu_transfers || a.energy_pj < b.energy_pj;
}

bool pareto_less(const ParetoPoint& a, const ParetoPoint& b) {
  return std::tie(a.objectives.execution_time, a.objectives.bu_transfers,
                  a.objectives.energy_pj, a.digest) <
         std::tie(b.objectives.execution_time, b.objectives.bu_transfers,
                  b.objectives.energy_pj, b.digest);
}

bool ParetoFront::offer(ParetoPoint point) {
  for (const ParetoPoint& existing : points_) {
    if (dominates(existing.objectives, point.objectives)) return false;
    if (existing.digest == point.digest) return false;
    // Objective ties are kept: a point equal on every axis is not
    // dominated (no strict improvement), so distinct schemes with
    // identical measurements coexist on the front.
  }
  std::erase_if(points_, [&point](const ParetoPoint& existing) {
    return dominates(point.objectives, existing.objectives);
  });
  auto at = std::lower_bound(points_.begin(), points_.end(), point,
                             pareto_less);
  points_.insert(at, std::move(point));
  return true;
}

JsonValue ParetoFront::to_json() const {
  JsonValue root = JsonValue::object();
  JsonValue points = JsonValue::array();
  for (const ParetoPoint& point : points_) {
    JsonValue item = JsonValue::object();
    item.set("execution_time_ps",
             JsonValue::integer(point.objectives.execution_time.count()));
    item.set("bu_transfers",
             JsonValue::unsigned_integer(point.objectives.bu_transfers));
    item.set("energy_pj", JsonValue::number(point.objectives.energy_pj));
    item.set("label", JsonValue::string(point.label));
    item.set("digest", JsonValue::string(point.digest));
    item.set("segments", JsonValue::unsigned_integer(point.segments));
    item.set("package_size",
             JsonValue::unsigned_integer(point.package_size));
    JsonValue allocation = JsonValue::array();
    for (std::uint32_t segment : point.allocation) {
      allocation.push(JsonValue::unsigned_integer(segment));
    }
    item.set("allocation", std::move(allocation));
    points.push(std::move(item));
  }
  root.set("points", std::move(points));
  return root;
}

}  // namespace segbus::search
