// The `"search"` wire-request handler.
//
// The search subsystem orchestrates waves of jobs *through* a
// service::JobServer, so the service layer cannot link against it without
// a cycle; instead ServerConfig carries a search_handler hook and
// embedding binaries (tools/service_common.hpp) install this function.
// The handler runs on the serving worker thread, spins up its own inner
// JobServer for the candidate fan-out (sized from the serving config),
// and reports candidate outcomes into the serving server's
// segbus_search_candidates_total counters.
#pragma once

#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace segbus::search {

/// Runs a guided (or exhaustive) search described by `request.search` and
/// answers with the deterministic search report JSON; `execution_time`
/// and `digest` echo the winner. Install as ServerConfig::search_handler.
service::JobResponse service_search_handler(
    const service::JobRequest& request, service::JobServer& server,
    obs::Span& span);

}  // namespace segbus::search
