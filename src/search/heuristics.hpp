// Candidate generators seeding the guided search's incumbent.
//
// Three sources, all deterministic:
//   - greedy      : place::greedy_place (no randomness);
//   - annealing   : place::anneal_place restarts, each on its own
//                   support/rng substream derived from the search seed —
//                   worker-count-independent like the scen campaigns;
//   - beam search : width-B deterministic beam over partial placements in
//                   traffic-descending process order, scored by the
//                   traffic x hop-distance the prefix already commits to.
//
// A strong incumbent is what makes the branch-and-bound bound bite: every
// subtree whose admissible lower bound exceeds the best heuristic time is
// pruned without a single engine run.
#pragma once

#include <cstdint>
#include <vector>

#include "place/cost.hpp"
#include "psdf/comm_matrix.hpp"
#include "support/status.hpp"

namespace segbus::search {

struct HeuristicOptions {
  std::uint64_t seed = 1;           ///< search seed; substreams derive from it
  std::uint32_t anneal_restarts = 4;
  std::uint64_t anneal_iterations = 20000;
  std::uint32_t beam_width = 8;
  std::uint32_t package_size = 36;  ///< for the cost model / packages
};

/// Process ids ordered by descending total traffic (sent + received),
/// ties by ascending id — the branching order of the beam and the
/// branch-and-bound.
std::vector<std::uint32_t> traffic_descending_order(
    const psdf::CommMatrix& matrix);

/// Deterministic beam search; returns up to `beam_width` feasible
/// (every-segment-populated) allocations, best partial score first.
Result<std::vector<place::Allocation>> beam_allocations(
    const psdf::CommMatrix& matrix, std::uint32_t num_segments,
    std::uint32_t package_size, std::uint32_t beam_width);

/// The combined, deduplicated seed set: greedy, annealing restarts, beam.
Result<std::vector<place::Allocation>> heuristic_allocations(
    const psdf::CommMatrix& matrix, std::uint32_t num_segments,
    const HeuristicOptions& options);

}  // namespace segbus::search
