// Guided design-space exploration (ROADMAP item 2): placement + platform
// sizing + package-size choice as one search problem.
//
// Strategy "guided" (the default), per (segment count, package size)
// combination:
//   1. heuristics seed the incumbent: greedy, seeded annealing restarts,
//      and a deterministic beam (heuristics.hpp), all scored by the
//      emulator in one wave;
//   2. best-first branch-and-bound over partial placements, processes in
//      traffic-descending order; every node carries the admissible
//      partial-placement lower bound (bound.hpp) and a node whose bound
//      exceeds the incumbent is pruned with its whole subtree — no
//      emulation;
//   3. surviving leaves get the full `analysis::compute_static_bounds` v2
//      check, then are emulated in fixed-size waves fanned out through a
//      dedicated `service::JobServer`; the incumbent only advances at
//      wave boundaries, so the node/prune/emulation sequence — and the
//      byte-exact report — is independent of the worker count.
//
// Because every prune is justified by an admissible bound (strict
// `bound > incumbent`), all time-optimal placements are emulated, and the
// winner — ties broken by (BU traffic, energy, digest) — is bit-identical
// with strategy "exhaustive" on the same space.
//
// Strategy "exhaustive" enumerates every feasible (segment-populating)
// allocation through the same evaluator; it is the oracle the guided
// strategy is tested against and the baseline BENCH_search.json reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/energy.hpp"
#include "obs/metrics.hpp"
#include "psdf/model.hpp"
#include "search/evaluator.hpp"
#include "search/pareto.hpp"
#include "support/json.hpp"
#include "support/status.hpp"

namespace segbus::search {

enum class Strategy : std::uint8_t { kGuided, kExhaustive };

const char* to_string(Strategy strategy) noexcept;
Result<Strategy> parse_strategy(std::string_view name);

/// The search space and budgets. Defaults mirror the paper's platform
/// (91/98/89 MHz segments, 111 MHz CA).
struct SearchSpec {
  std::vector<std::uint32_t> segment_counts{1, 2, 3};
  /// Package sizes to explore (empty = the application's own).
  std::vector<std::uint32_t> package_sizes;
  std::vector<Frequency> segment_clocks{Frequency::from_mhz(91.0),
                                        Frequency::from_mhz(98.0),
                                        Frequency::from_mhz(89.0)};
  Frequency ca_clock = Frequency::from_mhz(111.0);
  Strategy strategy = Strategy::kGuided;
  std::uint64_t seed = 1;  ///< heuristic substream seed

  std::uint32_t anneal_restarts = 4;
  std::uint64_t anneal_iterations = 20000;
  std::uint32_t beam_width = 8;

  /// Engine-run budget across the whole search (0 = unlimited). When it
  /// runs out the search stops early and reports proven_optimal = false.
  std::uint64_t max_emulations = 0;
  /// Branch-and-bound node-expansion budget (0 = unlimited).
  std::uint64_t max_nodes = 0;
  /// Leaves per emulation wave. The incumbent advances only between
  /// waves; the value trades pruning sharpness against fan-out width.
  std::size_t wave_size = 16;

  unsigned workers = 4;         ///< evaluation worker threads
  std::string engine = "fast";  ///< scoring backend (all are bit-identical)
  bool reference_timing = false;
  std::uint64_t max_ticks = 20'000'000;  ///< per-candidate tick budget
  core::EnergyModel energy;

  /// Optional counters sink: segbus_search_candidates_total{outcome=...},
  /// segbus_search_nodes_total, segbus_search_front_size.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-(segments, package) statistics.
struct ComboReport {
  std::uint32_t segments = 0;
  std::uint32_t package_size = 0;
  /// Feasible (every segment populated) allocation count — the
  /// exhaustive space the coverage figures are measured against.
  double space = 0.0;
  std::uint64_t nodes_expanded = 0;
  std::uint64_t bound_pruned = 0;   ///< partial-bound prune events
  double leaves_pruned = 0.0;       ///< feasible leaves those events covered
  std::uint64_t oracle_pruned = 0;  ///< leaf prunes by the full v2 bound
  std::uint64_t emulated = 0;
  std::uint64_t deduplicated = 0;
  /// Feasible leaves accounted for: pruned (bound or oracle) plus scored
  /// (emulated or deduplicated). Equals `space` when the combo ran to
  /// completion — the coverage invariant behind proven_optimal.
  double covered = 0.0;
  /// True when the combo's space was fully accounted for (emulated,
  /// deduplicated or provably pruned) within the budgets.
  bool proven_optimal = false;
  bool has_best = false;
  MeasuredCandidate best;  ///< the combo's time-optimal configuration
};

struct SearchReport {
  Strategy strategy = Strategy::kGuided;
  std::uint64_t seed = 1;
  std::string engine;
  bool reference_timing = false;
  std::vector<ComboReport> combos;
  ParetoFront front;  ///< over every evaluated configuration
  bool has_winner = false;
  MeasuredCandidate winner;  ///< global best (time, BU, energy, digest)
  double space_total = 0.0;
  std::uint64_t emulated = 0;
  std::uint64_t deduplicated = 0;
  std::uint64_t nodes_expanded = 0;
  bool proven_optimal = false;  ///< every combo proven

  double emulated_fraction() const noexcept {
    return space_total <= 0.0
               ? 0.0
               : static_cast<double>(emulated) / space_total;
  }
  std::string render() const;
};

/// Runs the search. Creates a dedicated JobServer (spec.workers) for the
/// candidate fan-out; deterministic for a fixed spec — byte-identical
/// reports across worker counts and engine backends.
Result<SearchReport> run_search(const psdf::PsdfModel& application,
                                const SearchSpec& spec);

/// Stable JSON export (schema "segbus-search/1"); contains no wall-clock
/// fields, so byte-level comparison is the determinism test.
JsonValue search_to_json(const SearchReport& report);

/// Feasible-allocation count: surjections of `processes` onto `segments`
/// (inclusion-exclusion, evaluated in doubles for the big spaces).
double feasible_space(std::uint32_t processes, std::uint32_t segments);

}  // namespace segbus::search
