// Candidate evaluation: waves of placements fanned out through a
// service::JobServer and turned into objective vectors.
//
// The evaluator is the only part of the search that touches the engine.
// Determinism contract: candidates are deduplicated by the
// content-addressed scheme fingerprint *before* submission (so the server
// cache never decides what gets emulated), submitted in wave order, and
// collected in submission order — the worker count changes wall-clock
// time, never results or counters.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/energy.hpp"
#include "core/session.hpp"
#include "place/cost.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "search/pareto.hpp"
#include "service/server.hpp"
#include "support/status.hpp"

namespace segbus::search {

/// One configuration the search wants scored.
struct SearchCandidate {
  std::uint32_t segments = 0;
  std::uint32_t package_size = 0;
  place::Allocation allocation;  ///< process -> segment, process-id order
  std::string origin;            ///< "greedy" | "anneal#k" | "beam#k" | "bnb" | ...
};

/// A scored configuration.
struct MeasuredCandidate {
  SearchCandidate candidate;
  Objectives objectives;
  std::string digest;
  std::string label;         ///< "s2/p36 [0 1 0 ...]"
  bool deduplicated = false; ///< served by the in-run fingerprint dedup
};

/// Shared context of one search run (fixed across candidates).
struct EvaluatorContext {
  std::vector<Frequency> segment_clocks;  ///< cycled over segment indices
  Frequency ca_clock = Frequency::from_mhz(100.0);
  std::string engine = "fast";   ///< backend candidates are scored on
  bool reference_timing = false;
  core::EnergyModel energy;
};

class CandidateEvaluator {
 public:
  /// Serializes the application once; per-candidate platforms go on the
  /// wire per wave.
  static Result<CandidateEvaluator> create(service::JobServer& server,
                                           const psdf::PsdfModel& application,
                                           EvaluatorContext context);

  /// Scores a wave: dedups by fingerprint, fans the rest out through the
  /// server (chunked to its queue depth), and returns results in wave
  /// order. A failed job fails the whole wave (searches must not silently
  /// lose candidates).
  Result<std::vector<MeasuredCandidate>> evaluate(
      const std::vector<SearchCandidate>& wave);

  /// The platform a candidate denotes (clocks cycled from the context).
  Result<platform::PlatformModel> build_platform(
      const SearchCandidate& candidate) const;

  /// The candidate's fingerprint (identical to the digest the server
  /// reports for its submission).
  Result<std::string> fingerprint(const platform::PlatformModel& platform);

  std::uint64_t emulated() const noexcept { return emulated_; }
  std::uint64_t deduplicated() const noexcept { return deduplicated_; }

 private:
  CandidateEvaluator(service::JobServer& server, EvaluatorContext context)
      : server_(&server), context_(std::move(context)) {}

  Result<MeasuredCandidate> measure(const SearchCandidate& candidate,
                                    const platform::PlatformModel& platform,
                                    std::string digest,
                                    const service::JobResponse& response);
  Result<const psdf::PsdfModel*> app_for_package(std::uint32_t package_size);

  service::JobServer* server_;
  EvaluatorContext context_;
  const psdf::PsdfModel* application_ = nullptr;
  std::string psdf_xml_;
  core::SessionConfig session_;  ///< fingerprint/timing configuration
  /// digest -> measured objectives of the first occurrence.
  std::map<std::string, MeasuredCandidate, std::less<>> seen_;
  /// Rescaled applications keyed by package size (for the energy model).
  std::map<std::uint32_t, psdf::PsdfModel> rescaled_;
  std::uint64_t emulated_ = 0;
  std::uint64_t deduplicated_ = 0;
  std::uint64_t next_id_ = 0;
};

/// "s2/p36 [0 1 0 1]" rendering used by reports and Pareto points.
std::string candidate_label(const SearchCandidate& candidate);

}  // namespace segbus::search
