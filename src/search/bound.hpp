// Admissible lower bounds for *partial* placements — the pruning rule of
// the branch-and-bound search.
//
// `analysis::critical_path_lower_bound` (the v2 static bound) needs a fully
// placed platform. A branch-and-bound node is a prefix of a placement:
// some processes have a segment, the rest are still free. This oracle
// re-evaluates the exact same per-tier tick arithmetic as the v2 bound but
// only charges work the partial placement already *proves*:
//
//   - a flow with both endpoints placed is charged exactly as the v2
//     critical path charges it (local or global by segment equality);
//   - a flow with a placed source but free target is charged the cheaper
//     of its two futures: the global emission chain (global setup <= local
//     setup) on the source's chain and bus;
//   - a flow with a free source is charged its emission chain at the
//     platform's fastest segment clock (every completion runs it at that
//     period or slower); a placed target still proves one data pass
//     (`s` ticks) on the target's bus;
//   - CA grant spacing and hop pipelines are only charged for flows that
//     are provably inter-segment.
//
// Every charge is a lower bound on what any completion of the prefix must
// pay, so the node bound never exceeds the v2 bound of any completed leaf
// under it — pruning on `bound > incumbent` keeps the optimum reachable,
// and the search's winner is bit-identical with exhaustive enumeration.
// For a complete allocation the oracle reproduces
// `critical_path_lower_bound` exactly (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "emu/timing.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::search {

/// Marker for a process the partial placement has not assigned yet.
inline constexpr std::uint32_t kUnassigned = 0xFFFFFFFFu;

/// Bound evaluator for one (application, segment clocks, CA clock,
/// package size, timing) search context. Not thread-safe: lower_bound()
/// reuses internal scratch buffers (the branch-and-bound loop is
/// single-threaded by design — only emulation waves fan out).
class PartialBoundOracle {
 public:
  /// Rescales the application to `package_size` (as the engine does) and
  /// precomputes the per-tier flow data the bound arithmetic walks.
  static Result<PartialBoundOracle> create(
      const psdf::PsdfModel& application,
      const std::vector<Frequency>& segment_clocks, Frequency ca_clock,
      std::uint32_t package_size,
      const emu::TimingModel& timing = emu::TimingModel::emulator());

  /// Lower bound of every completion of `allocation` (process-id indexed;
  /// kUnassigned marks free processes). Precondition: allocation.size()
  /// == process_count().
  Picoseconds lower_bound(const std::vector<std::uint32_t>& allocation);

  std::size_t process_count() const noexcept { return process_count_; }
  std::size_t segment_count() const noexcept { return periods_.size(); }

 private:
  struct FlowData {
    std::uint32_t source = 0;
    std::uint32_t target = 0;
    std::uint64_t packages = 0;    ///< at the context's package size
    std::uint64_t local_chain = 0;   ///< ticks: C + request + local setup + s
    std::uint64_t global_chain = 0;  ///< ticks: C + request + global setup + s
  };
  struct Tier {
    std::vector<FlowData> flows;
  };

  std::size_t process_count_ = 0;
  std::vector<Tier> tiers_;             ///< ascending flow ordering
  std::vector<std::int64_t> periods_;   ///< per-segment clock period (ps)
  std::int64_t min_period_ = 0;
  std::int64_t ca_period_ = 0;
  std::uint32_t package_size_ = 0;
  std::uint64_t local_setup_ = 0;
  std::uint64_t global_setup_ = 0;
  std::uint64_t hop_wait_ = 0;
  std::uint64_t grant_reset_ = 0;
  std::int64_t ca_spacing_ = 0;
  bool master_blocking_ = false;

  // lower_bound() scratch (sized once in create()).
  std::vector<std::int64_t> chain_scratch_;     ///< per process, ps
  std::vector<std::uint64_t> busy_scratch_;     ///< per segment, ticks
  std::vector<std::uint64_t> teardown_scratch_; ///< per segment, ticks
};

}  // namespace segbus::search
