#include "search/evaluator.hpp"

#include <future>
#include <utility>

#include "core/fingerprint.hpp"
#include "emu/stats.hpp"
#include "place/apply.hpp"
#include "platform/platform_xml.hpp"
#include "psdf/psdf_xml.hpp"
#include "support/strings.hpp"
#include "xml/writer.hpp"

namespace segbus::search {

namespace {

/// Compact single-line XML for the wire (no indentation, no declaration
/// needed — the parser accepts both, and waves ship many documents).
xml::WriteOptions wire_options() {
  xml::WriteOptions options;
  options.indent.clear();
  options.emit_declaration = false;
  return options;
}

}  // namespace

std::string candidate_label(const SearchCandidate& candidate) {
  std::string alloc;
  for (std::size_t i = 0; i < candidate.allocation.size(); ++i) {
    if (i > 0) alloc += ' ';
    alloc += str_format("%u", candidate.allocation[i]);
  }
  return str_format("s%u/p%u [%s]", candidate.segments,
                    candidate.package_size, alloc.c_str());
}

Result<CandidateEvaluator> CandidateEvaluator::create(
    service::JobServer& server, const psdf::PsdfModel& application,
    EvaluatorContext context) {
  if (context.segment_clocks.empty()) {
    return invalid_argument_error(
        "the evaluator needs at least one segment clock");
  }
  CandidateEvaluator evaluator(server, std::move(context));
  evaluator.application_ = &application;
  evaluator.psdf_xml_ =
      xml::write_document(psdf::to_xml(application), wire_options());
  // The session configuration the server derives for these submissions —
  // used locally only to fingerprint candidates identically.
  evaluator.session_.timing = evaluator.context_.reference_timing
                                  ? emu::TimingModel::reference()
                                  : emu::TimingModel::emulator();
  return evaluator;
}

Result<platform::PlatformModel> CandidateEvaluator::build_platform(
    const SearchCandidate& candidate) const {
  if (candidate.segments == 0) {
    return invalid_argument_error("a candidate needs at least one segment");
  }
  platform::PlatformModel platform(
      str_format("search-%useg", candidate.segments));
  SEGBUS_RETURN_IF_ERROR(platform.set_package_size(candidate.package_size));
  SEGBUS_RETURN_IF_ERROR(platform.set_ca_clock(context_.ca_clock));
  for (std::uint32_t seg = 0; seg < candidate.segments; ++seg) {
    auto added = platform.add_segment(
        context_.segment_clocks[seg % context_.segment_clocks.size()]);
    if (!added.is_ok()) return added.status();
  }
  SEGBUS_RETURN_IF_ERROR(place::apply_allocation(
      *application_, candidate.allocation, platform));
  return platform;
}

Result<std::string> CandidateEvaluator::fingerprint(
    const platform::PlatformModel& platform) {
  return core::scheme_digest(*application_, platform, session_);
}

Result<const psdf::PsdfModel*> CandidateEvaluator::app_for_package(
    std::uint32_t package_size) {
  if (package_size == application_->package_size()) return application_;
  auto it = rescaled_.find(package_size);
  if (it == rescaled_.end()) {
    SEGBUS_ASSIGN_OR_RETURN(
        psdf::PsdfModel rescaled,
        application_->rescaled_for_package_size(package_size));
    it = rescaled_.emplace(package_size, std::move(rescaled)).first;
  }
  return &it->second;
}

Result<MeasuredCandidate> CandidateEvaluator::measure(
    const SearchCandidate& candidate,
    const platform::PlatformModel& platform, std::string digest,
    const service::JobResponse& response) {
  if (!response.ok) {
    return internal_error("search candidate '" + candidate_label(candidate) +
                          "' failed: [" + response.error_code + "] " +
                          response.error_message);
  }
  SEGBUS_ASSIGN_OR_RETURN(JsonValue report,
                          JsonValue::parse(response.report_json));

  // Rebuild the counters the energy model charges from the report; the
  // report is the engine's own serialization, so this stays bit-faithful
  // to an in-process run.
  emu::EmulationResult result;
  result.completed = true;
  result.total_execution_time = response.execution_time;
  const JsonValue& sas = report.get("segment_arbiters");
  for (std::size_t i = 0; i < sas.size(); ++i) {
    emu::SaStats sa;
    sa.intra_requests = sas.at(i).get("intra_requests").as_uint64();
    sa.inter_requests = sas.at(i).get("inter_requests").as_uint64();
    sa.busy_ticks = sas.at(i).get("busy_ticks").as_uint64();
    result.sas.push_back(sa);
  }
  std::uint64_t bu_transfers = 0;
  const JsonValue& bus = report.get("border_units");
  for (std::size_t i = 0; i < bus.size(); ++i) {
    emu::BuStats bu;
    bu.transfers = bus.at(i).get("transfers").as_uint64();
    bu_transfers += bu.transfers;
    result.bus.push_back(bu);
  }
  result.ca.grants = report.get("central_arbiter").get("grants").as_uint64();
  result.ca.busy_ticks =
      report.get("central_arbiter").get("busy_ticks").as_uint64();

  SEGBUS_ASSIGN_OR_RETURN(const psdf::PsdfModel* app,
                          app_for_package(candidate.package_size));
  SEGBUS_ASSIGN_OR_RETURN(
      core::EnergyBreakdown energy,
      core::estimate_energy(*app, platform, result, context_.energy));

  MeasuredCandidate measured;
  measured.candidate = candidate;
  measured.objectives.execution_time = response.execution_time;
  measured.objectives.bu_transfers = bu_transfers;
  measured.objectives.energy_pj = energy.total_pj();
  measured.digest = std::move(digest);
  measured.label = candidate_label(candidate);
  return measured;
}

Result<std::vector<MeasuredCandidate>> CandidateEvaluator::evaluate(
    const std::vector<SearchCandidate>& wave) {
  std::vector<MeasuredCandidate> results(wave.size());
  std::vector<platform::PlatformModel> platforms(wave.size());
  std::vector<std::string> digests(wave.size());
  // Wave indices that own a submission, in wave order; duplicates within
  // the wave resolve against the owner afterwards.
  std::vector<std::size_t> submissions;
  std::map<std::string, std::size_t, std::less<>> owner_of;
  std::vector<bool> duplicate(wave.size(), false);

  for (std::size_t i = 0; i < wave.size(); ++i) {
    SEGBUS_ASSIGN_OR_RETURN(platforms[i], build_platform(wave[i]));
    SEGBUS_ASSIGN_OR_RETURN(digests[i], fingerprint(platforms[i]));
    if (seen_.find(digests[i]) != seen_.end() ||
        owner_of.find(digests[i]) != owner_of.end()) {
      duplicate[i] = true;
      continue;
    }
    owner_of.emplace(digests[i], i);
    submissions.push_back(i);
  }

  // Fan out through the server, at most one queue-depth worth in flight;
  // collect in submission order so results and counters are independent
  // of worker scheduling.
  const std::size_t chunk = std::max<std::size_t>(
      std::size_t{1}, server_->config().queue_depth);
  for (std::size_t begin = 0; begin < submissions.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, submissions.size());
    std::vector<std::future<service::JobResponse>> futures;
    futures.reserve(end - begin);
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t i = submissions[k];
      service::JobRequest request;
      request.id = str_format("search-%llu",
                              static_cast<unsigned long long>(next_id_++));
      request.psdf_xml = psdf_xml_;
      request.psm_xml =
          xml::write_document(platform::to_xml(platforms[i]), wire_options());
      request.engine = context_.engine;
      request.reference_timing = context_.reference_timing;
      request.peer = "search";
      futures.push_back(server_->submit_async(std::move(request)));
    }
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t i = submissions[k];
      const service::JobResponse response = futures[k - begin].get();
      SEGBUS_ASSIGN_OR_RETURN(
          results[i], measure(wave[i], platforms[i], digests[i], response));
      seen_.emplace(digests[i], results[i]);
      ++emulated_;
    }
  }

  for (std::size_t i = 0; i < wave.size(); ++i) {
    if (!duplicate[i]) continue;
    auto hit = seen_.find(digests[i]);
    if (hit == seen_.end()) {
      return internal_error("deduplicated candidate lost its measurement");
    }
    MeasuredCandidate measured = hit->second;
    measured.candidate = wave[i];
    measured.label = candidate_label(wave[i]);
    measured.deduplicated = true;
    results[i] = std::move(measured);
    ++deduplicated_;
  }
  return results;
}

}  // namespace segbus::search
