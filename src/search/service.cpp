#include "search/service.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "psdf/psdf_xml.hpp"
#include "search/search.hpp"
#include "support/strings.hpp"
#include "xml/parser.hpp"

namespace segbus::search {

namespace {

/// Parses a comma-separated list of positive integers ("2,3" -> {2, 3}).
Result<std::vector<std::uint32_t>> parse_u32_list(std::string_view text,
                                                  std::string_view what) {
  std::vector<std::uint32_t> values;
  for (const std::string_view item : split_skip_empty(text, ',')) {
    const std::optional<std::uint64_t> value = parse_uint(item);
    if (!value.has_value() || *value == 0 || *value > 0xFFFFFFFFull) {
      return invalid_argument_error("invalid " + std::string(what) +
                                    " list entry '" + std::string(item) +
                                    "'");
    }
    values.push_back(static_cast<std::uint32_t>(*value));
  }
  if (values.empty()) {
    return invalid_argument_error("empty " + std::string(what) + " list");
  }
  return values;
}

Result<service::JobResponse> run_search_request(
    const service::JobRequest& request, service::JobServer& server,
    obs::Span& span) {
  SEGBUS_ASSIGN_OR_RETURN(xml::Document psdf_doc,
                          xml::parse_document(request.psdf_xml));
  SEGBUS_ASSIGN_OR_RETURN(psdf::PsdfModel application,
                          psdf::from_xml(psdf_doc));

  const service::SearchParams& params = request.search;
  SearchSpec spec;
  SEGBUS_ASSIGN_OR_RETURN(spec.segment_counts,
                          parse_u32_list(params.segments, "segments"));
  if (!params.packages.empty()) {
    SEGBUS_ASSIGN_OR_RETURN(spec.package_sizes,
                            parse_u32_list(params.packages, "packages"));
  } else if (request.package_size != 0) {
    spec.package_sizes.push_back(request.package_size);
  }
  SEGBUS_ASSIGN_OR_RETURN(spec.strategy, parse_strategy(params.strategy));
  spec.seed = params.seed;
  spec.max_emulations = params.max_emulations;
  spec.max_nodes = params.max_nodes;
  spec.beam_width = params.beam_width;
  spec.anneal_restarts = params.anneal_restarts;
  spec.anneal_iterations = params.anneal_iterations;
  spec.reference_timing = request.reference_timing;
  if (!request.engine.empty()) spec.engine = request.engine;
  // Mirror submit semantics: a request may lower the tick budget, never
  // raise it past the serving configuration.
  spec.max_ticks = server.config().max_ticks;
  if (request.max_ticks != 0) {
    spec.max_ticks = std::min(spec.max_ticks, request.max_ticks);
  }
  spec.workers = std::max(1u, server.config().workers);

  obs::Span run_span = span.child("search/run");
  SEGBUS_ASSIGN_OR_RETURN(SearchReport report,
                          run_search(application, spec));
  run_span.set_attribute("emulated", report.emulated);
  run_span.set_attribute("nodes", report.nodes_expanded);
  run_span.set_attribute("front", static_cast<std::uint64_t>(
                                      report.front.size()));

  // Surface search efficiency on the *serving* server's counters (the
  // inner fan-out server dies with this request).
  std::uint64_t bound_pruned = 0;
  std::uint64_t oracle_pruned = 0;
  for (const ComboReport& combo : report.combos) {
    bound_pruned += combo.bound_pruned;
    oracle_pruned += combo.oracle_pruned;
  }
  server.count_search("emulated", report.emulated);
  server.count_search("deduplicated", report.deduplicated);
  server.count_search("bound_pruned", bound_pruned);
  server.count_search("oracle_pruned", oracle_pruned);

  service::JobResponse response;
  response.id = request.id;
  response.ok = true;
  response.report_json = search_to_json(report).to_string();
  if (report.has_winner) {
    response.execution_time = report.winner.objectives.execution_time;
    response.digest = report.winner.digest;
  }
  return response;
}

}  // namespace

service::JobResponse service_search_handler(
    const service::JobRequest& request, service::JobServer& server,
    obs::Span& span) {
  Result<service::JobResponse> result =
      run_search_request(request, server, span);
  if (result.is_ok()) return std::move(result).value();
  const Status& status = result.status();
  const std::string code =
      status.code() == StatusCode::kInvalidArgument ? "validation"
                                                    : "internal";
  return service::JobResponse::failure(request.id, code,
                                       std::string(status.message()));
}

}  // namespace segbus::search
