#include "search/bound.hpp"

#include <algorithm>
#include <map>

namespace segbus::search {

Result<PartialBoundOracle> PartialBoundOracle::create(
    const psdf::PsdfModel& application,
    const std::vector<Frequency>& segment_clocks, Frequency ca_clock,
    std::uint32_t package_size, const emu::TimingModel& timing) {
  if (segment_clocks.empty()) {
    return invalid_argument_error(
        "the partial-bound oracle needs at least one segment clock");
  }
  if (package_size == 0) {
    return invalid_argument_error("package size must be positive");
  }
  SEGBUS_RETURN_IF_ERROR(validate_frequency(ca_clock, "CA clock"));
  for (Frequency clock : segment_clocks) {
    SEGBUS_RETURN_IF_ERROR(validate_frequency(clock, "segment clock"));
  }

  // The engine rescales compute costs to the platform's package size; the
  // bound must model the application the engine will actually run.
  psdf::PsdfModel rescaled;
  const psdf::PsdfModel* app = &application;
  if (application.package_size() != package_size) {
    SEGBUS_ASSIGN_OR_RETURN(
        rescaled, application.rescaled_for_package_size(package_size));
    app = &rescaled;
  }

  PartialBoundOracle oracle;
  oracle.process_count_ = app->process_count();
  oracle.package_size_ = package_size;
  for (Frequency clock : segment_clocks) {
    oracle.periods_.push_back(clock.period_ps());
  }
  oracle.min_period_ =
      *std::min_element(oracle.periods_.begin(), oracle.periods_.end());
  oracle.ca_period_ = ca_clock.period_ps();

  // Tick prices, identical to analysis::critical_path_lower_bound.
  oracle.local_setup_ = timing.sa_decision_ticks + timing.grant_set_ticks +
                        timing.master_response_ticks;
  oracle.global_setup_ =
      timing.grant_set_ticks + timing.master_response_ticks;
  oracle.hop_wait_ =
      timing.bu_grant_turnaround_ticks + timing.bu_sync_ticks;
  oracle.grant_reset_ = timing.grant_reset_ticks;
  oracle.ca_spacing_ =
      1 + static_cast<std::int64_t>(timing.ca_decision_ticks +
                                    timing.ca_signal_ticks);
  oracle.master_blocking_ = timing.master_blocking;

  std::map<std::uint32_t, Tier> tiers;
  for (const psdf::Flow& flow : app->scheduled_flows()) {
    FlowData data;
    data.source = flow.source;
    data.target = flow.target;
    data.packages = psdf::packages_for(flow.data_items, package_size);
    const std::uint64_t base =
        flow.compute_ticks + timing.request_ticks + package_size;
    data.local_chain = base + oracle.local_setup_;
    data.global_chain = base + oracle.global_setup_;
    tiers[flow.ordering].flows.push_back(data);
  }
  for (auto& [ordering, tier] : tiers) {
    oracle.tiers_.push_back(std::move(tier));
  }

  oracle.chain_scratch_.resize(oracle.process_count_);
  oracle.busy_scratch_.resize(oracle.periods_.size());
  oracle.teardown_scratch_.resize(oracle.periods_.size());
  return oracle;
}

Picoseconds PartialBoundOracle::lower_bound(
    const std::vector<std::uint32_t>& allocation) {
  const std::uint32_t s = package_size_;
  std::int64_t total = 0;
  for (const Tier& tier : tiers_) {
    std::fill(chain_scratch_.begin(), chain_scratch_.end(), 0);
    std::fill(busy_scratch_.begin(), busy_scratch_.end(), 0);
    std::fill(teardown_scratch_.begin(), teardown_scratch_.end(), 0);
    std::uint64_t global_packages = 0;
    std::int64_t best_pipe = 0;

    for (const FlowData& flow : tier.flows) {
      const std::uint32_t src = allocation[flow.source];
      const std::uint32_t dst = allocation[flow.target];
      const std::uint64_t n = flow.packages;

      if (src == kUnassigned) {
        // The source chain runs wherever the process lands — at best on
        // the fastest clock, at best with the cheaper (global) setup.
        chain_scratch_[flow.source] +=
            static_cast<std::int64_t>(n * flow.global_chain) * min_period_;
        if (dst != kUnassigned) {
          // Local delivery or final hop: either way the target's bus
          // carries the data phase.
          busy_scratch_[dst] += n * s;
        }
        continue;
      }
      const std::int64_t p_src = periods_[src];
      if (dst == kUnassigned) {
        // Future unknown: charge the cheaper of the local/global paths.
        chain_scratch_[flow.source] +=
            static_cast<std::int64_t>(n * flow.global_chain) * p_src;
        busy_scratch_[src] += n * (global_setup_ + s);
        continue;
      }

      if (src == dst) {
        chain_scratch_[flow.source] +=
            static_cast<std::int64_t>(n * flow.local_chain) * p_src;
        busy_scratch_[src] += n * (local_setup_ + s);
        teardown_scratch_[src] += n * grant_reset_;
        continue;
      }

      // Proven inter-segment: one package's downstream traversal pays
      // hop_wait + s - 1 receiver periods per crossing (one tick forgiven
      // per landing edge, as in the v2 bound).
      std::int64_t hop_ps = 0;
      const std::int64_t step = src < dst ? 1 : -1;
      const auto last = static_cast<std::int64_t>(dst);
      for (std::int64_t seg = static_cast<std::int64_t>(src) + step;;
           seg += step) {
        const auto hop = static_cast<std::size_t>(seg);
        hop_ps += static_cast<std::int64_t>(hop_wait_ + s - 1) *
                  periods_[hop];
        busy_scratch_[hop] += n * s;
        if (seg == last) break;
      }
      std::int64_t chain =
          static_cast<std::int64_t>(n * flow.global_chain) * p_src;
      if (master_blocking_) {
        chain += static_cast<std::int64_t>(n) * hop_ps;
      }
      chain_scratch_[flow.source] += chain;
      busy_scratch_[src] += n * (global_setup_ + s);
      global_packages += n;

      const std::int64_t pipe =
          static_cast<std::int64_t>(n * flow.global_chain) * p_src + hop_ps;
      best_pipe = std::max(best_pipe, pipe);
    }

    std::int64_t stage = 0;
    for (const std::int64_t chain : chain_scratch_) {
      stage = std::max(stage, chain);
    }
    for (std::size_t seg = 0; seg < periods_.size(); ++seg) {
      std::uint64_t ticks = busy_scratch_[seg] + teardown_scratch_[seg];
      if (teardown_scratch_[seg] > 0) {
        ticks -= std::min<std::uint64_t>(teardown_scratch_[seg],
                                         grant_reset_);
      }
      stage = std::max(stage,
                       static_cast<std::int64_t>(ticks) * periods_[seg]);
    }
    stage = std::max(stage, best_pipe);
    if (global_packages > 0) {
      stage = std::max(
          stage,
          (static_cast<std::int64_t>(global_packages - 1) * ca_spacing_ +
           1) *
              ca_period_);
    }
    total += stage;
  }
  return Picoseconds(total);
}

}  // namespace segbus::search
