// Pareto front over the three objectives a configuration trades off:
// execution time (the paper's estimate), border-unit traffic (the
// congestion the paper's WP analysis worries about), and energy
// (core/energy's activity model). All three are minimized.
//
// The front is canonical: points are kept sorted by (execution time, BU
// transfers, energy, digest), so two searches that evaluate the same set
// of configurations — in any order, on any worker count — serialize
// byte-identical fronts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "place/cost.hpp"
#include "support/json.hpp"
#include "support/time.hpp"

namespace segbus::search {

/// The minimized objective vector of one evaluated configuration.
struct Objectives {
  Picoseconds execution_time{0};   ///< emulated total execution time
  std::uint64_t bu_transfers = 0;  ///< packages that crossed any BU
  double energy_pj = 0.0;          ///< activity-model total energy

  friend bool operator==(const Objectives&, const Objectives&) = default;
};

/// True when `a` is at least as good as `b` in every objective and
/// strictly better in at least one (the standard Pareto order).
bool dominates(const Objectives& a, const Objectives& b);

/// One non-dominated configuration.
struct ParetoPoint {
  Objectives objectives;
  std::string label;       ///< human-readable configuration label
  std::string digest;      ///< content-addressed scheme fingerprint
  std::uint32_t segments = 0;
  std::uint32_t package_size = 0;
  place::Allocation allocation;  ///< process -> segment, process-id order
};

/// Deterministic Pareto front: offer() keeps only non-dominated points and
/// stores them in canonical order regardless of insertion order.
class ParetoFront {
 public:
  /// Inserts `point` unless an existing point dominates it (or duplicates
  /// its digest); drops every existing point the newcomer dominates.
  /// Returns true when the point entered the front.
  bool offer(ParetoPoint point);

  const std::vector<ParetoPoint>& points() const noexcept { return points_; }
  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }

  /// { "points": [ { "execution_time_ps", "bu_transfers", "energy_pj",
  ///                 "label", "digest", "segments", "package_size",
  ///                 "allocation": [...] } ] }
  JsonValue to_json() const;

 private:
  std::vector<ParetoPoint> points_;  ///< canonical order (see header)
};

/// Canonical order of front points: (time, BU transfers, energy, digest).
bool pareto_less(const ParetoPoint& a, const ParetoPoint& b);

}  // namespace segbus::search
