#include "search/heuristics.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "place/placer.hpp"
#include "support/rng.hpp"

namespace segbus::search {

namespace {

/// Traffic x hop-distance the prefix already commits to: every decided
/// pair pays its package count times the segment distance. Lower is
/// better; the final score is place-cost-correlated but much cheaper.
std::uint64_t partial_score(const psdf::CommMatrix& matrix,
                            const std::vector<std::uint32_t>& order,
                            const place::Allocation& partial,
                            std::size_t depth, std::uint32_t package_size) {
  std::uint64_t score = 0;
  for (std::size_t a = 0; a < depth; ++a) {
    for (std::size_t b = 0; b < depth; ++b) {
      const std::uint32_t pa = order[a];
      const std::uint32_t pb = order[b];
      const std::uint64_t packages =
          matrix.packages_at(pa, pb, package_size);
      if (packages == 0) continue;
      const std::uint32_t da = partial[pa];
      const std::uint32_t db = partial[pb];
      score += packages * (da > db ? da - db : db - da);
    }
  }
  return score;
}

}  // namespace

std::vector<std::uint32_t> traffic_descending_order(
    const psdf::CommMatrix& matrix) {
  std::vector<std::uint32_t> order(matrix.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&matrix](std::uint32_t a, std::uint32_t b) {
                     const std::uint64_t ta =
                         matrix.row_sum(a) + matrix.column_sum(a);
                     const std::uint64_t tb =
                         matrix.row_sum(b) + matrix.column_sum(b);
                     if (ta != tb) return ta > tb;
                     return a < b;
                   });
  return order;
}

Result<std::vector<place::Allocation>> beam_allocations(
    const psdf::CommMatrix& matrix, std::uint32_t num_segments,
    std::uint32_t package_size, std::uint32_t beam_width) {
  const std::size_t n = matrix.size();
  if (n == 0) return invalid_argument_error("empty communication matrix");
  if (num_segments == 0) {
    return invalid_argument_error("at least one segment is required");
  }
  if (n < num_segments) {
    return invalid_argument_error(
        "fewer processes than segments: no feasible placement");
  }
  if (beam_width == 0) beam_width = 1;

  const std::vector<std::uint32_t> order = traffic_descending_order(matrix);

  struct Partial {
    place::Allocation allocation;       ///< process-id indexed
    std::vector<std::uint32_t> counts;  ///< processes per segment
    std::uint64_t score = 0;
  };
  std::vector<Partial> beam(1);
  beam[0].allocation.assign(n, 0);
  beam[0].counts.assign(num_segments, 0);

  for (std::size_t depth = 0; depth < n; ++depth) {
    const std::uint32_t process = order[depth];
    std::vector<Partial> expanded;
    expanded.reserve(beam.size() * num_segments);
    for (const Partial& parent : beam) {
      for (std::uint32_t seg = 0; seg < num_segments; ++seg) {
        Partial child = parent;
        child.allocation[process] = seg;
        ++child.counts[seg];
        // Feasibility: the processes still unplaced must be able to
        // populate every still-empty segment.
        const std::size_t remaining = n - depth - 1;
        const std::size_t empty = static_cast<std::size_t>(std::count(
            child.counts.begin(), child.counts.end(), 0u));
        if (empty > remaining) continue;
        child.score = partial_score(matrix, order, child.allocation,
                                    depth + 1, package_size);
        expanded.push_back(std::move(child));
      }
    }
    // Keep the best `beam_width`, ties broken by the allocation bytes so
    // the beam is a pure function of its inputs.
    std::stable_sort(expanded.begin(), expanded.end(),
                     [](const Partial& a, const Partial& b) {
                       if (a.score != b.score) return a.score < b.score;
                       return a.allocation < b.allocation;
                     });
    if (expanded.size() > beam_width) expanded.resize(beam_width);
    beam = std::move(expanded);
  }

  std::vector<place::Allocation> out;
  out.reserve(beam.size());
  for (Partial& partial : beam) out.push_back(std::move(partial.allocation));
  return out;
}

Result<std::vector<place::Allocation>> heuristic_allocations(
    const psdf::CommMatrix& matrix, std::uint32_t num_segments,
    const HeuristicOptions& options) {
  place::CostModel cost;
  cost.package_size = options.package_size;

  std::vector<place::Allocation> out;
  std::set<place::Allocation> seen;
  auto keep = [&out, &seen](place::Allocation allocation) {
    if (seen.insert(allocation).second) out.push_back(std::move(allocation));
  };

  SEGBUS_ASSIGN_OR_RETURN(place::PlacementResult greedy,
                          place::greedy_place(matrix, num_segments, cost));
  keep(std::move(greedy.allocation));

  // Restarts on independent substreams: restart k's stream depends only
  // on (seed, k), never on evaluation order.
  const std::uint64_t anneal_seed = derive_seed(options.seed, "search/anneal");
  for (std::uint32_t k = 0; k < options.anneal_restarts; ++k) {
    place::AnnealOptions anneal;
    anneal.seed = derive_seed(anneal_seed, static_cast<std::uint64_t>(k));
    anneal.iterations = options.anneal_iterations;
    SEGBUS_ASSIGN_OR_RETURN(
        place::PlacementResult annealed,
        place::anneal_place(matrix, num_segments, cost, anneal));
    keep(std::move(annealed.allocation));
  }

  SEGBUS_ASSIGN_OR_RETURN(
      std::vector<place::Allocation> beam,
      beam_allocations(matrix, num_segments, options.package_size,
                       options.beam_width));
  for (place::Allocation& allocation : beam) keep(std::move(allocation));
  return out;
}

}  // namespace segbus::search
