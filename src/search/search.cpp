#include "search/search.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "analysis/critical_path.hpp"
#include "psdf/comm_matrix.hpp"
#include "search/bound.hpp"
#include "search/heuristics.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace segbus::search {

namespace {

/// Exhaustive enumeration above this space requires an explicit emulation
/// budget — otherwise a typo'd segment count burns hours of engine time.
constexpr double kExhaustiveGuard = 5e6;

/// Feasible completions of a partial placement: `remaining` free processes
/// onto `segments` segments of which `empty` are still unpopulated. The
/// free processes may land anywhere but must jointly cover every empty
/// segment — inclusion-exclusion over the empty set:
///   sum_{k=0}^{e} (-1)^k C(e,k) (S-k)^r
/// Evaluated in doubles (the 3-segment 50-process space overflows u64);
/// powers by iterated multiplication so the value is bit-reproducible.
double feasible_completions(std::uint64_t remaining, std::uint32_t segments,
                            std::uint32_t empty) {
  double total = 0.0;
  double binom = 1.0;  // C(empty, k), updated incrementally
  for (std::uint32_t k = 0; k <= empty; ++k) {
    double power = 1.0;
    for (std::uint64_t i = 0; i < remaining; ++i) {
      power *= static_cast<double>(segments - k);
    }
    total += (k % 2 == 0 ? 1.0 : -1.0) * binom * power;
    binom = binom * static_cast<double>(empty - k) /
            static_cast<double>(k + 1);
  }
  return total;
}

/// The winner order: identical to the Pareto front's canonical order, so
/// the guided winner matches the exhaustive front head bit-for-bit.
bool measured_less(const MeasuredCandidate& a, const MeasuredCandidate& b) {
  if (a.objectives.execution_time.count() !=
      b.objectives.execution_time.count()) {
    return a.objectives.execution_time.count() <
           b.objectives.execution_time.count();
  }
  if (a.objectives.bu_transfers != b.objectives.bu_transfers) {
    return a.objectives.bu_transfers < b.objectives.bu_transfers;
  }
  if (a.objectives.energy_pj != b.objectives.energy_pj) {
    return a.objectives.energy_pj < b.objectives.energy_pj;
  }
  return a.digest < b.digest;
}

ParetoPoint to_point(const MeasuredCandidate& measured) {
  ParetoPoint point;
  point.objectives = measured.objectives;
  point.label = measured.label;
  point.digest = measured.digest;
  point.segments = measured.candidate.segments;
  point.package_size = measured.candidate.package_size;
  point.allocation = measured.candidate.allocation;
  return point;
}

/// One branch-and-bound open node: a prefix (in traffic order) of a
/// placement. `allocation` is process-id indexed with kUnassigned holes.
struct Node {
  std::vector<std::uint32_t> allocation;
  std::uint32_t depth = 0;  ///< processes placed (prefix of the order)
  Picoseconds bound{0};
  std::uint32_t empty_segments = 0;
};

/// Pop order: tightest bound first (best-first), then deepest (drive to
/// leaves, keeping the open set small), then allocation bytes — a total
/// order, so the expansion sequence is a pure function of the inputs.
struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound.count() != b.bound.count()) {
      return a.bound.count() > b.bound.count();
    }
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.allocation > b.allocation;
  }
};

/// Search-wide mutable state shared by the per-combo runs.
struct RunState {
  CandidateEvaluator* evaluator = nullptr;
  const analysis::PruneOracle* oracle = nullptr;
  SearchReport* report = nullptr;
  const SearchSpec* spec = nullptr;
  std::uint64_t nodes_total = 0;
  bool budget_exhausted = false;

  bool node_budget_left() const {
    return spec->max_nodes == 0 || nodes_total < spec->max_nodes;
  }
  bool emulation_budget_left() const {
    return spec->max_emulations == 0 ||
           evaluator->emulated() < spec->max_emulations;
  }
};

/// Offers a wave's results to the front / winner / incumbent. The
/// incumbent only moves here — between waves — so the prune sequence never
/// depends on the order workers finished individual candidates.
void absorb_results(const std::vector<MeasuredCandidate>& results,
                    RunState& state, ComboReport& combo,
                    Picoseconds& incumbent) {
  for (const MeasuredCandidate& measured : results) {
    state.report->front.offer(to_point(measured));
    if (!combo.has_best || measured_less(measured, combo.best)) {
      combo.best = measured;
      combo.has_best = true;
    }
    if (!state.report->has_winner ||
        measured_less(measured, state.report->winner)) {
      state.report->winner = measured;
      state.report->has_winner = true;
    }
    if (incumbent.count() == 0 ||
        measured.objectives.execution_time < incumbent) {
      incumbent = measured.objectives.execution_time;
    }
  }
}

/// How a wave participates in the coverage accounting.
enum class WaveMode : std::uint8_t {
  kSeed,        ///< heuristic seeds: no filter, outside the space accounting
  kLeaf,        ///< branch-and-bound leaves: oracle filter + covered
  kExhaustive,  ///< exhaustive cells: no filter (it is the baseline), covered
};

/// Scores a batch of candidates. In kLeaf mode each leaf is re-checked
/// against the *current* incumbent with the authoritative
/// analysis::PruneOracle bound on its fully built platform — earlier waves
/// may have tightened the incumbent past leaves buffered before them.
Status flush_wave(std::vector<SearchCandidate>& wave, RunState& state,
                  ComboReport& combo, Picoseconds& incumbent, WaveMode mode) {
  if (wave.empty()) return Status::ok();
  std::vector<SearchCandidate> survivors;
  survivors.reserve(wave.size());
  for (SearchCandidate& candidate : wave) {
    if (mode == WaveMode::kLeaf && incumbent.count() > 0) {
      SEGBUS_ASSIGN_OR_RETURN(platform::PlatformModel platform,
                              state.evaluator->build_platform(candidate));
      SEGBUS_ASSIGN_OR_RETURN(Picoseconds lower,
                              state.oracle->lower_bound(platform));
      if (analysis::PruneOracle::prunable(lower, incumbent)) {
        ++combo.oracle_pruned;
        combo.covered += 1.0;
        continue;
      }
    }
    survivors.push_back(std::move(candidate));
  }
  wave.clear();
  if (survivors.empty()) return Status::ok();
  SEGBUS_ASSIGN_OR_RETURN(std::vector<MeasuredCandidate> results,
                          state.evaluator->evaluate(survivors));
  if (mode != WaveMode::kSeed) {
    combo.covered += static_cast<double>(results.size());
  }
  absorb_results(results, state, combo, incumbent);
  return Status::ok();
}

/// The guided per-combo search: heuristic seeding, then best-first
/// branch-and-bound with wave-batched leaf emulation.
Status run_guided_combo(const psdf::PsdfModel& app,
                        const psdf::CommMatrix& matrix, RunState& state,
                        ComboReport& combo) {
  const SearchSpec& spec = *state.spec;
  const std::size_t n = matrix.size();
  const std::uint32_t segments = combo.segments;
  Picoseconds incumbent{0};

  // Heuristic seeds establish the incumbent before any node expands —
  // without it the bound cannot prune at all.
  HeuristicOptions heuristics;
  heuristics.seed = derive_seed(
      derive_seed(spec.seed, static_cast<std::uint64_t>(segments)),
      static_cast<std::uint64_t>(combo.package_size));
  heuristics.anneal_restarts = spec.anneal_restarts;
  heuristics.anneal_iterations = spec.anneal_iterations;
  heuristics.beam_width = spec.beam_width;
  heuristics.package_size = combo.package_size;
  SEGBUS_ASSIGN_OR_RETURN(std::vector<place::Allocation> seeds,
                          heuristic_allocations(matrix, segments, heuristics));
  std::vector<SearchCandidate> seed_wave;
  seed_wave.reserve(seeds.size());
  for (place::Allocation& allocation : seeds) {
    SearchCandidate candidate;
    candidate.segments = segments;
    candidate.package_size = combo.package_size;
    candidate.allocation = std::move(allocation);
    candidate.origin = "heuristic";
    seed_wave.push_back(std::move(candidate));
  }
  // Seeds are re-visited by the branch-and-bound as ordinary leaves (and
  // deduplicated there), so they stay out of the coverage accounting.
  SEGBUS_RETURN_IF_ERROR(
      flush_wave(seed_wave, state, combo, incumbent, WaveMode::kSeed));

  SEGBUS_ASSIGN_OR_RETURN(
      PartialBoundOracle bound,
      PartialBoundOracle::create(
          app,
          [&] {
            std::vector<Frequency> clocks;
            clocks.reserve(segments);
            for (std::uint32_t seg = 0; seg < segments; ++seg) {
              clocks.push_back(spec.segment_clocks[seg %
                                                   spec.segment_clocks.size()]);
            }
            return clocks;
          }(),
          spec.ca_clock, combo.package_size,
          spec.reference_timing ? emu::TimingModel::reference()
                                : emu::TimingModel::emulator()));

  const std::vector<std::uint32_t> order = traffic_descending_order(matrix);
  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  {
    Node root;
    root.allocation.assign(n, kUnassigned);
    root.empty_segments = segments;
    root.bound = bound.lower_bound(root.allocation);
    open.push(std::move(root));
  }

  std::vector<SearchCandidate> wave;
  wave.reserve(spec.wave_size + segments);
  while (!open.empty()) {
    if (!state.node_budget_left() || !state.emulation_budget_left()) {
      state.budget_exhausted = true;
      break;
    }
    Node node = open.top();
    open.pop();
    // The incumbent may have tightened since this node was pushed.
    if (analysis::PruneOracle::prunable(node.bound, incumbent)) {
      ++combo.bound_pruned;
      const double leaves = feasible_completions(
          n - node.depth, segments, node.empty_segments);
      combo.leaves_pruned += leaves;
      combo.covered += leaves;
      continue;
    }
    ++combo.nodes_expanded;
    ++state.nodes_total;

    const std::uint32_t process = order[node.depth];
    const std::uint64_t remaining = n - node.depth - 1;
    for (std::uint32_t seg = 0; seg < segments; ++seg) {
      Node child;
      child.allocation = node.allocation;
      child.allocation[process] = seg;
      child.depth = node.depth + 1;
      std::uint32_t empty = node.empty_segments;
      bool fills = true;
      for (std::size_t i = 0; i < n && fills; ++i) {
        fills = child.allocation[i] != seg || i == process;
      }
      if (fills) --empty;
      child.empty_segments = empty;
      // Feasibility: the free processes must still be able to populate
      // every empty segment. Infeasible assignments are outside the
      // space, so skipping them is not a prune.
      if (empty > remaining) continue;
      child.bound = bound.lower_bound(child.allocation);
      if (analysis::PruneOracle::prunable(child.bound, incumbent)) {
        ++combo.bound_pruned;
        const double leaves =
            feasible_completions(remaining, segments, empty);
        combo.leaves_pruned += leaves;
        combo.covered += leaves;
        continue;
      }
      if (child.depth == n) {
        SearchCandidate candidate;
        candidate.segments = segments;
        candidate.package_size = combo.package_size;
        candidate.allocation = std::move(child.allocation);
        candidate.origin = "bnb";
        wave.push_back(std::move(candidate));
      } else {
        open.push(std::move(child));
      }
    }
    if (wave.size() >= spec.wave_size) {
      SEGBUS_RETURN_IF_ERROR(
          flush_wave(wave, state, combo, incumbent, WaveMode::kLeaf));
    }
  }
  SEGBUS_RETURN_IF_ERROR(
      flush_wave(wave, state, combo, incumbent, WaveMode::kLeaf));
  combo.proven_optimal = !state.budget_exhausted;
  return Status::ok();
}

/// Exhaustive enumeration in allocation-lexicographic order, same
/// evaluator and accounting — the oracle the guided strategy must match.
/// No bounds, no heuristics: every feasible allocation is scored.
Status run_exhaustive_combo(const psdf::PsdfModel& app, RunState& state,
                            ComboReport& combo) {
  const SearchSpec& spec = *state.spec;
  const std::size_t n = app.process_count();
  const std::uint32_t segments = combo.segments;
  Picoseconds incumbent{0};

  if (combo.space > kExhaustiveGuard && spec.max_emulations == 0) {
    return invalid_argument_error(str_format(
        "exhaustive space for %u segments is %.0f candidates; set "
        "max_emulations to cap the run (or use the guided strategy)",
        segments, combo.space));
  }

  std::vector<std::uint32_t> digits(n, 0);
  std::vector<SearchCandidate> wave;
  wave.reserve(spec.wave_size);
  bool done = false;
  while (!done) {
    if (!state.emulation_budget_left()) {
      state.budget_exhausted = true;
      break;
    }
    // Feasibility: every segment populated (the allocation is surjective).
    std::uint32_t populated = 0;
    {
      std::vector<bool> seen(segments, false);
      for (const std::uint32_t seg : digits) {
        if (!seen[seg]) {
          seen[seg] = true;
          ++populated;
        }
      }
    }
    if (populated == segments) {
      SearchCandidate candidate;
      candidate.segments = segments;
      candidate.package_size = combo.package_size;
      candidate.allocation = digits;
      candidate.origin = "exhaustive";
      wave.push_back(std::move(candidate));
      if (wave.size() >= spec.wave_size) {
        SEGBUS_RETURN_IF_ERROR(flush_wave(wave, state, combo, incumbent,
                                          WaveMode::kExhaustive));
      }
    }
    // Odometer increment, most-significant digit first => allocations in
    // ascending lexicographic (process-id) order.
    done = true;
    for (std::size_t i = n; i-- > 0;) {
      if (++digits[i] < segments) {
        done = false;
        break;
      }
      digits[i] = 0;
    }
  }
  SEGBUS_RETURN_IF_ERROR(
      flush_wave(wave, state, combo, incumbent, WaveMode::kExhaustive));
  combo.proven_optimal = !state.budget_exhausted;
  return Status::ok();
}

}  // namespace

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kGuided:
      return "guided";
    case Strategy::kExhaustive:
      return "exhaustive";
  }
  return "guided";
}

Result<Strategy> parse_strategy(std::string_view name) {
  if (name == "guided") return Strategy::kGuided;
  if (name == "exhaustive") return Strategy::kExhaustive;
  return invalid_argument_error("unknown search strategy '" +
                                std::string(name) +
                                "' (expected guided|exhaustive)");
}

double feasible_space(std::uint32_t processes, std::uint32_t segments) {
  if (segments == 0 || processes < segments) return 0.0;
  return feasible_completions(processes, segments, segments);
}

Result<SearchReport> run_search(const psdf::PsdfModel& application,
                                const SearchSpec& spec) {
  const std::size_t n = application.process_count();
  if (n == 0) {
    return invalid_argument_error("cannot search an empty application");
  }
  if (spec.segment_counts.empty()) {
    return invalid_argument_error("at least one segment count is required");
  }
  if (spec.segment_clocks.empty()) {
    return invalid_argument_error("at least one segment clock is required");
  }
  for (const std::uint32_t segments : spec.segment_counts) {
    if (segments == 0) {
      return invalid_argument_error("segment counts must be positive");
    }
  }
  SearchSpec cfg = spec;
  cfg.wave_size = std::max<std::size_t>(cfg.wave_size, 1);
  cfg.workers = std::max(cfg.workers, 1u);
  std::vector<std::uint32_t> packages = cfg.package_sizes;
  if (packages.empty()) packages.push_back(application.package_size());
  for (const std::uint32_t package : packages) {
    if (package == 0) {
      return invalid_argument_error("package sizes must be positive");
    }
  }

  // A dedicated server for the candidate fan-out. The evaluator dedups by
  // fingerprint before submitting, so the result cache adds nothing — keep
  // it minimal instead of re-hashing every wave into a dead LRU.
  service::ServerConfig server_config;
  server_config.workers = cfg.workers;
  server_config.queue_depth =
      std::max<std::size_t>(cfg.wave_size, cfg.workers);
  server_config.cache_entries = 16;
  server_config.max_ticks = cfg.max_ticks;
  service::JobServer server(server_config);

  EvaluatorContext context;
  context.segment_clocks = cfg.segment_clocks;
  context.ca_clock = cfg.ca_clock;
  context.engine = cfg.engine;
  context.reference_timing = cfg.reference_timing;
  context.energy = cfg.energy;
  SEGBUS_ASSIGN_OR_RETURN(
      CandidateEvaluator evaluator,
      CandidateEvaluator::create(server, application, std::move(context)));

  const emu::TimingModel timing = cfg.reference_timing
                                      ? emu::TimingModel::reference()
                                      : emu::TimingModel::emulator();
  const analysis::PruneOracle oracle(application, timing);
  const psdf::CommMatrix matrix = psdf::CommMatrix::from_model(application);

  SearchReport report;
  report.strategy = cfg.strategy;
  report.seed = cfg.seed;
  report.engine = cfg.engine;
  report.reference_timing = cfg.reference_timing;

  RunState state;
  state.evaluator = &evaluator;
  state.oracle = &oracle;
  state.report = &report;
  state.spec = &cfg;

  for (const std::uint32_t segments : cfg.segment_counts) {
    for (const std::uint32_t package : packages) {
      ComboReport combo;
      combo.segments = segments;
      combo.package_size = package;
      if (n < segments) {
        // No surjective placement exists: the combo's space is empty and
        // therefore trivially proven.
        combo.proven_optimal = true;
        report.combos.push_back(std::move(combo));
        continue;
      }
      combo.space = feasible_space(static_cast<std::uint32_t>(n), segments);
      const std::uint64_t emulated_before = evaluator.emulated();
      const std::uint64_t deduplicated_before = evaluator.deduplicated();
      if (state.budget_exhausted) {
        report.combos.push_back(std::move(combo));
        continue;
      }
      if (segments == 1) {
        // One feasible placement; strategy is irrelevant.
        Picoseconds incumbent{0};
        std::vector<SearchCandidate> wave(1);
        wave[0].segments = segments;
        wave[0].package_size = package;
        wave[0].allocation.assign(n, 0);
        wave[0].origin = "exhaustive";
        SEGBUS_RETURN_IF_ERROR(flush_wave(wave, state, combo, incumbent,
                                          WaveMode::kExhaustive));
        combo.proven_optimal = true;
      } else if (cfg.strategy == Strategy::kGuided) {
        SEGBUS_RETURN_IF_ERROR(
            run_guided_combo(application, matrix, state, combo));
      } else {
        SEGBUS_RETURN_IF_ERROR(
            run_exhaustive_combo(application, state, combo));
      }
      combo.emulated = evaluator.emulated() - emulated_before;
      combo.deduplicated = evaluator.deduplicated() - deduplicated_before;
      report.combos.push_back(std::move(combo));
    }
  }

  report.emulated = evaluator.emulated();
  report.deduplicated = evaluator.deduplicated();
  report.nodes_expanded = state.nodes_total;
  report.proven_optimal = true;
  std::uint64_t bound_pruned = 0;
  std::uint64_t oracle_pruned = 0;
  for (const ComboReport& combo : report.combos) {
    report.space_total += combo.space;
    bound_pruned += combo.bound_pruned;
    oracle_pruned += combo.oracle_pruned;
    report.proven_optimal = report.proven_optimal && combo.proven_optimal;
  }

  if (cfg.metrics != nullptr) {
    auto count = [&cfg](std::string_view outcome, std::uint64_t value) {
      cfg.metrics
          ->counter("segbus_search_candidates_total",
                    {{"outcome", std::string(outcome)}},
                    "guided-search candidates by outcome")
          .inc(value);
    };
    count("emulated", report.emulated);
    count("deduplicated", report.deduplicated);
    count("bound_pruned", bound_pruned);
    count("oracle_pruned", oracle_pruned);
    cfg.metrics
        ->counter("segbus_search_nodes_total", {},
                  "branch-and-bound nodes expanded")
        .inc(report.nodes_expanded);
    cfg.metrics
        ->gauge("segbus_search_front_size", {},
                "Pareto-front size of the last search")
        .set(static_cast<double>(report.front.size()));
  }
  return report;
}

namespace {

JsonValue measured_to_json(const MeasuredCandidate& measured) {
  JsonValue item = JsonValue::object();
  item.set("label", JsonValue::string(measured.label));
  item.set("digest", JsonValue::string(measured.digest));
  item.set("segments",
           JsonValue::unsigned_integer(measured.candidate.segments));
  item.set("package_size",
           JsonValue::unsigned_integer(measured.candidate.package_size));
  JsonValue allocation = JsonValue::array();
  for (const std::uint32_t seg : measured.candidate.allocation) {
    allocation.push(JsonValue::unsigned_integer(seg));
  }
  item.set("allocation", std::move(allocation));
  item.set("origin", JsonValue::string(measured.candidate.origin));
  item.set("execution_time_ps",
           JsonValue::integer(measured.objectives.execution_time.count()));
  item.set("bu_transfers",
           JsonValue::unsigned_integer(measured.objectives.bu_transfers));
  item.set("energy_pj", JsonValue::number(measured.objectives.energy_pj));
  return item;
}

}  // namespace

JsonValue search_to_json(const SearchReport& report) {
  JsonValue root = JsonValue::object();
  root.set("schema", JsonValue::string("segbus-search/1"));
  root.set("strategy", JsonValue::string(to_string(report.strategy)));
  root.set("seed", JsonValue::unsigned_integer(report.seed));
  root.set("engine", JsonValue::string(report.engine));
  root.set("reference_timing", JsonValue::boolean(report.reference_timing));

  JsonValue combos = JsonValue::array();
  for (const ComboReport& combo : report.combos) {
    JsonValue item = JsonValue::object();
    item.set("segments", JsonValue::unsigned_integer(combo.segments));
    item.set("package_size",
             JsonValue::unsigned_integer(combo.package_size));
    item.set("space", JsonValue::number(combo.space));
    item.set("nodes_expanded",
             JsonValue::unsigned_integer(combo.nodes_expanded));
    item.set("bound_pruned", JsonValue::unsigned_integer(combo.bound_pruned));
    item.set("leaves_pruned", JsonValue::number(combo.leaves_pruned));
    item.set("oracle_pruned",
             JsonValue::unsigned_integer(combo.oracle_pruned));
    item.set("emulated", JsonValue::unsigned_integer(combo.emulated));
    item.set("deduplicated",
             JsonValue::unsigned_integer(combo.deduplicated));
    item.set("covered", JsonValue::number(combo.covered));
    item.set("proven_optimal", JsonValue::boolean(combo.proven_optimal));
    item.set("best", combo.has_best ? measured_to_json(combo.best)
                                    : JsonValue::null());
    combos.push(std::move(item));
  }
  root.set("combos", std::move(combos));
  root.set("front", report.front.to_json());
  root.set("winner", report.has_winner ? measured_to_json(report.winner)
                                       : JsonValue::null());

  JsonValue totals = JsonValue::object();
  totals.set("space", JsonValue::number(report.space_total));
  totals.set("emulated", JsonValue::unsigned_integer(report.emulated));
  totals.set("deduplicated",
             JsonValue::unsigned_integer(report.deduplicated));
  totals.set("nodes_expanded",
             JsonValue::unsigned_integer(report.nodes_expanded));
  totals.set("emulated_fraction",
             JsonValue::number(report.emulated_fraction()));
  root.set("totals", std::move(totals));
  root.set("proven_optimal", JsonValue::boolean(report.proven_optimal));
  return root;
}

std::string SearchReport::render() const {
  std::string out = str_format(
      "Design-space search (%s, seed %llu, engine %s%s)\n",
      search::to_string(strategy), static_cast<unsigned long long>(seed),
      engine.c_str(), reference_timing ? ", reference timing" : "");
  out += str_format(
      "  space %.0f candidates | emulated %llu (%.2f%%) | deduplicated "
      "%llu | nodes %llu\n",
      space_total, static_cast<unsigned long long>(emulated),
      100.0 * emulated_fraction(),
      static_cast<unsigned long long>(deduplicated),
      static_cast<unsigned long long>(nodes_expanded));
  for (const ComboReport& combo : combos) {
    out += str_format(
        "  s%u/p%u: space %.0f, emulated %llu, pruned %.0f leaves "
        "(%llu bound + %llu oracle cuts)%s",
        combo.segments, combo.package_size, combo.space,
        static_cast<unsigned long long>(combo.emulated),
        combo.leaves_pruned + static_cast<double>(combo.oracle_pruned),
        static_cast<unsigned long long>(combo.bound_pruned),
        static_cast<unsigned long long>(combo.oracle_pruned),
        combo.proven_optimal ? "" : " [budget exhausted]");
    if (combo.has_best) {
      out += str_format(" -> best %s: %lld ps", combo.best.label.c_str(),
                        static_cast<long long>(
                            combo.best.objectives.execution_time.count()));
    }
    out += '\n';
  }
  if (has_winner) {
    out += str_format(
        "  winner %s: %lld ps, %llu BU transfers, %.1f pJ%s\n",
        winner.label.c_str(),
        static_cast<long long>(winner.objectives.execution_time.count()),
        static_cast<unsigned long long>(winner.objectives.bu_transfers),
        winner.objectives.energy_pj,
        proven_optimal ? " (proven optimal)" : "");
  }
  out += str_format("  Pareto front: %zu point%s\n", front.size(),
                    front.size() == 1 ? "" : "s");
  return out;
}

}  // namespace segbus::search
