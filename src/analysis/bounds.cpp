#include "analysis/bounds.hpp"

#include <algorithm>
#include <map>

#include "analysis/critical_path.hpp"
#include "platform/constraints.hpp"
#include "support/strings.hpp"

namespace segbus::analysis {

namespace {

/// Conservative per-package tick slack covering cross-clock-domain edge
/// rounding (every handshake can round up to one tick of the receiving
/// domain) in the upper bounds.
constexpr std::uint64_t kPackageSlackTicks = 24;

/// Per-stage slack: stage-gate turnaround plus the end-of-run monitor poll.
constexpr std::uint64_t kStageSlackTicks = 16;

}  // namespace

std::string StaticBounds::to_string() const {
  return "lower bound = " + format_ps(lower) +
         ", upper bound = " + format_ps(upper) +
         " (v1: " + format_ps(lower_v1) + " .. " + format_ps(upper_v1) +
         str_format("; %zu stages)", stages.size());
}

Result<StaticBounds> compute_static_bounds(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing) {
  SEGBUS_RETURN_IF_ERROR(
      platform::validate_mapping_or_error(platform, application));

  // The engine rescales compute costs to the platform's package size
  // before emulating (Engine::create); both bound generations must model
  // the application the engine actually runs.
  psdf::PsdfModel rescaled;
  const psdf::PsdfModel* app = &application;
  if (application.package_size() != platform.package_size()) {
    SEGBUS_ASSIGN_OR_RETURN(
        rescaled,
        application.rescaled_for_package_size(platform.package_size()));
    app = &rescaled;
  }

  const std::uint32_t s = platform.package_size();

  // Group flows by ordering tier — the engine serializes tiers globally.
  std::map<std::uint32_t, std::vector<psdf::Flow>> tiers;
  for (const psdf::Flow& flow : app->scheduled_flows()) {
    tiers[flow.ordering].push_back(flow);
  }

  std::vector<ClockDomain> domains;
  const std::int64_t ca_period = platform.ca_clock().period_ps();
  std::int64_t slowest_period = ca_period;
  for (platform::SegmentId id = 0; id < platform.segment_count(); ++id) {
    domains.emplace_back(platform.segment(id).name,
                         platform.segment(id).clock);
    slowest_period = std::max(slowest_period, domains.back().period_ps());
  }

  // Upper bounds: tick budgets charged per package. Every handshake of
  // the timing model is included, plus slack for tick rounding at each
  // clock-domain boundary. v1 prices every overhead tick at the slowest
  // domain of the whole platform; v2 prices it at the slowest domain the
  // package actually involves (source + path segments + CA for
  // inter-segment packages, the source segment alone for local ones) —
  // an uninvolved domain only ever gates a package through the stage
  // gate, which the per-stage slack covers at the global slowest clock.
  const std::uint64_t local_overhead_ticks =
      2 + timing.request_ticks + timing.sa_decision_ticks +
      timing.grant_set_ticks + timing.master_response_ticks +
      timing.grant_reset_ticks + kPackageSlackTicks;
  const std::uint64_t global_extra_ticks =
      8 + timing.ca_decision_ticks + 2 * timing.ca_signal_ticks;
  const std::uint64_t per_hop_ticks =
      static_cast<std::uint64_t>(s) + timing.bu_grant_turnaround_ticks +
      timing.bu_sync_ticks + 6;

  // v2 lower: the contention-aware critical path (same tier grouping, so
  // its stages line up index-for-index with the v1 skeleton below).
  SEGBUS_ASSIGN_OR_RETURN(CriticalPathResult critical,
                          critical_path_lower_bound(*app, platform, timing));

  StaticBounds bounds;
  for (const auto& [ordering, flows] : tiers) {
    StageBounds stage;
    stage.ordering = ordering;

    // v1 lower ingredients: per-master serial ticks and per-segment bus
    // occupancy (the original coarse skeleton — unchanged so the two
    // generations stay comparable release over release).
    std::map<psdf::ProcessId, std::uint64_t> master_ticks;
    std::map<platform::SegmentId, std::uint64_t> bus_ticks;
    std::map<psdf::ProcessId, platform::SegmentId> master_segment;
    Picoseconds upper_v1{0};
    Picoseconds upper_v2{0};

    for (const psdf::Flow& flow : flows) {
      const std::string& src_name = app->process(flow.source).name;
      const std::string& dst_name = app->process(flow.target).name;
      SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId src,
                              platform.require_segment_of(src_name));
      SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId dst,
                              platform.require_segment_of(dst_name));
      const std::uint64_t packages =
          psdf::packages_for(flow.data_items, platform.package_size());
      const std::uint32_t hops = platform.distance(src, dst);

      // v1 lower: a master cannot finish a package in fewer than
      // C + 1 (request) + s (data phase) ticks of its own domain; a bus
      // cannot move one in fewer than s ticks.
      master_ticks[flow.source] += packages * (flow.compute_ticks + 1 + s);
      master_segment[flow.source] = src;
      SEGBUS_ASSIGN_OR_RETURN(std::vector<platform::PathHop> path,
                              platform.path(src, dst));
      std::int64_t involved_period = domains[src].period_ps();
      for (const platform::PathHop& hop : path) {
        bus_ticks[hop.segment] += packages * s;
        involved_period = std::max(involved_period,
                                   domains[hop.segment].period_ps());
      }

      // Upper: full serialization — the platform does nothing but this
      // package. Compute + source data phase in the source domain; every
      // handshake (and hop forwarding) in the slowest (v1) respectively
      // slowest-involved (v2) domain.
      std::uint64_t overhead_ticks = local_overhead_ticks;
      if (hops > 0) {
        overhead_ticks += global_extra_ticks + hops * per_hop_ticks;
        involved_period = std::max(involved_period, ca_period);
      }
      const Picoseconds compute_and_data = domains[src].span(
          static_cast<std::int64_t>(flow.compute_ticks + s));
      upper_v1 += static_cast<std::int64_t>(packages) *
                  (compute_and_data +
                   Picoseconds(static_cast<std::int64_t>(overhead_ticks) *
                               slowest_period));
      upper_v2 += static_cast<std::int64_t>(packages) *
                  (compute_and_data +
                   Picoseconds(static_cast<std::int64_t>(overhead_ticks) *
                               involved_period));
    }

    for (const auto& [process, ticks] : master_ticks) {
      Picoseconds t = domains[master_segment[process]].span(
          static_cast<std::int64_t>(ticks));
      if (t > stage.lower_v1) {
        stage.lower_v1 = t;
        stage.lower_binding =
            "master " + app->process(process).name;
      }
    }
    for (const auto& [segment, ticks] : bus_ticks) {
      Picoseconds t = domains[segment].span(static_cast<std::int64_t>(ticks));
      if (t > stage.lower_v1) {
        stage.lower_v1 = t;
        stage.lower_binding =
            platform::PlatformModel::segment_display_name(segment);
      }
    }

    // Merge generations: the v2 lower starts from the v1 figure (so
    // dominance holds by construction) and takes the critical-path
    // component when it is strictly tighter.
    stage.lower = stage.lower_v1;
    const std::size_t index = bounds.stages.size();
    if (index < critical.stages.size() &&
        critical.stages[index].ordering == ordering &&
        critical.stages[index].lower > stage.lower) {
      stage.lower = critical.stages[index].lower;
      stage.lower_binding = critical.stages[index].binding;
    }

    const Picoseconds stage_slack(
        static_cast<std::int64_t>(kStageSlackTicks +
                                  timing.monitor_poll_ticks) *
        slowest_period);
    stage.upper_v1 = upper_v1 + stage_slack;
    stage.upper = std::min(stage.upper_v1, upper_v2 + stage_slack);

    bounds.lower += stage.lower;
    bounds.upper += stage.upper;
    bounds.lower_v1 += stage.lower_v1;
    bounds.upper_v1 += stage.upper_v1;
    bounds.stages.push_back(std::move(stage));
  }
  return bounds;
}

JsonValue bounds_to_json(const StaticBounds& bounds) {
  JsonValue root = JsonValue::object();
  root.set("lower_ps",
           JsonValue::integer(bounds.lower.count()));
  root.set("upper_ps",
           JsonValue::integer(bounds.upper.count()));
  root.set("lower_v1_ps", JsonValue::integer(bounds.lower_v1.count()));
  root.set("upper_v1_ps", JsonValue::integer(bounds.upper_v1.count()));
  JsonValue stages = JsonValue::array();
  for (const StageBounds& stage : bounds.stages) {
    JsonValue entry = JsonValue::object();
    entry.set("ordering", JsonValue::unsigned_integer(stage.ordering));
    entry.set("lower_ps", JsonValue::integer(stage.lower.count()));
    entry.set("upper_ps", JsonValue::integer(stage.upper.count()));
    entry.set("lower_v1_ps", JsonValue::integer(stage.lower_v1.count()));
    entry.set("upper_v1_ps", JsonValue::integer(stage.upper_v1.count()));
    entry.set("lower_binding", JsonValue::string(stage.lower_binding));
    stages.push(std::move(entry));
  }
  root.set("stages", std::move(stages));
  return root;
}

}  // namespace segbus::analysis
