#include "analysis/bounds.hpp"

#include <algorithm>
#include <map>

#include "platform/constraints.hpp"
#include "support/strings.hpp"

namespace segbus::analysis {

namespace {

/// Conservative per-package tick slack covering cross-clock-domain edge
/// rounding (every handshake can round up to one tick of the receiving
/// domain) in the upper bound.
constexpr std::uint64_t kPackageSlackTicks = 24;

/// Per-stage slack: stage-gate turnaround plus the end-of-run monitor poll.
constexpr std::uint64_t kStageSlackTicks = 16;

}  // namespace

std::string StaticBounds::to_string() const {
  return "lower bound = " + format_ps(lower) +
         ", upper bound = " + format_ps(upper) +
         str_format(" (%zu stages)", stages.size());
}

Result<StaticBounds> compute_static_bounds(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing) {
  SEGBUS_RETURN_IF_ERROR(
      platform::validate_mapping_or_error(platform, application));

  const std::uint32_t s = platform.package_size();

  // Group flows by ordering tier — the engine serializes tiers globally.
  std::map<std::uint32_t, std::vector<psdf::Flow>> tiers;
  for (const psdf::Flow& flow : application.scheduled_flows()) {
    tiers[flow.ordering].push_back(flow);
  }

  std::vector<ClockDomain> domains;
  std::int64_t slowest_period = platform.ca_clock().period_ps();
  for (platform::SegmentId id = 0; id < platform.segment_count(); ++id) {
    domains.emplace_back(platform.segment(id).name,
                         platform.segment(id).clock);
    slowest_period = std::max(slowest_period, domains.back().period_ps());
  }

  // Upper bound: tick budgets charged per package in the slowest domain.
  // Every handshake of the timing model is included, plus slack for tick
  // rounding at each clock-domain boundary.
  const std::uint64_t local_overhead_ticks =
      2 + timing.request_ticks + timing.sa_decision_ticks +
      timing.grant_set_ticks + timing.master_response_ticks +
      timing.grant_reset_ticks + kPackageSlackTicks;
  const std::uint64_t global_extra_ticks =
      8 + timing.ca_decision_ticks + 2 * timing.ca_signal_ticks;
  const std::uint64_t per_hop_ticks =
      static_cast<std::uint64_t>(s) + timing.bu_grant_turnaround_ticks +
      timing.bu_sync_ticks + 6;

  StaticBounds bounds;
  for (const auto& [ordering, flows] : tiers) {
    StageBounds stage;
    stage.ordering = ordering;

    // Lower bound ingredients: per-master serial ticks and per-segment bus
    // occupancy (the same skeleton as core::analytic_lower_bound, which
    // delegates here — iteration order and tie-breaking must not change).
    std::map<psdf::ProcessId, std::uint64_t> master_ticks;
    std::map<platform::SegmentId, std::uint64_t> bus_ticks;
    std::map<psdf::ProcessId, platform::SegmentId> master_segment;
    Picoseconds upper{0};

    for (const psdf::Flow& flow : flows) {
      const std::string& src_name = application.process(flow.source).name;
      const std::string& dst_name = application.process(flow.target).name;
      SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId src,
                              platform.require_segment_of(src_name));
      SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId dst,
                              platform.require_segment_of(dst_name));
      const std::uint64_t packages =
          psdf::packages_for(flow.data_items, platform.package_size());
      const std::uint32_t hops = platform.distance(src, dst);

      // Lower: a master cannot finish a package in fewer than
      // C + 1 (request) + s (data phase) ticks of its own domain; a bus
      // cannot move one in fewer than s ticks.
      master_ticks[flow.source] += packages * (flow.compute_ticks + 1 + s);
      master_segment[flow.source] = src;
      SEGBUS_ASSIGN_OR_RETURN(std::vector<platform::PathHop> path,
                              platform.path(src, dst));
      for (const platform::PathHop& hop : path) {
        bus_ticks[hop.segment] += packages * s;
      }

      // Upper: full serialization — the platform does nothing but this
      // package. Compute + source data phase in the source domain; every
      // handshake (and hop forwarding) in the slowest domain.
      std::uint64_t overhead_ticks = local_overhead_ticks;
      if (hops > 0) {
        overhead_ticks += global_extra_ticks + hops * per_hop_ticks;
      }
      const Picoseconds per_package =
          domains[src].span(
              static_cast<std::int64_t>(flow.compute_ticks + s)) +
          Picoseconds(static_cast<std::int64_t>(overhead_ticks) *
                      slowest_period);
      upper += static_cast<std::int64_t>(packages) * per_package;
    }

    for (const auto& [process, ticks] : master_ticks) {
      Picoseconds t = domains[master_segment[process]].span(
          static_cast<std::int64_t>(ticks));
      if (t > stage.lower) {
        stage.lower = t;
        stage.lower_binding =
            "master " + application.process(process).name;
      }
    }
    for (const auto& [segment, ticks] : bus_ticks) {
      Picoseconds t = domains[segment].span(static_cast<std::int64_t>(ticks));
      if (t > stage.lower) {
        stage.lower = t;
        stage.lower_binding =
            platform::PlatformModel::segment_display_name(segment);
      }
    }

    stage.upper =
        upper + Picoseconds(static_cast<std::int64_t>(
                    kStageSlackTicks + timing.monitor_poll_ticks) *
                slowest_period);
    bounds.lower += stage.lower;
    bounds.upper += stage.upper;
    bounds.stages.push_back(std::move(stage));
  }
  return bounds;
}

JsonValue bounds_to_json(const StaticBounds& bounds) {
  JsonValue root = JsonValue::object();
  root.set("lower_ps",
           JsonValue::integer(bounds.lower.count()));
  root.set("upper_ps",
           JsonValue::integer(bounds.upper.count()));
  JsonValue stages = JsonValue::array();
  for (const StageBounds& stage : bounds.stages) {
    JsonValue entry = JsonValue::object();
    entry.set("ordering", JsonValue::unsigned_integer(stage.ordering));
    entry.set("lower_ps", JsonValue::integer(stage.lower.count()));
    entry.set("upper_ps", JsonValue::integer(stage.upper.count()));
    entry.set("lower_binding", JsonValue::string(stage.lower_binding));
    stages.push(std::move(entry));
  }
  root.set("stages", std::move(stages));
  return root;
}

}  // namespace segbus::analysis
