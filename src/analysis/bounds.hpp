// Static performance bounds — a bracket around the emulated execution time.
//
// The paper validates its emulator against a real platform; this module
// brackets the emulator itself with two closed-form figures that need no
// event processing at all:
//
//  * lower — a *provable* lower bound. Within one stage (ordering tier) it
//    takes the maximum of each master's serial work
//    (packages x (C + request + data) ticks of its segment clock) and each
//    segment bus's raw data occupancy, then sums the stages (the schedule
//    serializes tiers globally). Every optional handshake is dropped, so
//    no schedule can beat it. Identical to core::analytic_lower_bound,
//    which delegates here.
//
//  * upper — a full-serialization upper bound. It charges every package as
//    if the whole platform did nothing else: compute + data in the source
//    domain, every handshake of the configured timing model (plus
//    conservative slack for cross-domain tick rounding) in the *slowest*
//    domain, and per-stage slack for the stage gate and end-of-run monitor
//    poll. No concurrency is assumed anywhere, so the emulated figure
//    cannot exceed it.
//
// Tests assert lower <= emulated TCT <= upper across the MP3 decoder
// platforms; tools print the bracket next to the emulated figure.
#pragma once

#include "emu/timing.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/json.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::analysis {

/// Bounds of one schedule stage (one ordering tier).
struct StageBounds {
  std::uint32_t ordering = 0;    ///< the stage's T value
  Picoseconds lower{0};          ///< critical-path lower bound
  Picoseconds upper{0};          ///< full-serialization upper bound
  std::string lower_binding;     ///< what binds the lower bound:
                                 ///< "master P3" or "Segment 1"
};

/// The bracket for a whole mapped application.
struct StaticBounds {
  Picoseconds lower{0};
  Picoseconds upper{0};
  std::vector<StageBounds> stages;

  /// True when `t` falls inside the bracket (inclusive).
  bool brackets(Picoseconds t) const noexcept {
    return lower <= t && t <= upper;
  }

  std::string to_string() const;
};

/// Computes the bracket. Fails with ValidationError when the mapping is
/// incomplete (every process must be placed on a segment).
Result<StaticBounds> compute_static_bounds(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing = emu::TimingModel::emulator());

/// Machine-readable rendering ({"lower_ps": ..., "upper_ps": ..., stages}).
JsonValue bounds_to_json(const StaticBounds& bounds);

}  // namespace segbus::analysis
