// Static performance bounds — a two-generation bracket around the emulated
// execution time.
//
// The paper validates its emulator against a real platform; this module
// brackets the emulator itself with closed-form figures that need no event
// processing at all. Two generations of each bound are computed and the
// invariant lower_v1 <= lower <= emulated <= upper <= upper_v1 holds by
// construction (scen oracle invariant 9 enforces it over fuzz campaigns):
//
//  * lower_v1 — the original coarse bound: per ordering tier, the larger
//    of each master's serial compute+data work and each segment bus's raw
//    data occupancy, tiers summed.
//  * lower (v2) — the contention-aware critical-path bound: the v1
//    skeleton tightened per tier with the master-chain, bus-occupancy,
//    flow-pipeline and CA-grant-serialization components of
//    analysis/critical_path.hpp. This is the prune oracle's figure.
//  * upper_v1 — full serialization with every per-package overhead charged
//    at the slowest clock in the whole platform.
//  * upper (v2) — the same serialization argument, but each package's
//    overhead is charged at the slowest clock actually involved in that
//    package's life (its source segment, path segments and — for
//    inter-segment packages — the CA) instead of the global slowest.
//    Uninvolved domains can only gate a package through the stage gate,
//    which the per-stage slack already covers at the global slowest clock.
//
// `lower`/`upper` always carry the tightest (v2) figures, so existing
// consumers (oracle bracket checks, lint output, the prune oracle)
// tighten automatically. Unlike v1, both generations rescale the
// application to the platform's package size first, exactly as the engine
// does before emulating.
#pragma once

#include "emu/timing.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/json.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::analysis {

/// Bounds of one schedule stage (one ordering tier), both generations.
struct StageBounds {
  std::uint32_t ordering = 0;    ///< the stage's T value
  Picoseconds lower{0};          ///< v2 critical-path lower bound
  Picoseconds upper{0};          ///< v2 involved-domain upper bound
  Picoseconds lower_v1{0};       ///< original coarse lower bound
  Picoseconds upper_v1{0};       ///< original slowest-domain upper bound
  std::string lower_binding;     ///< what binds the v2 lower bound:
                                 ///< "master P3", "Segment 1 bus", ...
};

/// The bracket for a whole mapped application.
struct StaticBounds {
  Picoseconds lower{0};          ///< tightest proven lower bound (v2)
  Picoseconds upper{0};          ///< tightest proven upper bound (v2)
  Picoseconds lower_v1{0};
  Picoseconds upper_v1{0};
  std::vector<StageBounds> stages;

  /// True when `t` falls inside the (v2) bracket (inclusive).
  bool brackets(Picoseconds t) const noexcept {
    return lower <= t && t <= upper;
  }

  /// True when the v1 bracket contains the v2 bracket (the dominance
  /// chain the oracle checks, minus the emulated figure).
  bool dominates_v1() const noexcept {
    return lower_v1 <= lower && upper <= upper_v1;
  }

  /// lower / emulated in [0, 1] — how close the proven lower bound gets
  /// to the measured figure (0 when `emulated` is not positive).
  double tightness(Picoseconds emulated) const noexcept {
    if (emulated.count() <= 0) return 0.0;
    return static_cast<double>(lower.count()) /
           static_cast<double>(emulated.count());
  }

  std::string to_string() const;
};

/// Computes the two-generation bracket. Fails with ValidationError when
/// the mapping is incomplete (every process must be placed on a segment).
Result<StaticBounds> compute_static_bounds(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing = emu::TimingModel::emulator());

/// Machine-readable rendering:
/// {lower_ps, upper_ps, lower_v1_ps, upper_v1_ps,
///  stages: [{ordering, lower_ps, upper_ps, lower_v1_ps, upper_v1_ps,
///            lower_binding}]}.
JsonValue bounds_to_json(const StaticBounds& bounds);

}  // namespace segbus::analysis
