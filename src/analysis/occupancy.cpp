#include "analysis/occupancy.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "platform/constraints.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace segbus::analysis {

std::string OccupancyReport::render() const {
  Table table;
  table.set_header({"border unit", "depth", "admission", "peak demand",
                    "occupancy bound", "packages", "flows", "recommended"});
  table.set_column_alignment(0, Align::kLeft);
  for (const BuOccupancy& bu : border_units) {
    table.add_row(
        {bu.name, str_format("%u", bu.capacity),
         str_format("%u", bu.admission_limit),
         str_format("%llu", static_cast<unsigned long long>(bu.peak_demand)),
         str_format("%llu",
                    static_cast<unsigned long long>(bu.occupancy_bound)),
         str_format("%llu",
                    static_cast<unsigned long long>(bu.total_packages)),
         str_format("%u", bu.crossing_flows),
         str_format("%u", bu.recommended_depth)});
  }
  return table.render();
}

Result<OccupancyReport> compute_fifo_occupancy(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing) {
  SEGBUS_RETURN_IF_ERROR(
      platform::validate_mapping_or_error(platform, application));

  psdf::PsdfModel rescaled;
  const psdf::PsdfModel* app = &application;
  if (application.package_size() != platform.package_size()) {
    SEGBUS_ASSIGN_OR_RETURN(
        rescaled,
        application.rescaled_for_package_size(platform.package_size()));
    app = &rescaled;
  }

  const std::uint32_t s = platform.package_size();
  const std::size_t bu_count = platform.border_units().size();

  OccupancyReport report;
  report.border_units.resize(bu_count);
  for (std::size_t i = 0; i < bu_count; ++i) {
    BuOccupancy& bu = report.border_units[i];
    const platform::BorderUnitSpec& spec = platform.border_units()[i];
    bu.bu_index = i;
    bu.name = spec.name();
    bu.capacity = spec.capacity_packages;
    bu.admission_limit =
        timing.circuit_switched ? 1u : spec.capacity_packages;
  }

  // Per tier and BU: the packages the schedule could have in flight at
  // once. A blocking master (the default) holds until delivery, so it
  // contributes at most one concurrent package; a non-blocking master can
  // pump every package of the tier back to back.
  std::map<std::uint32_t, std::vector<std::uint64_t>> tier_packages;
  std::map<std::uint32_t, std::vector<std::set<psdf::ProcessId>>>
      tier_masters;

  for (const psdf::Flow& flow : app->scheduled_flows()) {
    const std::string& src_name = app->process(flow.source).name;
    const std::string& dst_name = app->process(flow.target).name;
    SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId src,
                            platform.require_segment_of(src_name));
    SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId dst,
                            platform.require_segment_of(dst_name));
    if (src == dst) continue;
    SEGBUS_ASSIGN_OR_RETURN(std::vector<platform::PathHop> path,
                            platform.path(src, dst));
    const std::uint64_t n = psdf::packages_for(flow.data_items, s);
    auto& packages = tier_packages[flow.ordering];
    auto& masters = tier_masters[flow.ordering];
    packages.resize(bu_count, 0);
    masters.resize(bu_count);
    for (const platform::PathHop& hop : path) {
      if (!hop.exit_bu) continue;
      BuOccupancy& bu = report.border_units[*hop.exit_bu];
      bu.total_packages += n;
      ++bu.crossing_flows;
      packages[*hop.exit_bu] += n;
      masters[*hop.exit_bu].insert(flow.source);
    }
  }

  for (const auto& [tier, packages] : tier_packages) {
    const auto& masters = tier_masters[tier];
    for (std::size_t i = 0; i < bu_count; ++i) {
      const std::uint64_t demand =
          timing.master_blocking ? masters[i].size() : packages[i];
      report.border_units[i].peak_demand =
          std::max(report.border_units[i].peak_demand, demand);
    }
  }

  for (BuOccupancy& bu : report.border_units) {
    bu.occupancy_bound = std::min<std::uint64_t>(bu.admission_limit,
                                                 bu.peak_demand);
    if (timing.circuit_switched || bu.peak_demand == 0) {
      bu.recommended_depth = 1;
    } else {
      bu.recommended_depth = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(bu.peak_demand, 0xffffffffULL));
    }
  }
  return report;
}

void lint_occupancy(const OccupancyReport& report,
                    const emu::TimingModel& timing, ValidationReport& out) {
  for (const BuOccupancy& bu : report.border_units) {
    if (bu.total_packages == 0) {
      out.add(Severity::kNote, "SB072", "psm.bu.unused",
              bu.name + " is crossed by no scheduled flow");
      continue;
    }
    if (bu.capacity > bu.occupancy_bound) {
      out.add(
          Severity::kNote, "SB070", "psm.bu.oversized",
          str_format("%s FIFO depth %u exceeds the provable peak occupancy "
                     "%llu — the extra slots can never fill",
                     bu.name.c_str(), bu.capacity,
                     static_cast<unsigned long long>(bu.occupancy_bound)));
    }
    if (!timing.circuit_switched && bu.peak_demand > bu.capacity) {
      out.add(
          Severity::kWarning, "SB071", "psm.bu.serializing",
          str_format("%s FIFO depth %u is below the concurrent demand %llu "
                     "— the CA must serialize grants through it (depth "
                     "%u would admit the full tier)",
                     bu.name.c_str(), bu.capacity,
                     static_cast<unsigned long long>(bu.peak_demand),
                     bu.recommended_depth));
    }
  }
}

JsonValue occupancy_to_json(const OccupancyReport& report) {
  JsonValue array = JsonValue::array();
  for (const BuOccupancy& bu : report.border_units) {
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue::string(bu.name));
    entry.set("capacity", JsonValue::unsigned_integer(bu.capacity));
    entry.set("admission_limit",
              JsonValue::unsigned_integer(bu.admission_limit));
    entry.set("peak_demand", JsonValue::unsigned_integer(bu.peak_demand));
    entry.set("occupancy_bound",
              JsonValue::unsigned_integer(bu.occupancy_bound));
    entry.set("total_packages",
              JsonValue::unsigned_integer(bu.total_packages));
    entry.set("crossing_flows",
              JsonValue::unsigned_integer(bu.crossing_flows));
    entry.set("recommended_depth",
              JsonValue::unsigned_integer(bu.recommended_depth));
    array.push(std::move(entry));
  }
  return array;
}

}  // namespace segbus::analysis
