#include "analysis/deadlock.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "psdf/comm_matrix.hpp"
#include "support/strings.hpp"

namespace segbus::analysis {

namespace {

/// One inter-segment transfer: a directed interval over the linear
/// topology.
struct PathUse {
  std::uint32_t tier = 0;
  psdf::ProcessId source = 0;
  psdf::ProcessId target = 0;
  platform::SegmentId lo = 0;   ///< lower endpoint segment
  platform::SegmentId hi = 0;   ///< higher endpoint segment
  bool rightward = true;        ///< true when source segment < target segment
  std::uint64_t packages = 0;
};

std::string describe(const psdf::PsdfModel& model, const PathUse& use) {
  return str_format("%s -> %s (segment %u to %u, %llu packages)",
                    model.process(use.source).name.c_str(),
                    model.process(use.target).name.c_str(),
                    (use.rightward ? use.lo : use.hi) + 1,
                    (use.rightward ? use.hi : use.lo) + 1,
                    static_cast<unsigned long long>(use.packages));
}

}  // namespace

ValidationReport analyze_paths(const psdf::PsdfModel& model,
                               const platform::PlatformModel& platform) {
  ValidationReport report;

  // Project the communication matrix onto the linear topology: one PathUse
  // per (tier, source, target) with at least one package to move between
  // distinct segments.
  const psdf::CommMatrix matrix = psdf::CommMatrix::from_model(model);
  std::vector<PathUse> uses;
  for (const psdf::Flow& flow : model.scheduled_flows()) {
    auto src = platform.segment_of(model.process(flow.source).name);
    auto dst = platform.segment_of(model.process(flow.target).name);
    if (!src || !dst || *src == *dst) continue;
    PathUse use;
    use.tier = flow.ordering;
    use.source = flow.source;
    use.target = flow.target;
    use.lo = std::min(*src, *dst);
    use.hi = std::max(*src, *dst);
    use.rightward = *src < *dst;
    use.packages = matrix.packages_at(flow.source, flow.target,
                                      platform.package_size());
    if (use.packages == 0) continue;
    uses.push_back(use);
  }

  // Pairwise head-on overlap detection. Path counts are small (one per
  // inter-segment flow), so the quadratic scan is fine.
  std::set<std::pair<std::uint32_t, std::uint32_t>> cross_tier_noted;
  for (std::size_t i = 0; i < uses.size(); ++i) {
    for (std::size_t j = i + 1; j < uses.size(); ++j) {
      const PathUse& a = uses[i];
      const PathUse& b = uses[j];
      if (a.rightward == b.rightward) continue;  // same direction: no cycle
      const platform::SegmentId lo = std::max(a.lo, b.lo);
      const platform::SegmentId hi = std::min(a.hi, b.hi);
      if (lo > hi) continue;  // disjoint intervals
      const std::uint32_t overlap = hi - lo + 1;

      if (a.tier != b.tier) {
        // The engine's stage gate keeps tiers strictly sequential, so
        // head-on paths in different tiers can never hold resources at the
        // same time. Note it once per tier pair for designers targeting
        // pipelined schedulers.
        const std::pair<std::uint32_t, std::uint32_t> key =
            std::minmax(a.tier, b.tier);
        if (overlap >= 2 && cross_tier_noted.insert(key).second) {
          report.add(
              Severity::kNote, "SB052", "path.reserve.crosstier",
              str_format("tiers %u and %u carry head-on inter-segment "
                         "paths (e.g. ",
                         key.first, key.second) +
                  describe(model, a) + " vs " + describe(model, b) +
                  "); safe under the staged schedule, unsafe if tiers "
                  "were overlapped");
        }
        continue;
      }

      if (overlap >= 2) {
        // Same tier, opposite directions, two or more shared segments:
        // each transfer can seize its entry segment and starve the other's
        // exit — a cycle in the path resource graph.
        report.add(Severity::kError, "SB050", "path.reserve.cycle",
                   str_format("ordering tier %u reserves head-on "
                              "inter-segment paths overlapping on %u "
                              "segments: ",
                              a.tier, overlap) +
                       describe(model, a) + " vs " + describe(model, b));
      } else {
        report.add(Severity::kWarning, "SB051", "path.reserve.overlap",
                   str_format("ordering tier %u has head-on paths sharing "
                              "segment %u: ",
                              a.tier, lo + 1) +
                       describe(model, a) + " vs " + describe(model, b) +
                       "; the shared bus serializes them (no cycle)");
      }
    }
  }

  return report;
}

}  // namespace segbus::analysis
