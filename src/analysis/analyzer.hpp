// The analysis driver: every static pass over one (PSDF, PSM) pair.
//
// Runs, in order: PSDF structural validation (SB001..SB006), model lint
// (SB007..SB009), platform + mapping validation (SB020..SB034), clock lint
// (SB035..SB036) and — once the mapping is complete — path-reservation
// deadlock analysis (SB050..SB052), the FIFO occupancy bounds
// (SB070..SB072) and the static performance bounds.
// The result feeds three consumers: segbus_lint / `segbus_cli check`
// (report + exit code), core::EmulationSession (hard errors abort before
// emulation) and the JSON exporters.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "analysis/bounds.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/occupancy.hpp"
#include "emu/timing.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/diag.hpp"

namespace segbus::analysis {

/// Knobs of one analyzer run.
struct AnalyzerOptions {
  /// Scheme file paths stamped into diagnostic locations (when the models
  /// came from disk).
  std::string psdf_file;
  std::string psm_file;

  /// Compute the static performance bounds (skipped automatically while
  /// the report has errors).
  bool include_bounds = true;

  /// Timing model for the upper bound.
  emu::TimingModel timing = emu::TimingModel::emulator();

  /// Per-code severity overrides, e.g. {"SB050", Severity::kWarning} for
  /// hosts whose arbiter reserves paths atomically (the bundled emulator).
  std::map<std::string, Severity, std::less<>> severity_overrides;
};

/// Everything the analyzer found.
struct AnalysisReport {
  ValidationReport report;
  std::optional<StaticBounds> bounds;
  /// Per-BU FIFO occupancy bounds (filled whenever the mapping is
  /// complete and the platform has border units).
  std::optional<OccupancyReport> occupancy;

  /// True when no error-severity diagnostics are present.
  bool ok() const noexcept { return report.ok(); }
};

/// Analyzes the application model alone (validation + lint; no platform,
/// no bounds).
AnalysisReport analyze_model(const psdf::PsdfModel& model,
                             const AnalyzerOptions& options = {});

/// Analyzes a mapped system end to end.
AnalysisReport analyze_system(const psdf::PsdfModel& model,
                              const platform::PlatformModel& platform,
                              const AnalyzerOptions& options = {});

}  // namespace segbus::analysis
