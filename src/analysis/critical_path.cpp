#include "analysis/critical_path.hpp"

#include <algorithm>
#include <map>

#include "analysis/bounds.hpp"
#include "platform/constraints.hpp"

namespace segbus::analysis {

namespace {

/// Exclusive bus holding of one segment within a tier, split so the final
/// teardown can be excluded (it may complete after the tier's last
/// delivery; every other charged tick provably precedes it).
struct SegmentLoad {
  std::uint64_t busy_ticks = 0;      ///< setup + data ticks
  std::uint64_t teardown_ticks = 0;  ///< grant resets of local transfers
};

}  // namespace

Result<CriticalPathResult> critical_path_lower_bound(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing) {
  SEGBUS_RETURN_IF_ERROR(
      platform::validate_mapping_or_error(platform, application));

  // The engine rescales compute costs to the platform's package size
  // before emulating (see Engine::create); the bound must model the same
  // application the engine runs.
  psdf::PsdfModel rescaled;
  const psdf::PsdfModel* app = &application;
  if (application.package_size() != platform.package_size()) {
    SEGBUS_ASSIGN_OR_RETURN(
        rescaled,
        application.rescaled_for_package_size(platform.package_size()));
    app = &rescaled;
  }

  const std::uint32_t s = platform.package_size();

  std::map<std::uint32_t, std::vector<psdf::Flow>> tiers;
  for (const psdf::Flow& flow : app->scheduled_flows()) {
    tiers[flow.ordering].push_back(flow);
  }

  std::vector<ClockDomain> domains;
  for (platform::SegmentId id = 0; id < platform.segment_count(); ++id) {
    domains.emplace_back(platform.segment(id).name,
                         platform.segment(id).clock);
  }
  const std::int64_t ca_period = platform.ca_clock().period_ps();

  // Tick prices, straight from the engine's bus-operation state machine:
  // a local transfer pays SA decision + grant set + master response as
  // setup; a granted global load skips the SA decision (the CA decided);
  // a forwarded package waits out the BU grant turnaround + synchronizer
  // in each receiving segment before its data phase.
  const std::uint64_t local_setup = timing.sa_decision_ticks +
                                    timing.grant_set_ticks +
                                    timing.master_response_ticks;
  const std::uint64_t global_setup =
      timing.grant_set_ticks + timing.master_response_ticks;
  const std::uint64_t hop_wait =
      timing.bu_grant_turnaround_ticks + timing.bu_sync_ticks;
  // Consecutive CA grants are at least one decision cycle plus the
  // post-grant cooldown apart (ca_grant_scan: one grant per cycle, then
  // grant_cooldown = ca_decision + ca_signal).
  const std::int64_t ca_spacing =
      1 + timing.ca_decision_ticks + timing.ca_signal_ticks;

  CriticalPathResult result;
  for (const auto& [ordering, flows] : tiers) {
    CriticalStage stage;
    stage.ordering = ordering;

    std::map<psdf::ProcessId, Picoseconds> chains;
    std::map<platform::SegmentId, SegmentLoad> bus;
    std::uint64_t global_packages = 0;
    Picoseconds best_pipe{0};
    std::string best_pipe_label;

    for (const psdf::Flow& flow : flows) {
      const std::string& src_name = app->process(flow.source).name;
      const std::string& dst_name = app->process(flow.target).name;
      SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId src,
                              platform.require_segment_of(src_name));
      SEGBUS_ASSIGN_OR_RETURN(platform::SegmentId dst,
                              platform.require_segment_of(dst_name));
      const std::uint64_t n = psdf::packages_for(flow.data_items, s);
      const std::int64_t p_src = domains[src].period_ps();

      if (src == dst) {
        const std::uint64_t per_package = flow.compute_ticks +
                                          timing.request_ticks +
                                          local_setup + s;
        chains[flow.source] += Picoseconds(
            static_cast<std::int64_t>(n * per_package) * p_src);
        bus[src].busy_ticks += n * (local_setup + s);
        bus[src].teardown_ticks += n * timing.grant_reset_ticks;
        continue;
      }

      SEGBUS_ASSIGN_OR_RETURN(std::vector<platform::PathHop> path,
                              platform.path(src, dst));
      // One package's downstream traversal: BU wait + forward data in
      // every segment after the source, each in that segment's domain.
      // One tick is forgiven per crossing: the receiving domain's first
      // tick after the package lands in the BU can fall arbitrarily soon
      // after the landing edge, so only hop_wait + s - 1 full receiver
      // periods are provable.
      std::int64_t hop_ps = 0;
      for (std::size_t i = 1; i < path.size(); ++i) {
        hop_ps += static_cast<std::int64_t>(hop_wait + s - 1) *
                  domains[path[i].segment].period_ps();
        bus[path[i].segment].busy_ticks += n * s;
      }
      const std::uint64_t emit = flow.compute_ticks + timing.request_ticks +
                                 global_setup + s;
      Picoseconds chain(static_cast<std::int64_t>(n * emit) * p_src);
      if (timing.master_blocking) {
        // The master is only released once the package reaches the
        // target, so every hop is on its serial chain.
        chain += Picoseconds(static_cast<std::int64_t>(n) * hop_ps);
      }
      chains[flow.source] += chain;
      bus[src].busy_ticks += n * (global_setup + s);
      global_packages += n;

      // Pipeline: the flow's last package leaves the source after n
      // serial emissions, then still traverses the downstream hops —
      // valid even when the master does not block.
      Picoseconds pipe(static_cast<std::int64_t>(n * emit) * p_src +
                       hop_ps);
      if (pipe > best_pipe) {
        best_pipe = pipe;
        best_pipe_label =
            "flow " + src_name + "->" + dst_name + " pipeline";
      }
    }

    for (const auto& [process, t] : chains) {
      if (t > stage.lower) {
        stage.lower = t;
        stage.binding = "master " + app->process(process).name + " chain";
      }
    }
    for (const auto& [segment, load] : bus) {
      std::uint64_t ticks = load.busy_ticks + load.teardown_ticks;
      if (load.teardown_ticks > 0) {
        ticks -= std::min<std::uint64_t>(load.teardown_ticks,
                                         timing.grant_reset_ticks);
      }
      Picoseconds t =
          domains[segment].span(static_cast<std::int64_t>(ticks));
      if (t > stage.lower) {
        stage.lower = t;
        stage.binding =
            platform::PlatformModel::segment_display_name(segment) + " bus";
      }
    }
    if (best_pipe > stage.lower) {
      stage.lower = best_pipe;
      stage.binding = best_pipe_label;
    }
    if (global_packages > 0) {
      Picoseconds t(
          (static_cast<std::int64_t>(global_packages - 1) * ca_spacing + 1) *
          ca_period);
      if (t > stage.lower) {
        stage.lower = t;
        stage.binding = "CA grants";
      }
    }

    result.lower += stage.lower;
    result.stages.push_back(std::move(stage));
  }
  return result;
}

Result<Picoseconds> PruneOracle::lower_bound(
    const platform::PlatformModel& platform) const {
  SEGBUS_ASSIGN_OR_RETURN(
      StaticBounds bounds,
      compute_static_bounds(application_, platform, timing_));
  return bounds.lower;
}

}  // namespace segbus::analysis
