#include "analysis/lint.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "support/strings.hpp"

namespace segbus::analysis {

namespace {

/// SB007: the schedule serializes tiers globally, so a gap in the T values
/// is either a leftover from editing or a misnumbered flow.
void check_tier_gaps(const psdf::PsdfModel& model, ValidationReport& report) {
  std::set<std::uint32_t> tiers;
  for (const psdf::Flow& f : model.flows()) tiers.insert(f.ordering);
  if (tiers.size() < 2) return;
  const std::uint32_t lo = *tiers.begin();
  const std::uint32_t hi = *tiers.rbegin();
  if (hi - lo + 1 == tiers.size()) return;
  std::string missing;
  for (std::uint32_t t = lo; t <= hi; ++t) {
    if (tiers.count(t) != 0) continue;
    if (!missing.empty()) missing += ", ";
    missing += str_format("%u", t);
  }
  report.add(Severity::kWarning, "SB007", "psdf.tier.gapped",
             str_format("ordering tiers %u..%u skip T = ", lo, hi) + missing);
}

/// SB008: a cycle confined to one ordering tier. psdf.flow.ordering only
/// compares a process's inputs against its outputs across tiers; two flows
/// P1 -> P2 and P2 -> P1 with the *same* T slip through that check yet can
/// never both make progress within the tier.
void check_tier_cycles(const psdf::PsdfModel& model,
                       ValidationReport& report) {
  std::map<std::uint32_t, std::vector<psdf::Flow>> tiers;
  for (const psdf::Flow& f : model.flows()) tiers[f.ordering].push_back(f);

  const std::size_t n = model.process_count();
  for (const auto& [tier, flows] : tiers) {
    std::vector<std::size_t> indegree(n, 0);
    std::vector<std::vector<std::size_t>> adjacency(n);
    for (const psdf::Flow& f : flows) {
      adjacency[f.source].push_back(f.target);
      ++indegree[f.target];
    }
    std::queue<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (indegree[i] == 0) ready.push(i);
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
      std::size_t node = ready.front();
      ready.pop();
      ++visited;
      for (std::size_t next : adjacency[node]) {
        if (--indegree[next] == 0) ready.push(next);
      }
    }
    if (visited == n) continue;
    std::string stuck;
    for (std::size_t i = 0; i < n; ++i) {
      if (indegree[i] == 0) continue;
      if (!stuck.empty()) stuck += ", ";
      stuck += model.process(static_cast<psdf::ProcessId>(i)).name;
    }
    report.add(Severity::kError, "SB008", "psdf.tier.cycle",
               str_format("flows of ordering tier %u form a cycle through ",
                          tier) +
                   stuck);
  }
}

/// SB009: an interior pipeline stage that consumes more items than it
/// produces (or vice versa) usually means a mistyped D value.
void check_token_balance(const psdf::PsdfModel& model,
                         ValidationReport& report) {
  for (const psdf::Process& p : model.processes()) {
    std::uint64_t in = 0, out = 0;
    bool has_in = false, has_out = false;
    for (const psdf::Flow& f : model.flows_into(p.id)) {
      in += f.data_items;
      has_in = true;
    }
    for (const psdf::Flow& f : model.flows_from(p.id)) {
      out += f.data_items;
      has_out = true;
    }
    if (!has_in || !has_out || in == out) continue;
    report.add(Severity::kWarning, "SB009", "psdf.token.balance",
               str_format("process %s consumes %llu data items but produces "
                          "%llu",
                          p.name.c_str(),
                          static_cast<unsigned long long>(in),
                          static_cast<unsigned long long>(out)),
               {std::string(), scheme_type_path(p.name)});
  }
}

}  // namespace

ValidationReport lint_model(const psdf::PsdfModel& model) {
  ValidationReport report;
  check_tier_gaps(model, report);
  check_tier_cycles(model, report);
  check_token_balance(model, report);
  return report;
}

ValidationReport lint_platform(const platform::PlatformModel& platform) {
  ValidationReport report;
  if (platform.segment_count() == 0) return report;

  std::int64_t min_period = 0, max_period = 0;
  platform::SegmentId slowest = 0, fastest = 0;
  for (platform::SegmentId id = 0; id < platform.segment_count(); ++id) {
    const std::int64_t period = platform.segment(id).clock.period_ps();
    if (period <= 0) return report;  // invalid clocks: SB023's business
    if (min_period == 0 || period < min_period) {
      min_period = period;
      fastest = id;
    }
    if (period > max_period) {
      max_period = period;
      slowest = id;
    }
  }

  // SB035: a >16x period spread makes every BU crossing dominated by the
  // slow side's synchronizer and the estimate formulas lose accuracy.
  if (max_period > 16 * min_period) {
    report.add(
        Severity::kWarning, "SB035", "psm.clock.spread",
        str_format("clock periods spread %lldx across segments (%s at "
                   "%lld ps vs %s at %lld ps)",
                   static_cast<long long>(max_period / min_period),
                   platform.segment(slowest).name.c_str(),
                   static_cast<long long>(max_period),
                   platform.segment(fastest).name.c_str(),
                   static_cast<long long>(min_period)));
  }

  // SB036: every inter-segment transfer waits on a CA decision; a CA
  // slower than all segments throttles the whole platform.
  if (platform.ca_clock().valid() &&
      platform.ca_clock().period_ps() > max_period) {
    report.add(Severity::kWarning, "SB036", "psm.clock.ca",
               str_format("the CA clock (%lld ps period) is slower than "
                          "every segment clock; global arbitration will "
                          "throttle inter-segment transfers",
                          static_cast<long long>(
                              platform.ca_clock().period_ps())),
               {std::string(), scheme_type_path("CA")});
  }
  return report;
}

}  // namespace segbus::analysis
