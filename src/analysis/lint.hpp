// Model lint — well-formedness checks beyond the hard OCL constraints.
//
// psdf/validate and platform/constraints reject models the emulator cannot
// run; the lint passes here flag models that *run* but are probably not
// what the designer meant: gapped ordering tiers, cycles hiding inside one
// tier, token-imbalanced pipelines, and suspicious clock-domain choices.
//
// Codes emitted (catalogue: analysis/diagnostics.hpp):
//   SB007  psdf.tier.gapped   — T values are not contiguous
//   SB008  psdf.tier.cycle    — flows of one tier form a cycle
//   SB009  psdf.token.balance — interior process consumes != produces
//   SB035  psm.clock.spread   — clock periods spread more than 16x
//   SB036  psm.clock.ca       — CA slower than every segment
#pragma once

#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/diag.hpp"

namespace segbus::analysis {

/// Lints the application model (SB007..SB009).
ValidationReport lint_model(const psdf::PsdfModel& model);

/// Lints the platform's clock-domain choices (SB035..SB036).
ValidationReport lint_platform(const platform::PlatformModel& platform);

}  // namespace segbus::analysis
