// Second-generation (v2) static lower bound — a contention-aware
// longest-path analysis over the segment-level event graph implied by the
// PSDF schedule.
//
// The v1 bound (analysis/bounds.hpp) only charges each master's serial
// compute+data work and each segment bus's raw data occupancy. This pass
// derives four additional admissible components per ordering tier, each a
// provable lower bound on the tier's span in the emulated protocol:
//
//  * master chain — a master's packages serialize through its phase
//    machine: per package it pays C + request + grant setup + the data
//    phase in its own domain; with a blocking master (the default
//    protocol) a global package additionally holds the master until the
//    package has crossed every downstream hop (BU grant turnaround +
//    synchronizer + forward data, each in the hop's domain).
//  * segment bus occupancy — a segment bus is exclusively held for the
//    whole bus operation, setup and teardown included, not just the data
//    ticks. One teardown per segment is excluded: the final grant reset
//    may fall after the tier's last delivery.
//  * flow pipeline — the last package of an inter-segment flow leaves the
//    source only after all of the flow's packages were emitted serially,
//    then still has to traverse every downstream hop. Valid whether or
//    not the master blocks, so it is the binding global component in
//    non-blocking ablations.
//  * CA grant serialization — the Central Arbiter issues at most one
//    inter-segment grant per CA cycle and then cools down for
//    ca_decision + ca_signal cycles, so G global packages in one tier
//    span at least (G-1) x (1 + cooldown) + 1 CA cycles.
//
// Tiers are summed: the stage gate starts tier k+1 strictly after tier
// k's last delivery, and every charged tick of a tier completes by that
// delivery. compute_static_bounds() merges these components with the v1
// skeleton so lower_v1 <= lower_v2 holds by construction.
#pragma once

#include <string>
#include <vector>

#include "emu/timing.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::analysis {

/// One ordering tier's v2 lower bound and the component that binds it.
struct CriticalStage {
  std::uint32_t ordering = 0;  ///< the tier's T value
  Picoseconds lower{0};
  /// Which component binds: "master P3 chain", "Segment 1 bus",
  /// "flow P1->P8 pipeline" or "CA grants".
  std::string binding;
};

/// The per-tier breakdown and total of the v2 lower bound.
struct CriticalPathResult {
  Picoseconds lower{0};
  std::vector<CriticalStage> stages;
};

/// Computes the v2 lower bound on its own (compute_static_bounds folds it
/// into the two-generation bracket — prefer that for reports). When the
/// application's package size differs from the platform's, the compute
/// costs are rescaled exactly as the engine does before emulating.
Result<CriticalPathResult> critical_path_lower_bound(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing = emu::TimingModel::emulator());

/// Admissible prune oracle for design-space exploration (ROADMAP item 2).
///
/// Wraps the v2 lower bound for branch-and-bound loops: a candidate
/// platform whose lower bound already exceeds the incumbent's *emulated*
/// execution time cannot win, so the engine run can be skipped.
/// Admissibility (lower_bound <= emulated TCT for every candidate) is what
/// makes the pruned search return a bit-identical best result; it is
/// enforced by scen oracle invariant 9 over fuzz campaigns.
class PruneOracle {
 public:
  /// The oracle is bound to one application + timing model; candidates
  /// vary the platform. `timing` must match what the engine will run
  /// (e.g. SessionConfig::timing), otherwise the bound is meaningless.
  explicit PruneOracle(psdf::PsdfModel application,
                       emu::TimingModel timing = emu::TimingModel::emulator())
      : application_(std::move(application)), timing_(timing) {}

  /// The tightest proven lower bound (v2) for this candidate platform.
  Result<Picoseconds> lower_bound(
      const platform::PlatformModel& platform) const;

  /// True when `candidate_lower` proves the candidate cannot beat the
  /// incumbent (ties are kept: an equal bound could still realize an
  /// equal execution time).
  static bool prunable(Picoseconds candidate_lower,
                       Picoseconds incumbent) noexcept {
    return incumbent.count() > 0 && candidate_lower > incumbent;
  }

 private:
  psdf::PsdfModel application_;
  emu::TimingModel timing_;
};

}  // namespace segbus::analysis
