// The SB0xx diagnostic catalogue and report renderers.
//
// Every diagnostic the SegBus tool chain can emit carries a stable code
// ("SB004"). The catalogue is the single source of truth for those codes:
// their constraint id, default severity and a one-line summary. Tests
// cross-check that every code emitted by a validator or analysis pass is
// registered here, and docs/ANALYSIS.md documents each entry with a minimal
// triggering model.
//
// Code ranges:
//   SB001..SB009  PSDF model (structure + lint)
//   SB020..SB039  PSM platform structure, mapping and clock lint
//   SB050..SB059  inter-segment path reservation (deadlock) analysis
//   SB060..SB069  session / engine-backend configuration
//   SB070..SB079  FIFO occupancy / buffer sizing (analysis/occupancy)
#pragma once

#include <string_view>
#include <vector>

#include "support/diag.hpp"
#include "support/json.hpp"

namespace segbus::analysis {

/// One registered diagnostic code.
struct CatalogEntry {
  std::string_view code;        ///< "SB004"
  std::string_view constraint;  ///< "psdf.flow.acyclic"
  Severity severity;            ///< default severity (tools may override)
  std::string_view summary;     ///< one-line description for --explain
};

/// The full catalogue, ordered by code.
const std::vector<CatalogEntry>& catalog();

/// Catalogue entry for a code, or nullptr when unregistered.
const CatalogEntry* find_code(std::string_view code);

/// Human-readable rendering: the report's diagnostics followed by a
/// "N errors, M warnings, K notes" summary line.
std::string render_text(const ValidationReport& report);

/// Machine-readable rendering (see docs/ANALYSIS.md for the shape).
JsonValue report_to_json(const ValidationReport& report);

}  // namespace segbus::analysis
