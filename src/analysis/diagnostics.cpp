#include "analysis/diagnostics.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace segbus::analysis {

const std::vector<CatalogEntry>& catalog() {
  static const std::vector<CatalogEntry> kCatalog = {
      // --- PSDF structure (psdf/validate) --------------------------------
      {"SB001", "psdf.nonempty", Severity::kError,
       "the application model must declare at least one process"},
      {"SB002", "psdf.flow.some", Severity::kWarning,
       "the application model declares no flows; nothing will be emulated"},
      {"SB003", "psdf.flow.ordering", Severity::kError,
       "a process sends at an ordering no later than one of its inputs"},
      {"SB004", "psdf.flow.acyclic", Severity::kError,
       "the flow graph contains a dependency cycle"},
      {"SB005", "psdf.flow.reachable", Severity::kWarning,
       "a process participates in no flow"},
      {"SB006", "psdf.compute.positive", Severity::kWarning,
       "a flow declares zero compute ticks"},
      // --- PSDF lint (analysis/lint) -------------------------------------
      {"SB007", "psdf.tier.gapped", Severity::kWarning,
       "ordering tiers are not contiguous (gapped T values)"},
      {"SB008", "psdf.tier.cycle", Severity::kError,
       "flows of one ordering tier form a cycle"},
      {"SB009", "psdf.token.balance", Severity::kWarning,
       "an interior process consumes and produces different item totals"},
      // --- PSM structure (platform/constraints) --------------------------
      {"SB020", "psm.platform.one_ca", Severity::kError,
       "the platform must configure exactly one CA with a valid clock"},
      {"SB021", "psm.platform.segments", Severity::kError,
       "the platform must contain at least one segment"},
      {"SB022", "psm.package_size", Severity::kError,
       "package size must be >= 1 (warning above 4096)"},
      {"SB023", "psm.segment.clock", Severity::kError,
       "every segment clock must be valid"},
      {"SB024", "psm.segment.fus", Severity::kError,
       "every segment must host at least one functional unit"},
      {"SB025", "psm.fu.interfaces", Severity::kError,
       "every FU needs at least one master or slave interface"},
      {"SB026", "psm.bu.adjacency", Severity::kError,
       "border units exist exactly between consecutive segments"},
      {"SB027", "psm.bu.capacity", Severity::kError,
       "border unit FIFO depth must be >= 1 package"},
      {"SB028", "psm.map.unique", Severity::kError,
       "no process may be mapped to more than one FU"},
      // --- mapping (platform/constraints) --------------------------------
      {"SB030", "map.total", Severity::kError,
       "every application process must be mapped to a segment"},
      {"SB031", "map.known", Severity::kError,
       "every mapped FU must realize an application process"},
      {"SB032", "map.master_needed", Severity::kError,
       "a process that initiates transfers needs a master interface"},
      {"SB033", "map.slave_needed", Severity::kError,
       "a process that receives transfers needs a slave interface"},
      {"SB034", "map.package_size", Severity::kWarning,
       "PSDF and PSM disagree on package size (emulator rescales)"},
      // --- platform clock lint (analysis/lint) ---------------------------
      {"SB035", "psm.clock.spread", Severity::kWarning,
       "clock-domain periods spread more than 16x across the platform"},
      {"SB036", "psm.clock.ca", Severity::kWarning,
       "the CA clock is slower than every segment clock"},
      // --- path-reservation (deadlock) analysis (analysis/deadlock) ------
      {"SB050", "path.reserve.cycle", Severity::kError,
       "same-tier opposite-direction paths overlap on >= 2 segments: "
       "incremental reservation could deadlock"},
      {"SB051", "path.reserve.overlap", Severity::kWarning,
       "same-tier opposite-direction paths share one segment (serialized)"},
      {"SB052", "path.reserve.crosstier", Severity::kNote,
       "head-on paths in different tiers (stage gate prevents concurrency)"},
      // --- session / engine-backend configuration (core/session) ---------
      {"SB060", "session.backend.threads", Severity::kError,
       "worker thread count set with a non-parallel engine backend"},
      // --- FIFO occupancy analysis (analysis/occupancy) -------------------
      {"SB070", "psm.bu.oversized", Severity::kNote,
       "BU FIFO depth exceeds the provable peak occupancy (dead slots)"},
      {"SB071", "psm.bu.serializing", Severity::kWarning,
       "BU FIFO depth is below the tier's concurrent demand: the CA must "
       "serialize grants through it"},
      {"SB072", "psm.bu.unused", Severity::kNote,
       "no scheduled flow crosses this border unit"},
  };
  return kCatalog;
}

const CatalogEntry* find_code(std::string_view code) {
  const std::vector<CatalogEntry>& entries = catalog();
  auto it = std::find_if(entries.begin(), entries.end(),
                         [&](const CatalogEntry& e) { return e.code == code; });
  return it == entries.end() ? nullptr : &*it;
}

std::string render_text(const ValidationReport& report) {
  std::string out;
  if (!report.diagnostics.empty()) out = report.to_string();
  out += str_format("%zu error(s), %zu warning(s), %zu note(s)\n",
                    report.error_count(), report.warning_count(),
                    report.note_count());
  return out;
}

JsonValue report_to_json(const ValidationReport& report) {
  JsonValue root = JsonValue::object();
  root.set("valid", JsonValue::boolean(report.ok()));
  root.set("errors", JsonValue::unsigned_integer(report.error_count()));
  root.set("warnings", JsonValue::unsigned_integer(report.warning_count()));
  root.set("notes", JsonValue::unsigned_integer(report.note_count()));
  JsonValue diagnostics = JsonValue::array();
  for (const Diagnostic& d : report.diagnostics) {
    JsonValue entry = JsonValue::object();
    entry.set("severity", JsonValue::string(severity_name(d.severity)));
    entry.set("code", JsonValue::string(d.code));
    entry.set("constraint", JsonValue::string(d.constraint));
    entry.set("message", JsonValue::string(d.message));
    if (!d.location.file.empty()) {
      entry.set("file", JsonValue::string(d.location.file));
    }
    if (!d.location.element.empty()) {
      entry.set("element", JsonValue::string(d.location.element));
    }
    diagnostics.push(std::move(entry));
  }
  root.set("diagnostics", std::move(diagnostics));
  return root;
}

}  // namespace segbus::analysis
