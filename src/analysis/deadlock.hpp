// Static deadlock analysis of inter-segment path reservations.
//
// Under the paper's circuit switching the CA connects the whole
// source..target path exclusively (Figure 2). Two transfers of the same
// ordering tier that run in *opposite* directions and overlap on two or
// more segments form a cycle in the path resource graph: an arbiter that
// granted each transfer its first segment could never complete either
// path. The bundled emulator reserves paths atomically at the CA and is
// therefore immune, but the model is then unsafe on any distributed or
// incremental arbiter — so the lint flags it statically.
//
// Codes emitted (catalogue: analysis/diagnostics.hpp):
//   SB050  path.reserve.cycle     — same-tier head-on overlap >= 2 segments
//   SB051  path.reserve.overlap   — same-tier head-on overlap of 1 segment
//                                   (a shared bus serializes; no cycle)
//   SB052  path.reserve.crosstier — head-on overlap across tiers (the stage
//                                   gate prevents concurrency; note only)
#pragma once

#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/diag.hpp"

namespace segbus::analysis {

/// Analyzes the communication matrix's inter-segment transfers against the
/// mapping. Requires every communicating process to be mapped (run the
/// validators first); unmapped endpoints are skipped silently.
ValidationReport analyze_paths(const psdf::PsdfModel& model,
                               const platform::PlatformModel& platform);

}  // namespace segbus::analysis
