#include "analysis/analyzer.hpp"

#include "analysis/deadlock.hpp"
#include "analysis/lint.hpp"
#include "platform/constraints.hpp"
#include "psdf/validate.hpp"

namespace segbus::analysis {

namespace {

void apply_overrides(ValidationReport& report,
                     const AnalyzerOptions& options) {
  if (options.severity_overrides.empty()) return;
  for (Diagnostic& d : report.diagnostics) {
    auto it = options.severity_overrides.find(d.code);
    if (it != options.severity_overrides.end()) d.severity = it->second;
  }
}

}  // namespace

AnalysisReport analyze_model(const psdf::PsdfModel& model,
                             const AnalyzerOptions& options) {
  AnalysisReport result;
  result.report = psdf::validate(model);
  result.report.merge(lint_model(model));
  result.report.stamp_file(options.psdf_file);
  apply_overrides(result.report, options);
  return result;
}

AnalysisReport analyze_system(const psdf::PsdfModel& model,
                              const platform::PlatformModel& platform,
                              const AnalyzerOptions& options) {
  AnalysisReport result;

  ValidationReport application = psdf::validate(model);
  application.merge(lint_model(model));
  application.stamp_file(options.psdf_file);

  ValidationReport system = platform::validate_mapping(platform, model);
  system.merge(lint_platform(platform));
  // The deadlock and occupancy passes walk segment_of() paths, so they
  // need a complete mapping; with validation errors present their input
  // would be garbage.
  if (application.ok() && system.ok()) {
    system.merge(analyze_paths(model, platform));
    if (!platform.border_units().empty()) {
      auto occupancy = compute_fifo_occupancy(model, platform,
                                              options.timing);
      if (occupancy.is_ok()) {
        lint_occupancy(*occupancy, options.timing, system);
        result.occupancy = std::move(occupancy).value();
      }
    }
  }
  system.stamp_file(options.psm_file);

  result.report = std::move(application);
  result.report.merge(std::move(system));
  apply_overrides(result.report, options);

  if (options.include_bounds && result.report.ok()) {
    auto bounds = compute_static_bounds(model, platform, options.timing);
    if (bounds.is_ok()) result.bounds = std::move(bounds).value();
  }
  return result;
}

}  // namespace segbus::analysis
