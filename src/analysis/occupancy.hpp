// Static FIFO occupancy bounds for the Border Units — the buffer-sizing
// side of the v2 analyzer.
//
// The CA only admits a package into an inter-segment path after reserving
// a slot in every Border Unit it will cross (circuit switching reserves
// the whole path, effectively depth 1; the pipelined discipline reserves
// one credit per BU up to its FIFO depth). That makes peak occupancy
// statically boundable per BU: it can never exceed the admission limit,
// and it can never exceed what the schedule actually pushes through the
// BU within one ordering tier.
//
// The report feeds three SB07x diagnostics (see docs/ANALYSIS.md):
//   SB070 psm.bu.oversized  — FIFO slots beyond the provable peak can
//                             never fill (wasted buffer area);
//   SB071 psm.bu.serializing — a depth-limited BU admits fewer packages
//                             than the tier concurrently offers, forcing
//                             the CA to serialize grants through it;
//   SB072 psm.bu.unused     — no scheduled flow ever crosses the BU.
#pragma once

#include <string>
#include <vector>

#include "emu/timing.hpp"
#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/diag.hpp"
#include "support/json.hpp"
#include "support/status.hpp"

namespace segbus::analysis {

/// Static occupancy bound of one Border Unit.
struct BuOccupancy {
  std::size_t bu_index = 0;          ///< index into platform.border_units()
  std::string name;                  ///< paper-style "BU12"
  std::uint32_t capacity = 0;        ///< configured FIFO depth (packages)
  /// Admission limit the CA enforces: 1 under circuit switching,
  /// the FIFO depth under the pipelined discipline.
  std::uint32_t admission_limit = 0;
  /// Worst single-tier concurrent demand: how many packages the schedule
  /// can have in flight through this BU at once if the CA admitted them
  /// all (blocking masters cap this at one per distinct sending master).
  std::uint64_t peak_demand = 0;
  /// Provable peak occupancy: min(admission_limit, peak_demand).
  std::uint64_t occupancy_bound = 0;
  std::uint64_t total_packages = 0;  ///< packages crossing over the run
  std::uint32_t crossing_flows = 0;  ///< distinct flows crossing
  /// FIFO depth that serves the schedule without forced serialization
  /// and without dead slots (1 when the BU is unused or circuit-switched).
  std::uint32_t recommended_depth = 1;
};

/// Occupancy bounds for every Border Unit of the platform.
struct OccupancyReport {
  std::vector<BuOccupancy> border_units;
  /// Fixed-width buffer-sizing table for CLI output.
  std::string render() const;
};

/// Computes the static occupancy bound per BU. Fails when the mapping is
/// incomplete. Rescales the application to the platform's package size
/// first, like the engine (only package counts matter here).
Result<OccupancyReport> compute_fifo_occupancy(
    const psdf::PsdfModel& application,
    const platform::PlatformModel& platform,
    const emu::TimingModel& timing = emu::TimingModel::emulator());

/// Appends the SB070/SB071/SB072 diagnostics derived from the report.
void lint_occupancy(const OccupancyReport& report,
                    const emu::TimingModel& timing,
                    ValidationReport& out);

/// Machine-readable rendering (array of per-BU objects; schema in
/// docs/ANALYSIS.md).
JsonValue occupancy_to_json(const OccupancyReport& report);

}  // namespace segbus::analysis
