// Streaming statistics: numerically stable running moments (Welford), a
// fixed-bin histogram with quantile estimation, and the small-sample
// inference helpers (normal/Student-t quantiles, exact order statistics)
// used by the replicated-run estimator. Used for package-latency
// distributions, stoch::Estimator confidence intervals, and the perf
// harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace segbus {

/// Welford's online algorithm: mean/variance in one pass, no catastrophic
/// cancellation.
class RunningStats {
 public:
  void add(double value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const RunningStats& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Equal-width histogram over [lo, hi] with under/overflow bins.
/// Quantiles are estimated by linear interpolation within the bin.
class Histogram {
 public:
  /// Precondition: hi > lo, bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds a histogram spanning the samples' range and adds them all.
  static Histogram of(const std::vector<double>& samples,
                      std::size_t bins = 20);

  void add(double value) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t index) const { return counts_.at(index); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  double bin_low(std::size_t index) const;
  double bin_high(std::size_t index) const;

  /// Estimated value at quantile q in [0, 1]; 0 when empty. Underflow
  /// samples clamp to `lo`, overflow to `hi`.
  double quantile(double q) const;

  /// ASCII rendering: one row per bin with a proportional bar.
  std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Standard normal quantile function Φ⁻¹(p) for p in (0, 1) (Acklam's
/// rational approximation, |relative error| < 1.15e-9). Returns ±infinity
/// at p = 0 / p = 1 and NaN outside [0, 1].
double inverse_normal_cdf(double p);

/// CDF of Student's t distribution with `dof` degrees of freedom,
/// evaluated via the regularized incomplete beta function (Lentz's
/// continued fraction). Precondition: dof >= 1.
double student_t_cdf(double t, std::uint64_t dof);

/// Two-sided Student-t critical value: the t such that
/// P(|T_dof| <= t) = confidence, i.e. the half-width multiplier of a
/// `confidence`-level interval for a mean estimated from dof + 1 samples.
/// Computed by bisection on student_t_cdf — exact for every dof, unlike
/// the usual 26.7.5 series which degrades below ~5 degrees of freedom.
/// Preconditions: dof >= 1, 0 < confidence < 1.
double student_t_critical(std::uint64_t dof, double confidence);

/// Exact sample quantile by linear interpolation between order statistics
/// (R type-7: h = (n-1)q). Sorts a copy; returns 0 when empty.
double sample_quantile(std::vector<double> samples, double q);

}  // namespace segbus
