// Leveled logging for the emulator and tools. Off (kWarn) by default so
// tests and benches stay quiet; the examples turn on kInfo to narrate runs.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace segbus {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level. Thread-safe (relaxed atomic underneath).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; returns kWarn on
/// unknown input.
LogLevel parse_log_level(std::string_view text);

namespace detail {
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

/// Stream-style accumulator; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

/// SEGBUS_LOG(kInfo, "emu") << "tick " << n;
#define SEGBUS_LOG(level, component)                        \
  if (::segbus::LogLevel::level < ::segbus::log_level()) {  \
  } else                                                    \
    ::segbus::detail::LogMessage(::segbus::LogLevel::level, (component))

}  // namespace segbus
