#include "support/build_info.hpp"

#ifndef SEGBUS_VERSION
#define SEGBUS_VERSION "0.0.0"
#endif
#ifndef SEGBUS_GIT_HASH
#define SEGBUS_GIT_HASH "unknown"
#endif
#ifndef SEGBUS_COMPILER
#define SEGBUS_COMPILER "unknown"
#endif
#ifndef SEGBUS_BUILD_TYPE
#define SEGBUS_BUILD_TYPE "unknown"
#endif

namespace segbus {

const BuildInfo& build_info() noexcept {
  static const BuildInfo info{SEGBUS_VERSION, SEGBUS_GIT_HASH,
                              SEGBUS_COMPILER, SEGBUS_BUILD_TYPE};
  return info;
}

std::string build_info_line() {
  const BuildInfo& info = build_info();
  return "segbus " + info.version + " (" + info.git_hash + ", " +
         info.compiler + ", " + info.build_type + ")";
}

}  // namespace segbus
