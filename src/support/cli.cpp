#include "support/cli.hpp"

#include "support/strings.hpp"

namespace segbus {

Result<CommandLine> CommandLine::parse(int argc, const char* const* argv) {
  CommandLine cli;
  if (argc > 0) cli.program_ = argv[0];
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (flags_done || !starts_with(arg, "--")) {
      cli.positional_.emplace_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string_view body = arg.substr(2);
    if (body.empty()) {
      return parse_error("empty flag name in argument list");
    }
    std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      std::string name(body.substr(0, eq));
      if (name.empty()) return parse_error("flag with empty name: " +
                                           std::string(arg));
      cli.flags_[std::move(name)] = std::string(body.substr(eq + 1));
      continue;
    }
    // --flag value  (when the next token is not itself a flag), else
    // boolean --flag / --no-flag.
    if (starts_with(body, "no-")) {
      cli.flags_[std::string(body.substr(3))] = "false";
      continue;
    }
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      cli.flags_[std::string(body)] = argv[i + 1];
      ++i;
    } else {
      cli.flags_[std::string(body)] = "true";
    }
  }
  return cli;
}

bool CommandLine::has_flag(std::string_view name) const {
  return flags_.find(name) != flags_.end();
}

std::optional<std::string> CommandLine::flag(std::string_view name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CommandLine::flag_or(std::string_view name,
                                 std::string_view fallback) const {
  auto v = flag(name);
  return v ? *v : std::string(fallback);
}

std::int64_t CommandLine::int_flag_or(std::string_view name,
                                      std::int64_t fallback) const {
  auto v = flag(name);
  if (!v) return fallback;
  auto parsed = parse_int(*v);
  return parsed ? *parsed : fallback;
}

double CommandLine::double_flag_or(std::string_view name,
                                   double fallback) const {
  auto v = flag(name);
  if (!v) return fallback;
  auto parsed = parse_double(*v);
  return parsed ? *parsed : fallback;
}

bool CommandLine::bool_flag_or(std::string_view name, bool fallback) const {
  auto v = flag(name);
  if (!v) return fallback;
  if (iequals(*v, "true") || *v == "1" || iequals(*v, "yes")) return true;
  if (iequals(*v, "false") || *v == "0" || iequals(*v, "no")) return false;
  return fallback;
}

std::vector<std::string> CommandLine::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

}  // namespace segbus
