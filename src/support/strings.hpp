// Small string utilities shared by the XML parser, model codecs and report
// formatters. All functions are pure and allocation-conscious.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace segbus {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view text, char sep);

/// Splits on `sep`, dropping empty fields.
std::vector<std::string_view> split_skip_empty(std::string_view text,
                                               char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with / ends with the given prefix/suffix.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// ASCII case conversion (locale-independent).
std::string to_lower(std::string_view text);
std::string to_upper(std::string_view text);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Strict integer parsing: the whole string must be a decimal integer
/// (optional leading '-' for the signed variant). No leading/trailing space.
std::optional<std::int64_t> parse_int(std::string_view text);
std::optional<std::uint64_t> parse_uint(std::string_view text);

/// Strict floating-point parsing of the whole string.
std::optional<double> parse_double(std::string_view text);

/// Result-returning variants with contextual error messages.
Result<std::int64_t> parse_int_or_error(std::string_view text,
                                        std::string_view what);
Result<std::uint64_t> parse_uint_or_error(std::string_view text,
                                          std::string_view what);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// True if `name` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool is_identifier(std::string_view name);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace segbus
