// Lightweight status / result types used across the SegBus libraries.
//
// The libraries never throw across public API boundaries for anticipated
// failures (malformed XML, constraint violations, invalid models); those are
// reported through Status / Result<T>. Logic errors (precondition misuse)
// still assert.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace segbus {

/// Coarse classification of a failure; mirrors the kinds of diagnostics the
/// paper's tool chain produces (parse errors, model validation errors, ...).
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< caller-supplied value is out of range / malformed
  kParseError,        ///< textual artifact (XML, flow encoding) is malformed
  kValidationError,   ///< model violates a structural (OCL-style) constraint
  kNotFound,          ///< a named entity does not exist
  kAlreadyExists,     ///< duplicate entity in a model
  kFailedPrecondition,///< operation invoked in a state that forbids it
  kInternal,          ///< invariant breach inside the library
};

/// Human-readable name of a StatusCode ("OK", "ParseError", ...).
std::string_view status_code_name(StatusCode code) noexcept;

/// A success-or-error value. Cheap to copy on the success path (empty
/// message). Modeled after absl::Status but self-contained.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status(); }

  bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Convenience factories mirroring the code enum.
Status invalid_argument_error(std::string message);
Status parse_error(std::string message);
Status validation_error(std::string message);
Status not_found_error(std::string message);
Status already_exists_error(std::string message);
Status failed_precondition_error(std::string message);
Status internal_error(std::string message);

/// A value-or-status result, std::expected-style (kept local so the library
/// builds with toolchains that predate <expected>).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a success value.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a non-OK status. Constructing from an OK
  /// status is a logic error and is normalized to kInternal.
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(data_).is_ok()) {
      data_ = internal_error("Result constructed from OK status");
    }
  }

  bool is_ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return is_ok(); }

  /// Status of the result; OK when a value is held.
  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(data_);
  }

  /// Access the held value. Precondition: is_ok().
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or the supplied fallback.
  T value_or(T fallback) const& {
    return is_ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagate-on-error helper:  SEGBUS_RETURN_IF_ERROR(expr);
#define SEGBUS_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::segbus::Status segbus_status_ = (expr);         \
    if (!segbus_status_.is_ok()) return segbus_status_; \
  } while (false)

/// Assign-or-propagate helper:
///   SEGBUS_ASSIGN_OR_RETURN(auto v, ComputeResult());
#define SEGBUS_ASSIGN_OR_RETURN(decl, expr)        \
  auto SEGBUS_CONCAT_(result_, __LINE__) = (expr); \
  if (!SEGBUS_CONCAT_(result_, __LINE__).is_ok())  \
    return SEGBUS_CONCAT_(result_, __LINE__).status(); \
  decl = std::move(SEGBUS_CONCAT_(result_, __LINE__)).value()

#define SEGBUS_CONCAT_INNER_(a, b) a##b
#define SEGBUS_CONCAT_(a, b) SEGBUS_CONCAT_INNER_(a, b)

}  // namespace segbus
