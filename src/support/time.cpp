#include "support/time.hpp"

#include "support/strings.hpp"

namespace segbus {

std::string format_ps(Picoseconds t) {
  return str_format("%lldps", static_cast<long long>(t.count()));
}

std::string format_us(Picoseconds t, int decimals) {
  return str_format("%.*fus", decimals, t.microseconds());
}

ClockDomain::ClockDomain(std::string name, Frequency nominal)
    : name_(std::move(name)),
      nominal_(nominal),
      period_ps_(nominal.period_ps()) {}

double ClockDomain::effective_mhz() const noexcept {
  if (period_ps_ <= 0) return 0.0;
  return 1e6 / static_cast<double>(period_ps_);
}

std::int64_t ClockDomain::ticks_at(Picoseconds t) const noexcept {
  if (period_ps_ <= 0 || t.count() < period_ps_) return 0;
  return t.count() / period_ps_;
}

std::int64_t ClockDomain::first_tick_at_or_after(
    Picoseconds t) const noexcept {
  if (period_ps_ <= 0) return 0;
  if (t.count() <= period_ps_) return 0;
  // tick k fires at (k+1)*period; want smallest k with (k+1)*period >= t.
  std::int64_t k = (t.count() + period_ps_ - 1) / period_ps_ - 1;
  return k;
}

std::string ClockDomain::frequency_label() const {
  return str_format("%.2fMHz", effective_mhz());
}

Status validate_frequency(Frequency f, std::string_view what) {
  if (!f.valid() || f.period_ps() <= 0) {
    return invalid_argument_error(
        str_format("%.*s: frequency must be positive and at most 1 THz",
                   static_cast<int>(what.size()), what.data()));
  }
  if (f.mhz() > 1e6) {
    return invalid_argument_error(
        str_format("%.*s: frequency %.2f MHz is above the 1 THz limit",
                   static_cast<int>(what.size()), what.data(), f.mhz()));
  }
  return Status::ok();
}

}  // namespace segbus
