// Fixed-width ASCII table rendering for reports (communication matrix,
// experiment summaries). Produces the monospace layout used in the paper's
// Figure 8 and in EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace segbus {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight, kCenter };

/// A simple row/column text table. Usage:
///   Table t;
///   t.set_header({"", "P0", "P1"});
///   t.add_row({"P0", "0", "576"});
///   std::string text = t.render();
class Table {
 public:
  /// Sets the header row (optional). Column count is taken from the widest
  /// row seen.
  void set_header(std::vector<std::string> header);

  /// Appends a data row.
  void add_row(std::vector<std::string> row);

  /// Sets the default alignment of every column (header is centered).
  void set_alignment(Align align) { align_ = align; }

  /// Sets the alignment of one column, growing the per-column table if
  /// needed.
  void set_column_alignment(std::size_t column, Align align);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const;

  /// Renders with `|` separators and a rule under the header.
  std::string render(std::string_view indent = "") const;

  /// Renders as Markdown (pipes + header separator row).
  std::string render_markdown() const;

 private:
  Align column_align(std::size_t column) const;
  std::vector<std::size_t> column_widths() const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> column_aligns_;
  Align align_ = Align::kRight;
};

/// Pads `text` to `width` according to `align`.
std::string pad(std::string_view text, std::size_t width, Align align);

}  // namespace segbus
