// Time and clock-domain arithmetic for the multi-frequency SegBus platform.
//
// The paper reports times in integer picoseconds and derives them as
// `total_clock_ticks × clock_period`, with the clock period truncated to an
// integer picosecond count (e.g. 111 MHz -> 9009 ps; the paper's
// "Execution time = 489792303ps @ 111.00MHz" is exactly 54367 × 9009).
// Frequencies printed by the paper ("89.01MHz") are the *effective*
// frequencies recomputed from the truncated period. This header reproduces
// that representation exactly so the reports are bit-comparable.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

#include "support/status.hpp"

namespace segbus {

/// A point in (or span of) time, in integer picoseconds.
class Picoseconds {
 public:
  constexpr Picoseconds() noexcept = default;
  constexpr explicit Picoseconds(std::int64_t value) noexcept
      : value_(value) {}

  constexpr std::int64_t count() const noexcept { return value_; }
  constexpr double microseconds() const noexcept {
    return static_cast<double>(value_) / 1e6;
  }
  constexpr double nanoseconds() const noexcept {
    return static_cast<double>(value_) / 1e3;
  }

  friend constexpr Picoseconds operator+(Picoseconds a,
                                         Picoseconds b) noexcept {
    return Picoseconds(a.value_ + b.value_);
  }
  friend constexpr Picoseconds operator-(Picoseconds a,
                                         Picoseconds b) noexcept {
    return Picoseconds(a.value_ - b.value_);
  }
  friend constexpr Picoseconds operator*(Picoseconds a,
                                         std::int64_t k) noexcept {
    return Picoseconds(a.value_ * k);
  }
  friend constexpr Picoseconds operator*(std::int64_t k,
                                         Picoseconds a) noexcept {
    return a * k;
  }
  Picoseconds& operator+=(Picoseconds other) noexcept {
    value_ += other.value_;
    return *this;
  }
  friend constexpr auto operator<=>(Picoseconds, Picoseconds) noexcept =
      default;

 private:
  std::int64_t value_ = 0;
};

/// "t = 123456ps" / "t = 123.46us" style formatting used by the reports.
std::string format_ps(Picoseconds t);
std::string format_us(Picoseconds t, int decimals = 2);

/// Nominal clock frequency. Stored in kHz internally so common MHz values
/// are exact.
class Frequency {
 public:
  constexpr Frequency() noexcept = default;

  static constexpr Frequency from_mhz(double mhz) noexcept {
    Frequency f;
    f.khz_ = mhz * 1000.0;
    return f;
  }
  static constexpr Frequency from_khz(double khz) noexcept {
    Frequency f;
    f.khz_ = khz;
    return f;
  }

  constexpr double mhz() const noexcept { return khz_ / 1000.0; }
  constexpr double khz() const noexcept { return khz_; }
  constexpr bool valid() const noexcept { return khz_ > 0.0; }

  /// Clock period truncated to integer picoseconds — the paper's convention
  /// (91 MHz -> 10989 ps, 89 MHz -> 11235 ps, 111 MHz -> 9009 ps).
  constexpr std::int64_t period_ps() const noexcept {
    return khz_ > 0.0 ? static_cast<std::int64_t>(1e9 / khz_) : 0;
  }

  friend constexpr auto operator<=>(Frequency, Frequency) noexcept = default;

 private:
  double khz_ = 0.0;
};

/// One clock domain of the platform (a segment's clock or the CA's clock).
///
/// All ticks are aligned so tick 0 fires at t = period (the first rising
/// edge after reset); this matches the paper's P0 start time of 10989 ps on
/// a 91 MHz segment, i.e. exactly one period after t = 0.
class ClockDomain {
 public:
  ClockDomain() = default;
  ClockDomain(std::string name, Frequency nominal);

  const std::string& name() const noexcept { return name_; }
  Frequency nominal() const noexcept { return nominal_; }
  std::int64_t period_ps() const noexcept { return period_ps_; }

  /// Frequency implied by the truncated period; what the paper prints
  /// (e.g. nominal 89 MHz -> effective 89.01 MHz).
  double effective_mhz() const noexcept;

  /// Absolute time of the given tick index (tick 0 at t = period).
  Picoseconds tick_time(std::int64_t tick) const noexcept {
    return Picoseconds((tick + 1) * period_ps_);
  }

  /// Number of whole ticks that have fired strictly up to and including
  /// time `t` (0 if t precedes the first edge).
  std::int64_t ticks_at(Picoseconds t) const noexcept;

  /// Index of the first tick whose time is >= `t`.
  std::int64_t first_tick_at_or_after(Picoseconds t) const noexcept;

  /// Duration of `ticks` clock cycles.
  Picoseconds span(std::int64_t ticks) const noexcept {
    return Picoseconds(ticks * period_ps_);
  }

  /// "@ 91.00MHz" style label.
  std::string frequency_label() const;

 private:
  std::string name_;
  Frequency nominal_;
  std::int64_t period_ps_ = 0;
};

/// Validates a frequency for use in a platform model.
Status validate_frequency(Frequency f, std::string_view what);

}  // namespace segbus
