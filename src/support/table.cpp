#include "support/table.hpp"

#include <algorithm>

namespace segbus {

std::string pad(std::string_view text, std::size_t width, Align align) {
  if (text.size() >= width) return std::string(text);
  std::size_t fill = width - text.size();
  switch (align) {
    case Align::kLeft:
      return std::string(text) + std::string(fill, ' ');
    case Align::kRight:
      return std::string(fill, ' ') + std::string(text);
    case Align::kCenter: {
      std::size_t left = fill / 2;
      return std::string(left, ' ') + std::string(text) +
             std::string(fill - left, ' ');
    }
  }
  return std::string(text);
}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::set_column_alignment(std::size_t column, Align align) {
  if (column_aligns_.size() <= column) {
    column_aligns_.resize(column + 1, align_);
  }
  column_aligns_[column] = align;
}

std::size_t Table::column_count() const {
  std::size_t n = header_.size();
  for (const auto& row : rows_) n = std::max(n, row.size());
  return n;
}

Align Table::column_align(std::size_t column) const {
  if (column < column_aligns_.size()) return column_aligns_[column];
  return align_;
}

std::vector<std::size_t> Table::column_widths() const {
  std::vector<std::size_t> widths(column_count(), 0);
  auto absorb = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);
  return widths;
}

std::string Table::render(std::string_view indent) const {
  const auto widths = column_widths();
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row, bool center) {
    out += indent;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (i != 0) out += " | ";
      std::string_view cell = i < row.size() ? std::string_view(row[i])
                                             : std::string_view("");
      out += pad(cell, widths[i], center ? Align::kCenter : column_align(i));
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit_row(header_, /*center=*/true);
    out += indent;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (i != 0) out += "-+-";
      out += std::string(widths[i], '-');
    }
    out += '\n';
  }
  for (const auto& row : rows_) emit_row(row, /*center=*/false);
  return out;
}

std::string Table::render_markdown() const {
  const auto widths = column_widths();
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::string_view cell = i < row.size() ? std::string_view(row[i])
                                             : std::string_view("");
      out += ' ';
      out += pad(cell, widths[i], column_align(i));
      out += " |";
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit_row(header_);
    out += "|";
    for (std::size_t width : widths) {
      out += ' ';
      out += std::string(std::max<std::size_t>(width, 3), '-');
      out += " |";
    }
    out += '\n';
  }
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace segbus
