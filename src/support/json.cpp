#include "support/json.hpp"

#include <cmath>

#include "support/strings.hpp"

namespace segbus {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::integer(std::int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kInteger;
  v.integer_ = value;
  return v;
}

JsonValue JsonValue::unsigned_integer(std::uint64_t value) {
  JsonValue v;
  v.kind_ = Kind::kUnsigned;
  v.unsigned_ = value;
  return v;
}

JsonValue JsonValue::string(std::string_view value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::string(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  for (auto& [existing, held] : object_) {
    if (existing == key) {
      held = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  array_.push_back(std::move(value));
  return array_.back();
}

void JsonValue::write(std::string& out, bool pretty, int depth) const {
  auto indent = [&](int d) {
    if (!pretty) return;
    out += '\n';
    for (int i = 0; i < d; ++i) out += "  ";
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      if (std::isfinite(number_)) {
        out += str_format("%.17g", number_);
      } else {
        out += "null";
      }
      break;
    case Kind::kInteger:
      out += str_format("%lld", static_cast<long long>(integer_));
      break;
    case Kind::kUnsigned:
      out += str_format("%llu", static_cast<unsigned long long>(unsigned_));
      break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        indent(depth + 1);
        array_[i].write(out, pretty, depth + 1);
      }
      indent(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        indent(depth + 1);
        out += '"';
        out += json_escape(object_[i].first);
        out += pretty ? "\": " : "\":";
        object_[i].second.write(out, pretty, depth + 1);
      }
      indent(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::to_string(bool pretty) const {
  std::string out;
  write(out, pretty, 0);
  if (pretty) out += '\n';
  return out;
}

}  // namespace segbus
