#include "support/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "support/strings.hpp"

namespace segbus {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::integer(std::int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kInteger;
  v.integer_ = value;
  return v;
}

JsonValue JsonValue::unsigned_integer(std::uint64_t value) {
  JsonValue v;
  v.kind_ = Kind::kUnsigned;
  v.unsigned_ = value;
  return v;
}

JsonValue JsonValue::string(std::string_view value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::string(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  for (auto& [existing, held] : object_) {
    if (existing == key) {
      held = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  array_.push_back(std::move(value));
  return array_.back();
}

void JsonValue::write(std::string& out, bool pretty, int depth) const {
  auto indent = [&](int d) {
    if (!pretty) return;
    out += '\n';
    for (int i = 0; i < d; ++i) out += "  ";
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      if (std::isfinite(number_)) {
        out += str_format("%.17g", number_);
      } else {
        out += "null";
      }
      break;
    case Kind::kInteger:
      out += str_format("%lld", static_cast<long long>(integer_));
      break;
    case Kind::kUnsigned:
      out += str_format("%llu", static_cast<unsigned long long>(unsigned_));
      break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        indent(depth + 1);
        array_[i].write(out, pretty, depth + 1);
      }
      indent(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        indent(depth + 1);
        out += '"';
        out += json_escape(object_[i].first);
        out += pretty ? "\": " : "\":";
        object_[i].second.write(out, pretty, depth + 1);
      }
      indent(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::to_string(bool pretty) const {
  std::string out;
  write(out, pretty, 0);
  if (pretty) out += '\n';
  return out;
}

// --- read accessors ---------------------------------------------------------

bool JsonValue::as_bool(bool fallback) const noexcept {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::as_number(double fallback) const noexcept {
  switch (kind_) {
    case Kind::kNumber: return number_;
    case Kind::kInteger: return static_cast<double>(integer_);
    case Kind::kUnsigned: return static_cast<double>(unsigned_);
    default: return fallback;
  }
}

std::int64_t JsonValue::as_int64(std::int64_t fallback) const noexcept {
  switch (kind_) {
    case Kind::kNumber: return static_cast<std::int64_t>(number_);
    case Kind::kInteger: return integer_;
    case Kind::kUnsigned:
      return unsigned_ <= 0x7FFFFFFFFFFFFFFFull
                 ? static_cast<std::int64_t>(unsigned_)
                 : fallback;
    default: return fallback;
  }
}

std::uint64_t JsonValue::as_uint64(std::uint64_t fallback) const noexcept {
  switch (kind_) {
    case Kind::kNumber:
      return number_ >= 0.0 ? static_cast<std::uint64_t>(number_) : fallback;
    case Kind::kInteger:
      return integer_ >= 0 ? static_cast<std::uint64_t>(integer_) : fallback;
    case Kind::kUnsigned: return unsigned_;
    default: return fallback;
  }
}

const std::string& JsonValue::as_string() const noexcept {
  static const std::string kEmpty;
  return kind_ == Kind::kString ? string_ : kEmpty;
}

std::size_t JsonValue::size() const noexcept {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  return array_.at(index);
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::get(std::string_view key) const noexcept {
  static const JsonValue kNull;
  const JsonValue* found = find(key);
  return found != nullptr ? *found : kNull;
}

std::vector<std::string_view> JsonValue::keys() const {
  std::vector<std::string_view> out;
  out.reserve(object_.size());
  for (const auto& [name, value] : object_) out.push_back(name);
  return out;
}

// --- parser ----------------------------------------------------------------

namespace {

/// Recursive-descent RFC 8259 parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> run() {
    SEGBUS_ASSIGN_OR_RETURN(JsonValue value, parse_value(0));
    skip_whitespace();
    if (pos_ != text_.size()) {
      return error("trailing content after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 96;

  Status error(std::string message) const {
    return parse_error("JSON: " + std::move(message) + " at offset " +
                       std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        SEGBUS_ASSIGN_OR_RETURN(std::string text, parse_string());
        return JsonValue::string(text);
      }
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        return error("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        return error("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        return error("invalid literal");
      default: return parse_number();
    }
  }

  Result<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::object();
    skip_whitespace();
    if (consume('}')) return object;
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected object key string");
      }
      SEGBUS_ASSIGN_OR_RETURN(std::string key, parse_string());
      skip_whitespace();
      if (!consume(':')) return error("expected ':' after object key");
      SEGBUS_ASSIGN_OR_RETURN(JsonValue value, parse_value(depth + 1));
      object.set(std::move(key), std::move(value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return object;
      return error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::array();
    skip_whitespace();
    if (consume(']')) return array;
    while (true) {
      SEGBUS_ASSIGN_OR_RETURN(JsonValue value, parse_value(depth + 1));
      array.push(std::move(value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return array;
      return error("expected ',' or ']' in array");
    }
  }

  Result<int> parse_hex4() {
    if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
    int value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= c - '0';
      else if (c >= 'a' && c <= 'f') value |= c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') value |= c - 'A' + 10;
      else return error("invalid \\u escape digit");
    }
    pos_ += 4;
    return value;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return error("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          SEGBUS_ASSIGN_OR_RETURN(int unit, parse_hex4());
          std::uint32_t cp = static_cast<std::uint32_t>(unit);
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!consume_literal("\\u")) {
              return error("unpaired high surrogate");
            }
            SEGBUS_ASSIGN_OR_RETURN(int low, parse_hex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) +
                 (static_cast<std::uint32_t>(low) - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return error("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return error("invalid escape character");
      }
    }
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    const bool negative = consume('-');
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      if (negative) {
        const long long value = std::strtoll(token.c_str(), nullptr, 10);
        if (errno == 0) return JsonValue::integer(value);
      } else {
        const unsigned long long value =
            std::strtoull(token.c_str(), nullptr, 10);
        if (errno == 0) return JsonValue::unsigned_integer(value);
      }
      // Out-of-range integers fall back to double like everything else.
    }
    errno = 0;
    const double value = std::strtod(token.c_str(), nullptr);
    if (errno != 0 && !std::isfinite(value)) {
      return error("number out of range");
    }
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

}  // namespace segbus
