// Minimal JSON document builder + serializer (output only; the SegBus tool
// chain's machine-readable exchange format for results). Produces RFC 8259
// compliant text: correct string escaping, no trailing commas, and finite
// numbers (non-finite doubles serialize as null).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace segbus {

/// A JSON value (build-only tree).
class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  static JsonValue integer(std::int64_t value);
  static JsonValue unsigned_integer(std::uint64_t value);
  static JsonValue string(std::string_view value);
  static JsonValue array();
  static JsonValue object();

  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Object member assignment (precondition: is_object()).
  JsonValue& set(std::string key, JsonValue value);
  /// Array append (precondition: is_array()). Returns the appended value.
  JsonValue& push(JsonValue value);

  /// Serializes compactly ({"a":1}) or pretty-printed with 2-space indent.
  std::string to_string(bool pretty = false) const;

 private:
  enum class Kind {
    kNull, kBool, kNumber, kInteger, kUnsigned, kString, kArray, kObject
  };
  void write(std::string& out, bool pretty, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::uint64_t unsigned_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  // insertion-ordered object members
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes a string for embedding in JSON (without surrounding quotes).
std::string json_escape(std::string_view text);

}  // namespace segbus
