// Minimal JSON document builder, serializer and parser (the SegBus tool
// chain's machine-readable exchange format for results and the service
// protocol's wire format). Produces RFC 8259 compliant text: correct
// string escaping, no trailing commas, and finite numbers (non-finite
// doubles serialize as null). The parser accepts exactly RFC 8259 with a
// nesting-depth limit, decodes \uXXXX escapes (including surrogate pairs)
// to UTF-8, and round-trips with the serializer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace segbus {

/// A JSON value tree (buildable, readable, serializable, parseable).
class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  static JsonValue integer(std::int64_t value);
  static JsonValue unsigned_integer(std::uint64_t value);
  static JsonValue string(std::string_view value);
  static JsonValue array();
  static JsonValue object();

  /// Parses one JSON document; trailing non-whitespace is a parse error.
  static Result<JsonValue> parse(std::string_view text);

  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  /// Any numeric kind (double, signed, unsigned).
  bool is_number() const noexcept {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger ||
           kind_ == Kind::kUnsigned;
  }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Value accessors; non-matching kinds yield the fallback.
  bool as_bool(bool fallback = false) const noexcept;
  double as_number(double fallback = 0.0) const noexcept;
  std::int64_t as_int64(std::int64_t fallback = 0) const noexcept;
  std::uint64_t as_uint64(std::uint64_t fallback = 0) const noexcept;
  /// The string payload ("" for non-strings).
  const std::string& as_string() const noexcept;

  /// Element/member count (0 for scalars).
  std::size_t size() const noexcept;
  /// Array element (precondition: is_array() and index < size()).
  const JsonValue& at(std::size_t index) const;
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// Object member or a shared null value when absent.
  const JsonValue& get(std::string_view key) const noexcept;
  /// Object member keys in insertion order (empty for non-objects).
  std::vector<std::string_view> keys() const;

  /// Object member assignment (precondition: is_object()).
  JsonValue& set(std::string key, JsonValue value);
  /// Array append (precondition: is_array()). Returns the appended value.
  JsonValue& push(JsonValue value);

  /// Serializes compactly ({"a":1}) or pretty-printed with 2-space indent.
  std::string to_string(bool pretty = false) const;

 private:
  enum class Kind {
    kNull, kBool, kNumber, kInteger, kUnsigned, kString, kArray, kObject
  };
  void write(std::string& out, bool pretty, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::uint64_t unsigned_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  // insertion-ordered object members
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes a string for embedding in JSON (without surrounding quotes).
std::string json_escape(std::string_view text);

}  // namespace segbus
