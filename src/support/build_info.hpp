// Compile-time build identity: git revision, compiler, build type, project
// version. Values are injected by CMake as SEGBUS_GIT_HASH etc.; every
// binary surfaces them via --version and the Prometheus export exposes
// them as the segbus_build_info gauge (obs::add_build_info).
#pragma once

#include <string>

namespace segbus {

struct BuildInfo {
  std::string version;     ///< project version (CMake PROJECT_VERSION)
  std::string git_hash;    ///< short git revision, "unknown" outside a repo
  std::string compiler;    ///< e.g. "GNU 13.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE
};

/// The identity baked into this binary.
const BuildInfo& build_info() noexcept;

/// One-line form for --version: "segbus <version> (<hash>, <compiler>,
/// <build_type>)".
std::string build_info_line();

}  // namespace segbus
