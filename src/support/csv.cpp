#include "support/csv.hpp"

#include <fstream>

#include "support/strings.hpp"

namespace segbus {

std::string csv_escape(std::string_view field) {
  bool needs_quote = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void CsvWriter::add_numeric_row(const std::vector<double>& row,
                                int decimals) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(str_format("%.*f", decimals, v));
  add_row(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += ',';
      out += csv_escape(row[i]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

Status CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return invalid_argument_error("cannot open file for writing: " + path);
  }
  file << to_string();
  if (!file) {
    return internal_error("short write to file: " + path);
  }
  return Status::ok();
}

}  // namespace segbus
