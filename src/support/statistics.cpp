#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "support/strings.hpp"

namespace segbus {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) *
                          static_cast<double>(other.count_) / n);
  mean_ += delta * static_cast<double>(other.count_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

Histogram Histogram::of(const std::vector<double>& samples,
                        std::size_t bins) {
  double lo = 0.0;
  double hi = 1.0;
  if (!samples.empty()) {
    lo = *std::min_element(samples.begin(), samples.end());
    hi = *std::max_element(samples.begin(), samples.end());
    if (hi <= lo) hi = lo + 1.0;
  }
  Histogram histogram(lo, hi, bins);
  for (double sample : samples) histogram.add(sample);
  return histogram;
}

void Histogram::add(double value) noexcept {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value > hi_) {
    ++overflow_;
    return;
  }
  auto index = static_cast<std::size_t>((value - lo_) / width_);
  if (index >= counts_.size()) index = counts_.size() - 1;  // value == hi
  ++counts_[index];
}

double Histogram::bin_low(std::size_t index) const {
  return lo_ + width_ * static_cast<double>(index);
}

double Histogram::bin_high(std::size_t index) const {
  return bin_low(index) + width_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double within = (target - cumulative) /
                            static_cast<double>(counts_[i]);
      return bin_low(i) + within * width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  if (underflow_ > 0) {
    out += str_format("%12s < %-10.4g %8llu\n", "", lo_,
                      static_cast<unsigned long long>(underflow_));
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    out += str_format("%10.4g .. %-10.4g %8llu |%s\n", bin_low(i),
                      bin_high(i),
                      static_cast<unsigned long long>(counts_[i]),
                      std::string(bar, '#').c_str());
  }
  if (overflow_ > 0) {
    out += str_format("%12s > %-10.4g %8llu\n", "", hi_,
                      static_cast<unsigned long long>(overflow_));
  }
  return out;
}

double inverse_normal_cdf(double p) {
  if (std::isnan(p) || p < 0.0 || p > 1.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (p == 0.0) return -std::numeric_limits<double>::infinity();
  if (p == 1.0) return std::numeric_limits<double>::infinity();

  // Acklam's rational approximation: a central rational function plus
  // tail expansions in sqrt(-2 ln p).
  static constexpr double kA[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                  -2.759285104469687e+02, 1.383577518672690e+02,
                                  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double kB[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double kC[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                  -2.400758277161838e+00, -2.549732539343734e+00,
                                  4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double kD[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;

  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
            kC[5]) /
           ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }
  if (p > 1.0 - kLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
             kC[5]) /
           ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r +
          kA[5]) *
         q /
         (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r +
          1.0);
}

namespace {

/// Regularized incomplete beta I_x(a, b) via Lentz's modified continued
/// fraction (Numerical Recipes betacf form), with the symmetry flip for
/// x past the bulk of the distribution.
double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const bool flip = x >= (a + 1.0) / (a + b + 2.0);
  if (flip) {
    std::swap(a, b);
    x = 1.0 - x;
  }
  constexpr double kTiny = 1e-300;
  constexpr double kEps = 1e-14;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 300; ++m) {
    const double dm = static_cast<double>(m);
    double numerator = dm * (b - dm) * x / ((a + 2.0 * dm - 1.0) * (a + 2.0 * dm));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    numerator = -(a + dm) * (a + b + dm) * x /
                ((a + 2.0 * dm) * (a + 2.0 * dm + 1.0));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  const double value = std::exp(log_front) * h / a;
  return flip ? 1.0 - value : value;
}

}  // namespace

double student_t_cdf(double t, std::uint64_t dof) {
  const double nu = static_cast<double>(dof);
  if (t == 0.0) return 0.5;
  const double x = nu / (nu + t * t);
  const double tail = 0.5 * regularized_incomplete_beta(nu / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double student_t_critical(std::uint64_t dof, double confidence) {
  // P(|T| <= t) = confidence  <=>  F(t) = (1 + confidence) / 2.
  const double target = 0.5 * (1.0 + confidence);
  // Seed the bracket from the normal quantile; dof = 1 (Cauchy) has the
  // fattest tails, so grow the upper edge until it crosses.
  double lo = 0.0;
  double hi = std::max(2.0, 4.0 * inverse_normal_cdf(target));
  while (student_t_cdf(hi, dof) < target && hi < 1e12) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, dof) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

double sample_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const double h = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= samples.size()) return samples.back();
  const double frac = h - static_cast<double>(lo);
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

}  // namespace segbus
