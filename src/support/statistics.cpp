#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "support/strings.hpp"

namespace segbus {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) *
                          static_cast<double>(other.count_) / n);
  mean_ += delta * static_cast<double>(other.count_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

Histogram Histogram::of(const std::vector<double>& samples,
                        std::size_t bins) {
  double lo = 0.0;
  double hi = 1.0;
  if (!samples.empty()) {
    lo = *std::min_element(samples.begin(), samples.end());
    hi = *std::max_element(samples.begin(), samples.end());
    if (hi <= lo) hi = lo + 1.0;
  }
  Histogram histogram(lo, hi, bins);
  for (double sample : samples) histogram.add(sample);
  return histogram;
}

void Histogram::add(double value) noexcept {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value > hi_) {
    ++overflow_;
    return;
  }
  auto index = static_cast<std::size_t>((value - lo_) / width_);
  if (index >= counts_.size()) index = counts_.size() - 1;  // value == hi
  ++counts_[index];
}

double Histogram::bin_low(std::size_t index) const {
  return lo_ + width_ * static_cast<double>(index);
}

double Histogram::bin_high(std::size_t index) const {
  return bin_low(index) + width_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double within = (target - cumulative) /
                            static_cast<double>(counts_[i]);
      return bin_low(i) + within * width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  if (underflow_ > 0) {
    out += str_format("%12s < %-10.4g %8llu\n", "", lo_,
                      static_cast<unsigned long long>(underflow_));
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    out += str_format("%10.4g .. %-10.4g %8llu |%s\n", bin_low(i),
                      bin_high(i),
                      static_cast<unsigned long long>(counts_[i]),
                      std::string(bar, '#').c_str());
  }
  if (overflow_ > 0) {
    out += str_format("%12s > %-10.4g %8llu\n", "", hi_,
                      static_cast<unsigned long long>(overflow_));
  }
  return out;
}

}  // namespace segbus
