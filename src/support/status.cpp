#include "support/status.hpp"

namespace segbus {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kValidationError: return "ValidationError";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(status_code_name(code_));
  out += ": ";
  out += message_;
  return out;
}

Status invalid_argument_error(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status parse_error(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status validation_error(std::string message) {
  return Status(StatusCode::kValidationError, std::move(message));
}
Status not_found_error(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status already_exists_error(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status failed_precondition_error(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status internal_error(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace segbus
