#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace segbus {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_skip_empty(std::string_view text,
                                               char sep) {
  std::vector<std::string_view> out;
  for (std::string_view part : split(text, sep)) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

namespace {

template <typename T>
std::optional<T> parse_number(std::string_view text) {
  if (text.empty()) return std::nullopt;
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

std::optional<std::int64_t> parse_int(std::string_view text) {
  return parse_number<std::int64_t>(text);
}

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  if (!text.empty() && text.front() == '-') return std::nullopt;
  return parse_number<std::uint64_t>(text);
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ >= 11.
  double value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

Result<std::int64_t> parse_int_or_error(std::string_view text,
                                        std::string_view what) {
  if (auto v = parse_int(text)) return *v;
  return parse_error(str_format("%.*s: '%.*s' is not a valid integer",
                                static_cast<int>(what.size()), what.data(),
                                static_cast<int>(text.size()), text.data()));
}

Result<std::uint64_t> parse_uint_or_error(std::string_view text,
                                          std::string_view what) {
  if (auto v = parse_uint(text)) return *v;
  return parse_error(
      str_format("%.*s: '%.*s' is not a valid unsigned integer",
                 static_cast<int>(what.size()), what.data(),
                 static_cast<int>(text.size()), text.data()));
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

bool is_identifier(std::string_view name) {
  if (name.empty()) return false;
  auto is_head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  auto is_tail = [&](char c) {
    return is_head(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
  };
  if (!is_head(name.front())) return false;
  for (char c : name.substr(1)) {
    if (!is_tail(c)) return false;
  }
  return true;
}

std::string str_format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace segbus
