// Tiny command-line flag parser for the examples and bench harnesses.
// Supports --flag=value, --flag value, and boolean --flag / --no-flag.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace segbus {

/// Parsed command line: named flags plus positional arguments.
class CommandLine {
 public:
  /// Parses argv. Unknown flags are kept (callers decide what is legal);
  /// a bare "--" terminates flag parsing.
  static Result<CommandLine> parse(int argc, const char* const* argv);

  const std::string& program() const noexcept { return program_; }
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  bool has_flag(std::string_view name) const;

  /// String value of a flag, or nullopt when absent.
  std::optional<std::string> flag(std::string_view name) const;

  /// Typed accessors with defaults; malformed values yield the default and
  /// are reported via the error list.
  std::string flag_or(std::string_view name, std::string_view fallback) const;
  std::int64_t int_flag_or(std::string_view name, std::int64_t fallback) const;
  double double_flag_or(std::string_view name, double fallback) const;
  bool bool_flag_or(std::string_view name, bool fallback) const;

  /// Names of all flags present (sorted), for --help style listings.
  std::vector<std::string> flag_names() const;

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace segbus
