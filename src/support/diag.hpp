// Shared validation-diagnostic types, used by the PSDF and PSM (platform)
// validators and the static-analysis subsystem. Mirrors the DSL's OCL
// constraint reporting (paper §2.2): each breach names a stable constraint
// id plus a human-readable message. Diagnostics additionally carry a stable
// catalogue code ("SB003") and a source location into the generated XML
// schemes so tools can point a designer at the offending element (the
// catalogue itself lives in analysis/diagnostics.hpp).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace segbus {

/// Severity of one diagnostic.
enum class Severity { kError, kWarning, kNote };

/// "error" / "warning" / "note".
std::string_view severity_name(Severity severity) noexcept;

/// Where a diagnostic points inside the model's XML scheme.
struct SourceLocation {
  std::string file;     ///< scheme file path, when the model came from disk
  std::string element;  ///< scheme path, e.g. "xs:complexType[P3]/xs:element[P4_576_4_250]"

  bool empty() const noexcept { return file.empty() && element.empty(); }
  /// "file: element", omitting whichever part is absent.
  std::string to_string() const;

  friend bool operator==(const SourceLocation&,
                         const SourceLocation&) = default;
};

/// Scheme-path helpers: "xs:complexType[P3]" and
/// "xs:complexType[P3]/xs:element[P4_576_4_250]". Both validators and the
/// analysis passes build locations through these so the notation stays
/// uniform.
std::string scheme_type_path(std::string_view type_name);
std::string scheme_element_path(std::string_view type_name,
                                std::string_view element_name);

/// One validation finding.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;        ///< stable catalogue code, e.g. "SB003" (may be
                           ///< empty for ad-hoc findings)
  std::string constraint;  ///< stable id, e.g. "psm.segment.one_arbiter"
  std::string message;     ///< human-readable description
  SourceLocation location; ///< scheme location, when known

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Result of validating a model.
struct ValidationReport {
  std::vector<Diagnostic> diagnostics;

  /// True when no error-severity diagnostics are present.
  bool ok() const noexcept;
  std::size_t error_count() const noexcept;
  std::size_t warning_count() const noexcept;
  std::size_t note_count() const noexcept;

  /// True if any diagnostic matches the constraint id.
  bool has(std::string_view constraint) const noexcept;
  /// True if any diagnostic carries the catalogue code.
  bool has_code(std::string_view code) const noexcept;

  void add(Diagnostic diagnostic);
  void add(Severity severity, std::string code, std::string constraint,
           std::string message, SourceLocation location = {});
  void add_error(std::string constraint, std::string message);
  void add_warning(std::string constraint, std::string message);

  /// Merges another report's findings into this one.
  void merge(ValidationReport other);

  /// Fills the file part of every location that does not have one yet
  /// (tools know which scheme file a model came from; validators do not).
  void stamp_file(std::string_view file);

  std::string to_string() const;
};

}  // namespace segbus
