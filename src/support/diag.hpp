// Shared validation-diagnostic types, used by the PSDF and PSM (platform)
// validators. Mirrors the DSL's OCL constraint reporting (paper §2.2):
// each breach names a stable constraint id plus a human-readable message.
#pragma once

#include <string>
#include <vector>

namespace segbus {

/// Severity of one diagnostic.
enum class Severity { kError, kWarning };

/// One validation finding.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string constraint;  ///< stable id, e.g. "psm.segment.one_arbiter"
  std::string message;     ///< human-readable description

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Result of validating a model.
struct ValidationReport {
  std::vector<Diagnostic> diagnostics;

  /// True when no error-severity diagnostics are present.
  bool ok() const noexcept;
  std::size_t error_count() const noexcept;
  std::size_t warning_count() const noexcept;

  /// True if any diagnostic matches the constraint id.
  bool has(std::string_view constraint) const noexcept;

  void add_error(std::string constraint, std::string message);
  void add_warning(std::string constraint, std::string message);

  /// Merges another report's findings into this one.
  void merge(ValidationReport other);

  std::string to_string() const;
};

}  // namespace segbus
