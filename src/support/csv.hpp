// Minimal CSV writer used by the benches to dump series data (timeline,
// activity graphs) in a form external plotting tools can consume.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace segbus {

/// Accumulates rows and serializes RFC-4180-style CSV (fields containing
/// comma, quote or newline are quoted; embedded quotes doubled).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience for numeric rows.
  void add_numeric_row(const std::vector<double>& row, int decimals = 6);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// The full CSV document, header first.
  std::string to_string() const;

  /// Writes the document to `path`.
  Status write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field.
std::string csv_escape(std::string_view field);

}  // namespace segbus
