#include "support/diag.hpp"

#include <algorithm>

namespace segbus {

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "error";
}

std::string SourceLocation::to_string() const {
  if (file.empty()) return element;
  if (element.empty()) return file;
  return file + ": " + element;
}

std::string scheme_type_path(std::string_view type_name) {
  std::string out = "xs:complexType[";
  out += type_name;
  out += ']';
  return out;
}

std::string scheme_element_path(std::string_view type_name,
                                std::string_view element_name) {
  std::string out = scheme_type_path(type_name);
  out += "/xs:element[";
  out += element_name;
  out += ']';
  return out;
}

namespace {

std::size_t count_severity(const std::vector<Diagnostic>& diagnostics,
                           Severity severity) noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

}  // namespace

bool ValidationReport::ok() const noexcept {
  return std::none_of(diagnostics.begin(), diagnostics.end(),
                      [](const Diagnostic& d) {
                        return d.severity == Severity::kError;
                      });
}

std::size_t ValidationReport::error_count() const noexcept {
  return count_severity(diagnostics, Severity::kError);
}

std::size_t ValidationReport::warning_count() const noexcept {
  return count_severity(diagnostics, Severity::kWarning);
}

std::size_t ValidationReport::note_count() const noexcept {
  return count_severity(diagnostics, Severity::kNote);
}

bool ValidationReport::has(std::string_view constraint) const noexcept {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.constraint == constraint;
                     });
}

bool ValidationReport::has_code(std::string_view code) const noexcept {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

void ValidationReport::add(Diagnostic diagnostic) {
  diagnostics.push_back(std::move(diagnostic));
}

void ValidationReport::add(Severity severity, std::string code,
                           std::string constraint, std::string message,
                           SourceLocation location) {
  diagnostics.push_back({severity, std::move(code), std::move(constraint),
                         std::move(message), std::move(location)});
}

void ValidationReport::add_error(std::string constraint,
                                 std::string message) {
  diagnostics.push_back({Severity::kError, std::string(),
                         std::move(constraint), std::move(message),
                         SourceLocation{}});
}

void ValidationReport::add_warning(std::string constraint,
                                   std::string message) {
  diagnostics.push_back({Severity::kWarning, std::string(),
                         std::move(constraint), std::move(message),
                         SourceLocation{}});
}

void ValidationReport::merge(ValidationReport other) {
  for (Diagnostic& d : other.diagnostics) {
    diagnostics.push_back(std::move(d));
  }
}

void ValidationReport::stamp_file(std::string_view file) {
  for (Diagnostic& d : diagnostics) {
    if (d.location.file.empty()) d.location.file = std::string(file);
  }
}

std::string ValidationReport::to_string() const {
  if (diagnostics.empty()) return "model is valid\n";
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += severity_name(d.severity);
    if (!d.code.empty()) {
      out += ' ';
      out += d.code;
    }
    out += " [";
    out += d.constraint;
    out += "]: ";
    out += d.message;
    if (!d.location.empty()) {
      out += "\n    at ";
      out += d.location.to_string();
    }
    out += '\n';
  }
  return out;
}

}  // namespace segbus
