#include "support/diag.hpp"

#include <algorithm>

namespace segbus {

bool ValidationReport::ok() const noexcept {
  return std::none_of(diagnostics.begin(), diagnostics.end(),
                      [](const Diagnostic& d) {
                        return d.severity == Severity::kError;
                      });
}

std::size_t ValidationReport::error_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

std::size_t ValidationReport::warning_count() const noexcept {
  return diagnostics.size() - error_count();
}

bool ValidationReport::has(std::string_view constraint) const noexcept {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.constraint == constraint;
                     });
}

void ValidationReport::add_error(std::string constraint,
                                 std::string message) {
  diagnostics.push_back(
      {Severity::kError, std::move(constraint), std::move(message)});
}

void ValidationReport::add_warning(std::string constraint,
                                   std::string message) {
  diagnostics.push_back(
      {Severity::kWarning, std::move(constraint), std::move(message)});
}

void ValidationReport::merge(ValidationReport other) {
  for (Diagnostic& d : other.diagnostics) {
    diagnostics.push_back(std::move(d));
  }
}

std::string ValidationReport::to_string() const {
  if (diagnostics.empty()) return "model is valid\n";
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.severity == Severity::kError ? "error" : "warning";
    out += " [";
    out += d.constraint;
    out += "]: ";
    out += d.message;
    out += '\n';
  }
  return out;
}

}  // namespace segbus
