#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "support/strings.hpp"

namespace segbus {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;

std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(std::string_view text) {
  if (iequals(text, "trace")) return LogLevel::kTrace;
  if (iequals(text, "debug")) return LogLevel::kDebug;
  if (iequals(text, "info")) return LogLevel::kInfo;
  if (iequals(text, "warn")) return LogLevel::kWarn;
  if (iequals(text, "error")) return LogLevel::kError;
  if (iequals(text, "off")) return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {
void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%.*s] %-10.*s %.*s\n",
               static_cast<int>(level_tag(level).size()),
               level_tag(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}
}  // namespace detail

}  // namespace segbus
