// Deterministic pseudo-random number generation for workload synthesis and
// the simulated-annealing placer. Seeded explicitly everywhere so every
// experiment is reproducible run-to-run.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace segbus {

/// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, and deterministic across
/// platforms (unlike std::mt19937 distributions). Satisfies
/// UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5EB0D15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Unbiased uniform integer in [0, bound) via Lemire rejection.
  /// Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

 private:
  std::uint64_t state_[4];
};

/// Named substream derivation: expands one master seed into independent
/// deterministic child seeds, one per label. The label bytes are folded
/// FNV-1a style and every step is finalized through the SplitMix64 mixer,
/// so "generator"/"placer"/"campaign" streams drawn from the same master
/// seed never overlap and adding a consumer never perturbs the others.
std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) noexcept;

/// Indexed substream derivation (e.g. one stream per campaign scenario).
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) noexcept;

/// Convenience: a generator seeded with derive_seed(seed, label).
Xoshiro256 substream(std::uint64_t seed, std::string_view label) noexcept;

}  // namespace segbus
