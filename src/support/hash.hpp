// Cryptographic-quality content hashing for the tool chain's
// content-addressed caches (FIPS 180-4 SHA-256, self-contained).
//
// The service result cache keys on the digest of a *canonical* scheme
// serialization (core/fingerprint.hpp), so collisions must be negligible
// across millions of near-identical models — a 64-bit mixing hash is not
// enough there. Streaming interface so large canonical forms never need a
// second copy.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace segbus {

/// Incremental SHA-256. Usage: update(...) any number of times, then
/// digest()/hex_digest() once (finalizes; further updates are a logic
/// error and assert in debug builds).
class Sha256 {
 public:
  Sha256();

  void update(std::string_view data) noexcept;
  void update(const void* data, std::size_t size) noexcept;

  /// The 32-byte digest. Finalizes on first call; idempotent afterwards.
  std::array<std::uint8_t, 32> digest() noexcept;
  /// Lower-case hex form of digest() (64 characters).
  std::string hex_digest() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;
  void finalize() noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
  std::array<std::uint8_t, 32> digest_{};
};

/// One-shot convenience: lower-case hex SHA-256 of `data`.
std::string sha256_hex(std::string_view data);

}  // namespace segbus
