#include "support/rng.hpp"

namespace segbus {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 mix(seed);
  for (auto& word : state_) word = mix.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Xoshiro256::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace segbus
