#include "support/rng.hpp"

namespace segbus {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 mix(seed);
  for (auto& word : state_) word = mix.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Xoshiro256::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) noexcept {
  // Pre-whiten the master seed, then fold the label in FNV-1a fashion with a
  // SplitMix64 finalization per byte block. Finalizing once more at the end
  // decorrelates labels that are prefixes of each other.
  SplitMix64 mix(seed);
  std::uint64_t h = mix.next() ^ 0xCBF29CE484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return SplitMix64(h).next();
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) noexcept {
  SplitMix64 mix(seed);
  return SplitMix64(mix.next() ^ (index * 0x9E3779B97F4A7C15ULL)).next();
}

Xoshiro256 substream(std::uint64_t seed, std::string_view label) noexcept {
  return Xoshiro256(derive_seed(seed, label));
}

}  // namespace segbus
