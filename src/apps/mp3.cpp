#include "apps/mp3.hpp"

#include "place/apply.hpp"
#include "support/strings.hpp"

namespace segbus::apps {

namespace {

/// One flow of the MP3 PSDF: (source, target, D, T); C is uniform.
struct FlowSpec {
  const char* source;
  const char* target;
  std::uint64_t items;
  std::uint32_t ordering;
};

/// Figure 8's twenty flows with a topological stage schedule.
constexpr FlowSpec kFlows[] = {
    {"P0", "P1", 576, 1},  {"P0", "P8", 576, 1},    // frame decode fan-out
    {"P1", "P2", 540, 2},  {"P8", "P9", 540, 2},    // scaling
    {"P1", "P3", 36, 3},   {"P8", "P3", 36, 3},     // side info to stereo
    {"P2", "P3", 540, 4},  {"P9", "P3", 540, 4},    // dequantized samples
    {"P3", "P4", 36, 5},   {"P3", "P10", 36, 5},    // alias-reduction ctrl
    {"P4", "P5", 36, 6},   {"P10", "P11", 36, 6},   // alias-reduced blocks
    {"P3", "P5", 540, 7},  {"P3", "P11", 540, 7},   // stereo output
    {"P5", "P6", 576, 8},  {"P11", "P12", 576, 8},  // IMDCT
    {"P6", "P7", 576, 9},  {"P12", "P13", 576, 9},  // frequency inversion
    {"P7", "P14", 576, 10}, {"P13", "P14", 576, 10},  // synthesis -> PCM
};

/// Ticks per package at the reference package size of 36 (the §3.5 example
/// flow "P1_576_1_250"). The cost has a fixed per-package component
/// (block setup) plus a per-item component — the decomposition that
/// reproduces the paper's ~14 % slowdown at package size 18, where the
/// fixed cost is paid twice as often.
constexpr std::uint64_t kComputeTicksAt36 = 250;
constexpr std::uint64_t kComputeFixedTicks = 30;

constexpr double kSegmentMhz[] = {91.0, 98.0, 89.0};
constexpr double kCaMhz = 111.0;

}  // namespace

Result<psdf::PsdfModel> mp3_decoder_psdf(std::uint32_t package_size) {
  psdf::PsdfModel model("mp3_decoder");
  SEGBUS_RETURN_IF_ERROR(model.set_package_size(kPackage36));
  for (std::uint32_t i = 0; i < kMp3Processes; ++i) {
    auto added = model.add_process(str_format("P%u", i));
    if (!added.is_ok()) return added.status();
  }
  for (const FlowSpec& spec : kFlows) {
    SEGBUS_RETURN_IF_ERROR(model.add_flow(spec.source, spec.target,
                                          spec.items, spec.ordering,
                                          kComputeTicksAt36));
  }
  if (package_size != kPackage36) {
    return model.rescaled_for_package_size(package_size,
                                           kComputeFixedTicks);
  }
  return model;
}

std::vector<std::uint32_t> mp3_allocation(std::uint32_t num_segments) {
  switch (num_segments) {
    case 1:
      return std::vector<std::uint32_t>(kMp3Processes, 0);
    case 2: {
      // Figure 9: "4 5 6 7 10 11 12 13 14 || 0 1 2 3 8 9".
      std::vector<std::uint32_t> a(kMp3Processes, 0);
      for (std::uint32_t p : {0u, 1u, 2u, 3u, 8u, 9u}) a[p] = 1;
      return a;
    }
    case 3: {
      // Figure 9: "0 1 2 3 8 9 10 || 5 6 7 11 12 13 14 || 4".
      std::vector<std::uint32_t> a(kMp3Processes, 0);
      for (std::uint32_t p : {5u, 6u, 7u, 11u, 12u, 13u, 14u}) a[p] = 1;
      a[4] = 2;
      return a;
    }
    default:
      return {};
  }
}

std::vector<std::uint32_t> mp3_allocation_p9_moved() {
  std::vector<std::uint32_t> a = mp3_allocation(3);
  a[9] = 2;  // shift P9 from segment 1 to segment 3
  return a;
}

Result<platform::PlatformModel> mp3_platform(
    const psdf::PsdfModel& application,
    const std::vector<std::uint32_t>& allocation,
    std::uint32_t num_segments, std::uint32_t package_size) {
  if (allocation.size() != application.process_count()) {
    return invalid_argument_error(
        "allocation does not cover every MP3 process");
  }
  platform::PlatformModel platform(
      str_format("MP3-%useg", num_segments));
  SEGBUS_RETURN_IF_ERROR(platform.set_package_size(package_size));
  SEGBUS_RETURN_IF_ERROR(
      platform.set_ca_clock(Frequency::from_mhz(kCaMhz)));
  for (std::uint32_t s = 0; s < num_segments; ++s) {
    auto added = platform.add_segment(
        Frequency::from_mhz(kSegmentMhz[s % 3]));
    if (!added.is_ok()) return added.status();
  }
  SEGBUS_RETURN_IF_ERROR(
      place::apply_allocation(application, allocation, platform));
  return platform;
}

Result<platform::PlatformModel> mp3_platform_one_segment(
    const psdf::PsdfModel& application, std::uint32_t package_size) {
  return mp3_platform(application, mp3_allocation(1), 1, package_size);
}

Result<platform::PlatformModel> mp3_platform_two_segments(
    const psdf::PsdfModel& application, std::uint32_t package_size) {
  return mp3_platform(application, mp3_allocation(2), 2, package_size);
}

Result<platform::PlatformModel> mp3_platform_three_segments(
    const psdf::PsdfModel& application, std::uint32_t package_size) {
  return mp3_platform(application, mp3_allocation(3), 3, package_size);
}

Result<platform::PlatformModel> mp3_platform_p9_moved(
    const psdf::PsdfModel& application, std::uint32_t package_size) {
  return mp3_platform(application, mp3_allocation_p9_moved(), 3,
                      package_size);
}

}  // namespace segbus::apps
