// The paper's running example (§4): a simplified stereo MP3 decoder [12]
// partitioned into 15 processes, plus the three platform configurations of
// Figure 9.
//
// Processes: P0 frame decoding; P1/P8 scaling of the left/right channel;
// P2/P9 dequantizing left/right; P3 stereo processing; P4/P10 aliasing
// reduction; P5/P11 IMDCT; P6/P12 frequency inversion; P7/P13 synthesis
// filtering; P14 PCM output.
//
// The flow volumes reproduce Figure 8's communication matrix exactly
// (576/540/36 data items). The ordering numbers T follow the dataflow
// topologically (the paper's Figure 7 rendering is not machine-readable);
// C is 250 ticks per 36-item package for every flow, matching the
// "P1_576_1_250" example flow in §3.5.
#pragma once

#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::apps {

/// Number of processes in the MP3 decoder.
inline constexpr std::uint32_t kMp3Processes = 15;

/// Package sizes used in the paper's experiments.
inline constexpr std::uint32_t kPackage36 = 36;
inline constexpr std::uint32_t kPackage18 = 18;

/// Builds the PSDF of the MP3 decoder with C values referring to
/// `package_size` (C=250 at 36 items, rescaled per item elsewhere).
Result<psdf::PsdfModel> mp3_decoder_psdf(std::uint32_t package_size =
                                             kPackage36);

/// Figure 9's allocations. Index = process id, value = segment (0-based).
///   one segment   : all FUs on the same segment
///   two segments  : {4,5,6,7,10,11,12,13,14} || {0,1,2,3,8,9}
///   three segments: {0,1,2,3,8,9,10} || {5,6,7,11,12,13,14} || {4}
std::vector<std::uint32_t> mp3_allocation(std::uint32_t num_segments);

/// The paper's 3-segment variant with P9 shifted from segment 1 to 3.
std::vector<std::uint32_t> mp3_allocation_p9_moved();

/// Builds a platform with the paper's clocks and the given allocation.
/// Clocks: segments 91 / 98 / 89 MHz (in order, reused cyclically for other
/// segment counts), CA 111 MHz.
Result<platform::PlatformModel> mp3_platform(
    const psdf::PsdfModel& application,
    const std::vector<std::uint32_t>& allocation,
    std::uint32_t num_segments, std::uint32_t package_size = kPackage36);

/// Convenience: the paper's named configurations.
Result<platform::PlatformModel> mp3_platform_one_segment(
    const psdf::PsdfModel& application,
    std::uint32_t package_size = kPackage36);
Result<platform::PlatformModel> mp3_platform_two_segments(
    const psdf::PsdfModel& application,
    std::uint32_t package_size = kPackage36);
Result<platform::PlatformModel> mp3_platform_three_segments(
    const psdf::PsdfModel& application,
    std::uint32_t package_size = kPackage36);
Result<platform::PlatformModel> mp3_platform_p9_moved(
    const psdf::PsdfModel& application,
    std::uint32_t package_size = kPackage36);

}  // namespace segbus::apps
