// Third realistic application: an H.263-style video encoder for one QCIF
// frame — the largest workload in the suite (18 processes, 24 flows over
// 11 schedule stages), sized to exercise 3-4 segment platforms.
//
//   CAP (capture) -> PRE (preprocess) -> per-macroblock-row pipelines:
//     ME0..ME3   motion estimation against the reference frame
//     MC0..MC3   motion compensation / residual
//     TQ0..TQ3   DCT + quantization
//   -> REC (reconstruction for the reference frame loop)
//   -> VLC (variable-length coding) -> PKT (packetization)
//   with RC (rate control) reading TQ summaries and steering VLC.
//
// Data volumes model one 176x144 luma frame split into 4 row bands
// (176*36 = 6336 samples each); motion vectors and rate-control summaries
// are small control flows. Compute costs follow the suite convention
// (C ticks per 36-item package, 30-tick fixed component).
#pragma once

#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::apps {

/// Number of processes in the H.263 encoder.
inline constexpr std::uint32_t kH263Processes = 18;

/// Builds the encoder PSDF at the given package size.
Result<psdf::PsdfModel> h263_encoder_psdf(std::uint32_t package_size = 36);

/// A hand-tuned mapping for `num_segments` in {1, 2, 4}: band pipelines
/// split across segments, front end with band 0, back end with the last
/// band.
std::vector<std::uint32_t> h263_allocation(std::uint32_t num_segments);

/// Builds a platform with the suite's clock set (91/98/89/103 MHz cycled,
/// CA 111 MHz).
Result<platform::PlatformModel> h263_platform(
    const psdf::PsdfModel& application,
    const std::vector<std::uint32_t>& allocation,
    std::uint32_t num_segments, std::uint32_t package_size = 36);

}  // namespace segbus::apps
