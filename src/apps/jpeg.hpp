// A second realistic application model: a baseline JPEG encoder tile
// pipeline — the kind of additional application the paper's future work
// calls for. Eleven processes over seven stages:
//
//   SRC -> CC (color conversion) -> SS (4:2:0 subsampling)
//       -> DCTY/DCTC -> QY/QC (quantization) -> ZZY/ZZC (zig-zag)
//       -> HUFY/HUFC (entropy coding) -> MUX (bitstream assembly)
//
// Data volumes model one 64x64 RGB tile: 12288 interleaved samples in,
// luma plane 4096 samples, chroma planes 2048 after subsampling, entropy
// output compressed ~2:1. Compute costs follow the MP3 model's convention
// (C ticks per 36-item package, with a fixed per-package component).
#pragma once

#include "platform/model.hpp"
#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::apps {

/// Number of processes in the JPEG encoder.
inline constexpr std::uint32_t kJpegProcesses = 11;

/// Builds the JPEG encoder PSDF at the given package size.
Result<psdf::PsdfModel> jpeg_encoder_psdf(std::uint32_t package_size = 36);

/// A hand-tuned two-segment mapping: the luma chain (the heavy half) on
/// segment 1, the front end plus the chroma chain on segment 2.
std::vector<std::uint32_t> jpeg_allocation_two_segments();

/// Builds a platform for the encoder with the given allocation. Clocks
/// reuse the paper's 91/98/89 MHz set (cycled) with the 111 MHz CA.
Result<platform::PlatformModel> jpeg_platform(
    const psdf::PsdfModel& application,
    const std::vector<std::uint32_t>& allocation,
    std::uint32_t num_segments, std::uint32_t package_size = 36);

}  // namespace segbus::apps
