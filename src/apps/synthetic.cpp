#include "apps/synthetic.hpp"

#include <algorithm>

#include "support/rng.hpp"
#include "support/strings.hpp"

namespace segbus::apps {

Result<psdf::PsdfModel> synthetic_pipeline(const PipelineOptions& options) {
  if (options.stages < 2) {
    return invalid_argument_error("a pipeline needs at least two stages");
  }
  psdf::PsdfModel model(str_format("pipeline%u", options.stages));
  SEGBUS_RETURN_IF_ERROR(model.set_package_size(options.package_size));
  for (std::uint32_t s = 0; s < options.stages; ++s) {
    auto added = model.add_process(str_format("P%u", s));
    if (!added.is_ok()) return added.status();
  }
  for (std::uint32_t s = 0; s + 1 < options.stages; ++s) {
    SEGBUS_RETURN_IF_ERROR(model.add_flow(s, s + 1, options.items_per_hop,
                                          s + 1, options.compute_ticks));
  }
  return model;
}

Result<psdf::PsdfModel> synthetic_fork_join(const ForkJoinOptions& options) {
  if (options.width < 1) {
    return invalid_argument_error("fork/join needs at least one worker");
  }
  psdf::PsdfModel model(str_format("forkjoin%u", options.width));
  SEGBUS_RETURN_IF_ERROR(model.set_package_size(options.package_size));
  auto source = model.add_process("Source");
  if (!source.is_ok()) return source.status();
  std::vector<psdf::ProcessId> workers;
  for (std::uint32_t w = 0; w < options.width; ++w) {
    auto worker = model.add_process(str_format("Worker%u", w));
    if (!worker.is_ok()) return worker.status();
    workers.push_back(*worker);
  }
  auto sink = model.add_process("Sink");
  if (!sink.is_ok()) return sink.status();
  for (psdf::ProcessId worker : workers) {
    SEGBUS_RETURN_IF_ERROR(model.add_flow(*source, worker,
                                          options.items_per_branch, 1,
                                          options.compute_ticks));
    SEGBUS_RETURN_IF_ERROR(model.add_flow(worker, *sink,
                                          options.items_per_branch, 2,
                                          options.compute_ticks));
  }
  return model;
}

Result<psdf::PsdfModel> synthetic_butterfly(const ButterflyOptions& options) {
  if (options.log2_width < 1 || options.log2_width > 4) {
    return invalid_argument_error("butterfly log2_width must be in 1..4");
  }
  if (options.stages < 2) {
    return invalid_argument_error("butterfly needs at least two stages");
  }
  const std::uint32_t lanes = 1u << options.log2_width;
  psdf::PsdfModel model(str_format("butterfly%ux%u", lanes, options.stages));
  SEGBUS_RETURN_IF_ERROR(model.set_package_size(options.package_size));
  // Process grid: R<rank>L<lane>.
  std::vector<std::vector<psdf::ProcessId>> grid(options.stages);
  for (std::uint32_t rank = 0; rank < options.stages; ++rank) {
    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
      auto id = model.add_process(str_format("R%uL%u", rank, lane));
      if (!id.is_ok()) return id.status();
      grid[rank].push_back(*id);
    }
  }
  for (std::uint32_t rank = 0; rank + 1 < options.stages; ++rank) {
    const std::uint32_t stride = 1u << (rank % options.log2_width);
    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
      SEGBUS_RETURN_IF_ERROR(model.add_flow(grid[rank][lane],
                                            grid[rank + 1][lane],
                                            options.items_per_edge, rank + 1,
                                            options.compute_ticks));
      const std::uint32_t partner = lane ^ stride;
      SEGBUS_RETURN_IF_ERROR(model.add_flow(grid[rank][lane],
                                            grid[rank + 1][partner],
                                            options.items_per_edge, rank + 1,
                                            options.compute_ticks));
    }
  }
  return model;
}

Result<psdf::PsdfModel> synthetic_random(
    const RandomWorkloadOptions& options) {
  if (options.min_layers < 2 || options.max_layers < options.min_layers) {
    return invalid_argument_error("need max_layers >= min_layers >= 2");
  }
  if (options.min_width < 1 || options.max_width < options.min_width) {
    return invalid_argument_error("need max_width >= min_width >= 1");
  }
  Xoshiro256 rng(options.seed);
  psdf::PsdfModel model(str_format(
      "rand%llu", static_cast<unsigned long long>(options.seed)));
  SEGBUS_RETURN_IF_ERROR(model.set_package_size(options.package_size));

  const auto layers = static_cast<std::uint32_t>(
      rng.next_in(options.min_layers, options.max_layers));
  std::vector<std::vector<psdf::ProcessId>> members(layers);
  std::uint32_t counter = 0;
  for (std::uint32_t layer = 0; layer < layers; ++layer) {
    const auto width = static_cast<std::uint32_t>(
        rng.next_in(options.min_width, options.max_width));
    for (std::uint32_t i = 0; i < width; ++i) {
      auto id = model.add_process(str_format("P%u", counter++));
      if (!id.is_ok()) return id.status();
      members[layer].push_back(*id);
    }
  }
  for (std::uint32_t layer = 0; layer + 1 < layers; ++layer) {
    for (psdf::ProcessId source : members[layer]) {
      const auto& next = members[layer + 1];
      const std::size_t fanout =
          1 + rng.next_below(std::min<std::size_t>(next.size(), 2));
      for (std::size_t f = 0; f < fanout; ++f) {
        psdf::ProcessId target = next[rng.next_below(next.size())];
        auto items = static_cast<std::uint64_t>(
            rng.next_in(1, static_cast<std::int64_t>(options.max_items)));
        auto ticks = static_cast<std::uint64_t>(
            rng.next_in(0, static_cast<std::int64_t>(options.max_compute)));
        // Duplicate (source, target, ordering) triples are rejected;
        // fanout is best-effort, so ignore those.
        (void)model.add_flow(source, target, items, layer + 1, ticks);
      }
    }
  }
  return model;
}

}  // namespace segbus::apps
