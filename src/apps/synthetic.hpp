// Synthetic PSDF workload generators — the paper's future work ("more
// application models to be tested on the emulator platform") plus the
// randomized graphs the property tests sweep. All generators are
// deterministic for fixed parameters/seeds.
#pragma once

#include <cstdint>

#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::apps {

/// A linear pipeline: P0 -> P1 -> ... -> P(stages-1), one flow per hop,
/// stage k carrying ordering k.
struct PipelineOptions {
  std::uint32_t stages = 4;          ///< >= 2
  std::uint64_t items_per_hop = 720;
  std::uint64_t compute_ticks = 100; ///< C per package
  std::uint32_t package_size = 36;
};
Result<psdf::PsdfModel> synthetic_pipeline(const PipelineOptions& options);

/// Fork/join: one source fans out to `width` workers (ordering 1) which
/// all feed one sink (ordering 2).
struct ForkJoinOptions {
  std::uint32_t width = 4;           ///< >= 1
  std::uint64_t items_per_branch = 360;
  std::uint64_t compute_ticks = 80;
  std::uint32_t package_size = 36;
};
Result<psdf::PsdfModel> synthetic_fork_join(const ForkJoinOptions& options);

/// Butterfly (FFT-like) exchange: `2^log2_width` lanes over `stages`
/// ranks; at rank r, lane i sends to lanes i and i XOR 2^(r mod log2_width)
/// of the next rank. Heavy on cross-lane (and, once mapped, cross-segment)
/// traffic.
struct ButterflyOptions {
  std::uint32_t log2_width = 2;      ///< lanes = 2^log2_width (1..4)
  std::uint32_t stages = 3;          ///< ranks of computation (>= 2)
  std::uint64_t items_per_edge = 144;
  std::uint64_t compute_ticks = 60;
  std::uint32_t package_size = 36;
};
Result<psdf::PsdfModel> synthetic_butterfly(const ButterflyOptions& options);

/// Random layered DAG (always passes PSDF validation): every process in
/// layer L sends to >= 1 process of layer L+1 with ordering L+1.
struct RandomWorkloadOptions {
  std::uint64_t seed = 1;
  std::uint32_t min_layers = 2;
  std::uint32_t max_layers = 4;
  std::uint32_t min_width = 1;
  std::uint32_t max_width = 3;
  std::uint64_t max_items = 400;     ///< per flow, uniform in [1, max]
  std::uint64_t max_compute = 120;   ///< C per package, uniform in [0, max]
  std::uint32_t package_size = 36;
};
Result<psdf::PsdfModel> synthetic_random(
    const RandomWorkloadOptions& options);

}  // namespace segbus::apps
