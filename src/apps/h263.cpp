#include "apps/h263.hpp"

#include "place/apply.hpp"
#include "support/strings.hpp"

namespace segbus::apps {

namespace {

struct FlowSpec {
  const char* source;
  const char* target;
  std::uint64_t items;
  std::uint32_t ordering;
  std::uint64_t compute_ticks;  ///< at package size 36
};

// Index order also defines process ids.
constexpr const char* kProcesses[] = {
    "CAP", "PRE",                     // 0, 1
    "ME0", "ME1", "ME2", "ME3",       // 2..5
    "MC0", "MC1", "MC2", "MC3",       // 6..9
    "TQ0", "TQ1", "TQ2", "TQ3",       // 10..13
    "REC", "RC", "VLC", "PKT",        // 14..17
};
static_assert(sizeof(kProcesses) / sizeof(kProcesses[0]) ==
              kH263Processes);

constexpr std::uint64_t kBand = 6336;  // one row band of luma samples

constexpr FlowSpec kFlows[] = {
    {"CAP", "PRE", 4 * kBand, 1, 160},
    // Band distribution.
    {"PRE", "ME0", kBand, 2, 200}, {"PRE", "ME1", kBand, 2, 200},
    {"PRE", "ME2", kBand, 2, 200}, {"PRE", "ME3", kBand, 2, 200},
    // Motion estimation emits vectors (small) + passes pixels on.
    {"ME0", "MC0", kBand, 3, 420}, {"ME1", "MC1", kBand, 3, 420},
    {"ME2", "MC2", kBand, 3, 420}, {"ME3", "MC3", kBand, 3, 420},
    // Residuals to transform/quantize.
    {"MC0", "TQ0", kBand, 4, 260}, {"MC1", "TQ1", kBand, 4, 260},
    {"MC2", "TQ2", kBand, 4, 260}, {"MC3", "TQ3", kBand, 4, 260},
    // Rate-control summaries (tiny control flows).
    {"TQ0", "RC", 36, 5, 40}, {"TQ1", "RC", 36, 5, 40},
    {"TQ2", "RC", 36, 5, 40}, {"TQ3", "RC", 36, 5, 40},
    // Reconstruction loop and entropy coding.
    {"TQ0", "REC", kBand, 6, 180}, {"TQ1", "REC", kBand, 6, 180},
    {"TQ2", "REC", kBand, 6, 180}, {"TQ3", "REC", kBand, 6, 180},
    {"RC", "VLC", 36, 6, 60},
    {"REC", "VLC", 2 * kBand, 7, 220},  // coefficients after scan
    {"VLC", "PKT", kBand, 8, 240},      // ~2:1 entropy compression
};

constexpr std::uint64_t kFixedTicks = 30;

}  // namespace

Result<psdf::PsdfModel> h263_encoder_psdf(std::uint32_t package_size) {
  psdf::PsdfModel model("h263_encoder");
  SEGBUS_RETURN_IF_ERROR(model.set_package_size(36));
  for (const char* name : kProcesses) {
    auto added = model.add_process(name);
    if (!added.is_ok()) return added.status();
  }
  for (const FlowSpec& spec : kFlows) {
    SEGBUS_RETURN_IF_ERROR(model.add_flow(spec.source, spec.target,
                                          spec.items, spec.ordering,
                                          spec.compute_ticks));
  }
  if (package_size != 36) {
    return model.rescaled_for_package_size(package_size, kFixedTicks);
  }
  return model;
}

std::vector<std::uint32_t> h263_allocation(std::uint32_t num_segments) {
  std::vector<std::uint32_t> allocation(kH263Processes, 0);
  if (num_segments <= 1) return allocation;
  auto place = [&](const char* name, std::uint32_t segment) {
    for (std::uint32_t i = 0; i < kH263Processes; ++i) {
      if (std::string_view(kProcesses[i]) == name) {
        allocation[i] = segment;
        return;
      }
    }
  };
  if (num_segments == 2) {
    // Bands 0/1 with the front end on segment 1; bands 2/3 with the back
    // end on segment 2.
    for (const char* name : {"ME2", "ME3", "MC2", "MC3", "TQ2", "TQ3",
                             "REC", "RC", "VLC", "PKT"}) {
      place(name, 1);
    }
    return allocation;
  }
  // 4 segments: one band pipeline per segment; front end with band 0,
  // back end with band 3.
  for (std::uint32_t band = 0; band < 4; ++band) {
    place(str_format("ME%u", band).c_str(), band);
    place(str_format("MC%u", band).c_str(), band);
    place(str_format("TQ%u", band).c_str(), band);
  }
  for (const char* name : {"REC", "RC", "VLC", "PKT"}) place(name, 3);
  return allocation;
}

Result<platform::PlatformModel> h263_platform(
    const psdf::PsdfModel& application,
    const std::vector<std::uint32_t>& allocation,
    std::uint32_t num_segments, std::uint32_t package_size) {
  constexpr double kSegmentMhz[] = {91.0, 98.0, 89.0, 103.0};
  platform::PlatformModel platform(
      str_format("H263-%useg", num_segments));
  SEGBUS_RETURN_IF_ERROR(platform.set_package_size(package_size));
  SEGBUS_RETURN_IF_ERROR(
      platform.set_ca_clock(Frequency::from_mhz(111.0)));
  for (std::uint32_t s = 0; s < num_segments; ++s) {
    auto added = platform.add_segment(
        Frequency::from_mhz(kSegmentMhz[s % 4]));
    if (!added.is_ok()) return added.status();
  }
  SEGBUS_RETURN_IF_ERROR(
      place::apply_allocation(application, allocation, platform));
  return platform;
}

}  // namespace segbus::apps
