#include "apps/jpeg.hpp"

#include "place/apply.hpp"
#include "support/strings.hpp"

namespace segbus::apps {

namespace {

struct FlowSpec {
  const char* source;
  const char* target;
  std::uint64_t items;
  std::uint32_t ordering;
  std::uint64_t compute_ticks;  ///< at package size 36
};

// Process indices: 0 SRC, 1 CC, 2 SS, 3 DCTY, 4 DCTC, 5 QY, 6 QC,
// 7 ZZY, 8 ZZC, 9 HUFY+HUFC merged? No — 9 HUFY, 10 HUFC... plus MUX.
constexpr const char* kProcesses[] = {
    "SRC", "CC", "SS", "DCTY", "DCTC", "QY", "QC", "ZZY", "ZZC", "HUF",
    "MUX",
};
static_assert(sizeof(kProcesses) / sizeof(kProcesses[0]) == kJpegProcesses);

constexpr FlowSpec kFlows[] = {
    {"SRC", "CC", 12288, 1, 180},   // interleaved RGB tile
    {"CC", "SS", 12288, 2, 220},    // YCbCr planes
    {"SS", "DCTY", 4096, 3, 140},   // luma plane
    {"SS", "DCTC", 2048, 3, 140},   // both chroma planes, 4:2:0
    {"DCTY", "QY", 4096, 4, 300},   // DCT is the hot loop
    {"DCTC", "QC", 2048, 4, 300},
    {"QY", "ZZY", 4096, 5, 120},
    {"QC", "ZZC", 2048, 5, 120},
    {"ZZY", "HUF", 4096, 6, 90},
    {"ZZC", "HUF", 2048, 6, 90},
    {"HUF", "MUX", 3072, 7, 250},   // ~2:1 entropy compression
};

constexpr std::uint64_t kFixedTicks = 30;

}  // namespace

Result<psdf::PsdfModel> jpeg_encoder_psdf(std::uint32_t package_size) {
  psdf::PsdfModel model("jpeg_encoder");
  SEGBUS_RETURN_IF_ERROR(model.set_package_size(36));
  for (const char* name : kProcesses) {
    auto added = model.add_process(name);
    if (!added.is_ok()) return added.status();
  }
  for (const FlowSpec& spec : kFlows) {
    SEGBUS_RETURN_IF_ERROR(model.add_flow(spec.source, spec.target,
                                          spec.items, spec.ordering,
                                          spec.compute_ticks));
  }
  if (package_size != 36) {
    return model.rescaled_for_package_size(package_size, kFixedTicks);
  }
  return model;
}

std::vector<std::uint32_t> jpeg_allocation_two_segments() {
  // Luma chain on segment 1, front end + chroma chain + back end on 2.
  std::vector<std::uint32_t> allocation(kJpegProcesses, 1);
  auto place = [&](const char* name, std::uint32_t segment) {
    for (std::uint32_t i = 0; i < kJpegProcesses; ++i) {
      if (std::string_view(kProcesses[i]) == name) {
        allocation[i] = segment;
        return;
      }
    }
  };
  for (const char* name : {"DCTY", "QY", "ZZY", "HUF", "MUX"}) {
    place(name, 0);
  }
  return allocation;
}

Result<platform::PlatformModel> jpeg_platform(
    const psdf::PsdfModel& application,
    const std::vector<std::uint32_t>& allocation,
    std::uint32_t num_segments, std::uint32_t package_size) {
  constexpr double kSegmentMhz[] = {91.0, 98.0, 89.0};
  platform::PlatformModel platform(
      str_format("JPEG-%useg", num_segments));
  SEGBUS_RETURN_IF_ERROR(platform.set_package_size(package_size));
  SEGBUS_RETURN_IF_ERROR(
      platform.set_ca_clock(Frequency::from_mhz(111.0)));
  for (std::uint32_t s = 0; s < num_segments; ++s) {
    auto added = platform.add_segment(
        Frequency::from_mhz(kSegmentMhz[s % 3]));
    if (!added.is_ok()) return added.status();
  }
  SEGBUS_RETURN_IF_ERROR(
      place::apply_allocation(application, allocation, platform));
  return platform;
}

}  // namespace segbus::apps
