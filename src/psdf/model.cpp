#include "psdf/model.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace segbus::psdf {

std::uint64_t packages_for(std::uint64_t data_items,
                           std::uint32_t package_size) {
  if (package_size == 0) return 0;
  return (data_items + package_size - 1) / package_size;
}

Status PsdfModel::set_package_size(std::uint32_t size) {
  if (size == 0) {
    return invalid_argument_error("package size must be positive");
  }
  package_size_ = size;
  return Status::ok();
}

Result<ProcessId> PsdfModel::add_process(std::string name) {
  if (!is_identifier(name)) {
    return invalid_argument_error("process name '" + name +
                                  "' is not a valid identifier");
  }
  if (find_process(name)) {
    return already_exists_error("process '" + name + "' already exists");
  }
  auto id = static_cast<ProcessId>(processes_.size());
  processes_.push_back(Process{id, std::move(name)});
  return id;
}

std::optional<ProcessId> PsdfModel::find_process(
    std::string_view name) const {
  for (const Process& p : processes_) {
    if (p.name == name) return p.id;
  }
  return std::nullopt;
}

Result<ProcessId> PsdfModel::require_process(std::string_view name) const {
  if (auto id = find_process(name)) return *id;
  return not_found_error("no process named '" + std::string(name) + "'");
}

Status PsdfModel::add_flow(ProcessId source, ProcessId target,
                           std::uint64_t data_items, std::uint32_t ordering,
                           std::uint64_t compute_ticks) {
  if (source >= processes_.size()) {
    return invalid_argument_error("flow source process does not exist");
  }
  if (target >= processes_.size()) {
    return invalid_argument_error("flow target process does not exist");
  }
  if (source == target) {
    return invalid_argument_error("flow source and target must differ ('" +
                                  processes_[source].name + "')");
  }
  if (data_items == 0) {
    return invalid_argument_error("flow must carry at least one data item");
  }
  for (const Flow& f : flows_) {
    if (f.source == source && f.target == target && f.ordering == ordering) {
      return already_exists_error(str_format(
          "duplicate flow %s -> %s with ordering %u",
          processes_[source].name.c_str(), processes_[target].name.c_str(),
          ordering));
    }
  }
  flows_.push_back(Flow{source, target, data_items, ordering, compute_ticks});
  return Status::ok();
}

Status PsdfModel::add_flow(std::string_view source, std::string_view target,
                           std::uint64_t data_items, std::uint32_t ordering,
                           std::uint64_t compute_ticks) {
  SEGBUS_ASSIGN_OR_RETURN(ProcessId src, require_process(source));
  SEGBUS_ASSIGN_OR_RETURN(ProcessId dst, require_process(target));
  return add_flow(src, dst, data_items, ordering, compute_ticks);
}

std::vector<Flow> PsdfModel::scheduled_flows() const {
  std::vector<Flow> out = flows_;
  std::stable_sort(out.begin(), out.end(), [](const Flow& a, const Flow& b) {
    if (a.ordering != b.ordering) return a.ordering < b.ordering;
    if (a.source != b.source) return a.source < b.source;
    return a.target < b.target;
  });
  return out;
}

std::vector<Flow> PsdfModel::flows_from(ProcessId id) const {
  std::vector<Flow> out;
  for (const Flow& f : flows_) {
    if (f.source == id) out.push_back(f);
  }
  return out;
}

std::vector<Flow> PsdfModel::flows_into(ProcessId id) const {
  std::vector<Flow> out;
  for (const Flow& f : flows_) {
    if (f.target == id) out.push_back(f);
  }
  return out;
}

std::uint64_t PsdfModel::total_items(ProcessId source,
                                     ProcessId target) const {
  std::uint64_t sum = 0;
  for (const Flow& f : flows_) {
    if (f.source == source && f.target == target) sum += f.data_items;
  }
  return sum;
}

std::uint64_t PsdfModel::total_packages() const {
  std::uint64_t sum = 0;
  for (const Flow& f : flows_) sum += packages_for(f.data_items, package_size_);
  return sum;
}

std::uint32_t PsdfModel::max_ordering() const {
  std::uint32_t top = 0;
  for (const Flow& f : flows_) top = std::max(top, f.ordering);
  return top;
}

Result<PsdfModel> PsdfModel::rescaled_for_package_size(
    std::uint32_t new_package_size, std::uint64_t fixed_ticks) const {
  if (new_package_size == 0) {
    return invalid_argument_error("package size must be positive");
  }
  PsdfModel out = *this;
  out.package_size_ = new_package_size;
  if (new_package_size == package_size_) return out;
  for (Flow& f : out.flows_) {
    const std::uint64_t fixed = std::min(fixed_ticks, f.compute_ticks);
    const std::uint64_t variable = f.compute_ticks - fixed;
    // Variable part keeps ticks-per-item constant; the fixed part is paid
    // once per package regardless of size.
    const std::uint64_t scaled =
        fixed + (variable * new_package_size + package_size_ / 2) /
                    package_size_;
    f.compute_ticks = std::max<std::uint64_t>(scaled, 1);
  }
  return out;
}

}  // namespace segbus::psdf
