// The communication matrix — paper §3.5 / Figure 8.
//
// "The communication matrix is the specification of device-to-device
// transactions between application components. Each entity ... describes
// how many data items need to be transferred from one device to any other
// device. The emulator program builds the matrix by extracting transactions
// between processes in the PSDF model."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "psdf/model.hpp"
#include "support/status.hpp"

namespace segbus::psdf {

/// Square matrix of data-item counts, indexed [source][target].
class CommMatrix {
 public:
  CommMatrix() = default;
  explicit CommMatrix(std::size_t n) : n_(n), items_(n * n, 0) {}

  /// Builds the matrix from a PSDF model (one row/column per process, in
  /// process-id order).
  static CommMatrix from_model(const PsdfModel& model);

  std::size_t size() const noexcept { return n_; }

  std::uint64_t at(std::size_t source, std::size_t target) const {
    return items_.at(source * n_ + target);
  }
  void set(std::size_t source, std::size_t target, std::uint64_t items) {
    items_.at(source * n_ + target) = items;
  }
  void add(std::size_t source, std::size_t target, std::uint64_t items) {
    items_.at(source * n_ + target) += items;
  }

  /// Total items sent by `source` / received by `target` / overall.
  std::uint64_t row_sum(std::size_t source) const;
  std::uint64_t column_sum(std::size_t target) const;
  std::uint64_t total() const;

  /// Number of nonzero entries (distinct communicating pairs).
  std::size_t nonzero_count() const;

  /// Packages for one cell at package size `s` (ceil of items / s).
  std::uint64_t packages_at(std::size_t source, std::size_t target,
                            std::uint32_t package_size) const {
    return packages_for(at(source, target), package_size);
  }

  /// Renders the paper's Figure 8 layout (row/column headers P0..Pn).
  std::string render(const std::vector<std::string>& names) const;
  /// Renders with names derived from a model ("P0".. if sizes mismatch).
  std::string render(const PsdfModel& model) const;

  friend bool operator==(const CommMatrix&, const CommMatrix&) = default;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> items_;
};

}  // namespace segbus::psdf
