#include "psdf/dot.hpp"

#include "support/strings.hpp"

namespace segbus::psdf {

std::string to_dot(const PsdfModel& model, const DotOptions& options) {
  std::string out = "digraph \"" + model.name() + "\" {\n";
  if (options.left_to_right) out += "  rankdir=LR;\n";
  out += "  node [shape=circle];\n";
  for (const Process& p : model.processes()) {
    bool source = model.flows_into(p.id).empty();
    bool sink = model.flows_from(p.id).empty();
    out += "  \"" + p.name + "\"";
    if (source) {
      out += " [shape=doublecircle]";  // InitialNode stereotype
    } else if (sink) {
      out += " [shape=doubleoctagon]";  // FinalNode stereotype
    }
    out += ";\n";
  }
  for (const Flow& f : model.scheduled_flows()) {
    out += "  \"" + model.process(f.source).name + "\" -> \"" +
           model.process(f.target).name + "\"";
    if (options.edge_labels) {
      out += str_format(" [label=\"%llu/%u/%llu\"]",
                        static_cast<unsigned long long>(f.data_items),
                        f.ordering,
                        static_cast<unsigned long long>(f.compute_ticks));
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace segbus::psdf
