// PSDF model validation.
//
// Mirrors the DSL's OCL constraint checking (paper §2.2): breaches are
// reported as a list of diagnostics naming the offending element, so a
// designer can "take proper action to make the model correct".
#pragma once

#include "psdf/model.hpp"
#include "support/diag.hpp"
#include "support/status.hpp"

namespace segbus::psdf {

/// Checks the structural constraints of a PSDF model. All checks run in a
/// single pass — the report lists every violation, not just the first.
/// Diagnostics carry the stable SB0xx catalogue codes (see
/// analysis/diagnostics.hpp and docs/ANALYSIS.md):
///   SB001  psdf.nonempty          — at least one process
///   SB002  psdf.flow.some         — at least one flow (warning if none)
///   SB003  psdf.flow.ordering     — every outgoing flow of a process is
///                                   ordered strictly after all of its
///                                   incoming flows (data must exist before
///                                   it is processed)
///   SB004  psdf.flow.acyclic      — dependency graph has no cycles
///   SB005  psdf.flow.reachable    — every process participates in some
///                                   flow (warning for isolated processes)
///   SB006  psdf.compute.positive  — C > 0 for every flow (warning on zero)
/// Deeper model lint (ordering-tier gaps, in-tier cycles, token balance)
/// lives in analysis/lint.hpp.
ValidationReport validate(const PsdfModel& model);

/// Convenience: OK status or a ValidationError carrying the rendered report.
Status validate_or_error(const PsdfModel& model);

}  // namespace segbus::psdf
