// PSDF model validation.
//
// Mirrors the DSL's OCL constraint checking (paper §2.2): breaches are
// reported as a list of diagnostics naming the offending element, so a
// designer can "take proper action to make the model correct".
#pragma once

#include "psdf/model.hpp"
#include "support/diag.hpp"
#include "support/status.hpp"

namespace segbus::psdf {

/// Checks the structural constraints of a PSDF model:
///   psdf.nonempty          — at least one process
///   psdf.flow.some         — at least one flow (warning if none)
///   psdf.flow.ordering     — every outgoing flow of a process is ordered
///                            strictly after all of its incoming flows
///                            (data must exist before it is processed)
///   psdf.flow.reachable    — every process participates in some flow
///                            (warning for isolated processes)
///   psdf.flow.acyclic      — dependency graph has no cycles
///   psdf.compute.positive  — C > 0 for every flow (warning on zero)
ValidationReport validate(const PsdfModel& model);

/// Convenience: OK status or a ValidationError carrying the rendered report.
Status validate_or_error(const PsdfModel& model);

}  // namespace segbus::psdf
