// Multi-mode PSDF applications — ROADMAP item 4a, after Jung/Oh/Ha's
// multi-mode dataflow graphs with mode-transition delay (PAPERS.md).
//
// A ModeTable augments a PSDF application with named operating modes. Each
// mode selects a subset of the application's flows (by index into
// PsdfModel::flows(), i.e. insertion order) and may override the selected
// flows' D (data items) and C (compute ticks) values — e.g. an MP3 player
// whose "seek" mode moves fewer frames per flow than "play". A designated
// mode-control process models the actor that decides switches at runtime;
// the emulator charges a configurable transition delay between consecutive
// modes of a schedule.
//
// Estimation runs a *mode schedule* (a seeded sequence of mode indices) as
// chained engine sessions: each mode's flow subset is extracted into a
// standalone PSDF model (mode_model), emulated on a platform pruned to the
// processes that mode uses, and the per-mode TCTs plus transition delays
// sum to the schedule's total (stoch/multimode.hpp).
//
// Validity: any mode whose flow subset is non-empty yields a valid model —
// SB003 (outgoing after incoming ordering) and SB004 (acyclicity) are
// universally quantified over flows, so they survive taking subsets, and
// processes untouched by the subset are dropped so SB005 stays clean.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "psdf/model.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace segbus::psdf {

/// Per-mode override of one selected flow's workload parameters. The flow
/// keeps its endpoints and ordering; only the scalars change.
struct FlowOverride {
  std::size_t flow_index = 0;  ///< index into the parent model's flows()
  std::optional<std::uint64_t> data_items;     ///< D override (> 0)
  std::optional<std::uint64_t> compute_ticks;  ///< C override

  friend bool operator==(const FlowOverride&, const FlowOverride&) = default;
};

/// One named operating mode: a flow subset plus optional overrides.
struct Mode {
  std::string name;
  std::vector<std::size_t> flow_indices;  ///< subset of parent flows
  std::vector<FlowOverride> overrides;    ///< each must target a member of
                                          ///< flow_indices

  friend bool operator==(const Mode&, const Mode&) = default;
};

/// The mode table attached to an application.
class ModeTable {
 public:
  /// Process (by name) that decides mode switches at runtime. Purely
  /// declarative for estimation — schedules are drawn up front — but
  /// validated to exist so models stay honest.
  const std::string& control_process() const noexcept { return control_; }
  void set_control_process(std::string name) { control_ = std::move(name); }

  /// Delay charged between consecutive schedule entries (mode flush +
  /// reconfiguration, cf. Jung/Oh/Ha's transition delay).
  Picoseconds transition_delay() const noexcept { return transition_delay_; }
  void set_transition_delay(Picoseconds delay) { transition_delay_ = delay; }

  /// Adds a mode; names must be unique non-empty, flow subset non-empty.
  /// Structural checks against a concrete model happen in validate().
  Result<std::size_t> add_mode(Mode mode);

  const std::vector<Mode>& modes() const noexcept { return modes_; }
  const Mode& mode(std::size_t index) const { return modes_.at(index); }
  std::optional<std::size_t> find_mode(std::string_view name) const;

  /// Checks the table against its application: at least one mode, control
  /// process exists, every flow index in range, overrides target selected
  /// flows with D > 0, transition delay >= 0.
  Status validate(const PsdfModel& model) const;

  /// Extracts mode `index` of `model` as a standalone valid PSDF model:
  /// the selected flows (with overrides applied) plus exactly the
  /// processes they touch, renumbered contiguously. The result's name is
  /// "<model>:<mode>".
  Result<PsdfModel> mode_model(const PsdfModel& model,
                               std::size_t index) const;

  /// Seeded mode-switch schedule of `length` entries drawn uniformly over
  /// the modes via the "modes/schedule" substream — deterministic for a
  /// fixed (seed, length, mode count). Empty when the table has no modes.
  std::vector<std::size_t> generate_schedule(std::uint64_t seed,
                                             std::size_t length) const;

  friend bool operator==(const ModeTable&, const ModeTable&) = default;

 private:
  std::string control_;
  Picoseconds transition_delay_{0};
  std::vector<Mode> modes_;
};

/// XML codec, mirroring psdf_xml.hpp's scheme style:
///   <modes control="P0" transition_delay_ps="1000">
///      <mode name="play">
///         <flow index="0"/>
///         <flow index="2" items="576" compute="250"/>
///      </mode>
///   </modes>
std::string modes_to_xml(const ModeTable& table);
Result<ModeTable> modes_from_xml(std::string_view xml_text);

}  // namespace segbus::psdf
