// Graphviz DOT export of a PSDF graph (the paper's Figure 7 rendering).
#pragma once

#include <string>

#include "psdf/model.hpp"

namespace segbus::psdf {

/// Options for DOT rendering.
struct DotOptions {
  /// Label edges with "D items / T / C ticks".
  bool edge_labels = true;
  /// Left-to-right layout (rankdir=LR).
  bool left_to_right = true;
};

/// Renders the model as a DOT digraph.
std::string to_dot(const PsdfModel& model, const DotOptions& options = {});

}  // namespace segbus::psdf
