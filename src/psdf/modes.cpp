#include "psdf/modes.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "support/rng.hpp"
#include "support/strings.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace segbus::psdf {

Result<std::size_t> ModeTable::add_mode(Mode mode) {
  if (mode.name.empty()) {
    return invalid_argument_error("mode name must be non-empty");
  }
  if (find_mode(mode.name).has_value()) {
    return already_exists_error("duplicate mode name '" + mode.name + "'");
  }
  if (mode.flow_indices.empty()) {
    return invalid_argument_error("mode '" + mode.name +
                                  "' selects no flows");
  }
  std::set<std::size_t> unique(mode.flow_indices.begin(),
                              mode.flow_indices.end());
  if (unique.size() != mode.flow_indices.size()) {
    return invalid_argument_error("mode '" + mode.name +
                                  "' selects a flow more than once");
  }
  modes_.push_back(std::move(mode));
  return modes_.size() - 1;
}

std::optional<std::size_t> ModeTable::find_mode(std::string_view name) const {
  for (std::size_t i = 0; i < modes_.size(); ++i) {
    if (modes_[i].name == name) return i;
  }
  return std::nullopt;
}

Status ModeTable::validate(const PsdfModel& model) const {
  if (modes_.empty()) {
    return validation_error("mode table has no modes");
  }
  if (control_.empty()) {
    return validation_error("mode table has no control process");
  }
  if (!model.find_process(control_).has_value()) {
    return validation_error("mode-control process '" + control_ +
                            "' does not exist in application '" +
                            model.name() + "'");
  }
  if (transition_delay_.count() < 0) {
    return validation_error("mode-transition delay must be >= 0");
  }
  for (const Mode& mode : modes_) {
    for (std::size_t index : mode.flow_indices) {
      if (index >= model.flows().size()) {
        return validation_error(str_format(
            "mode '%s' selects flow %zu but application '%s' has %zu flows",
            mode.name.c_str(), index, model.name().c_str(),
            model.flows().size()));
      }
    }
    for (const FlowOverride& override : mode.overrides) {
      const bool selected =
          std::find(mode.flow_indices.begin(), mode.flow_indices.end(),
                    override.flow_index) != mode.flow_indices.end();
      if (!selected) {
        return validation_error(str_format(
            "mode '%s' overrides flow %zu which it does not select",
            mode.name.c_str(), override.flow_index));
      }
      if (override.data_items.has_value() && *override.data_items == 0) {
        return validation_error(str_format(
            "mode '%s' overrides flow %zu with zero data items",
            mode.name.c_str(), override.flow_index));
      }
    }
  }
  return Status::ok();
}

Result<PsdfModel> ModeTable::mode_model(const PsdfModel& model,
                                        std::size_t index) const {
  if (index >= modes_.size()) {
    return invalid_argument_error(
        str_format("mode index %zu out of range (%zu modes)", index,
                   modes_.size()));
  }
  SEGBUS_RETURN_IF_ERROR(validate(model));
  const Mode& mode = modes_[index];

  // Selected flows in parent insertion order, with overrides applied.
  std::vector<std::size_t> selected = mode.flow_indices;
  std::sort(selected.begin(), selected.end());
  std::vector<Flow> flows;
  flows.reserve(selected.size());
  for (std::size_t flow_index : selected) {
    Flow flow = model.flows()[flow_index];
    for (const FlowOverride& override : mode.overrides) {
      if (override.flow_index != flow_index) continue;
      if (override.data_items.has_value()) flow.data_items = *override.data_items;
      if (override.compute_ticks.has_value()) {
        flow.compute_ticks = *override.compute_ticks;
      }
    }
    flows.push_back(flow);
  }

  // Keep exactly the processes the subset touches, in original id order —
  // contiguous renumbering preserves the arbiters' round-robin order.
  std::vector<bool> keep(model.process_count(), false);
  for (const Flow& flow : flows) {
    keep[flow.source] = true;
    keep[flow.target] = true;
  }
  PsdfModel result(model.name() + ":" + mode.name);
  SEGBUS_RETURN_IF_ERROR(result.set_package_size(model.package_size()));
  std::vector<ProcessId> remap(model.process_count(), kInvalidProcess);
  for (std::size_t p = 0; p < model.process_count(); ++p) {
    if (!keep[p]) continue;
    SEGBUS_ASSIGN_OR_RETURN(
        ProcessId id,
        result.add_process(model.process(static_cast<ProcessId>(p)).name));
    remap[p] = id;
  }
  for (const Flow& flow : flows) {
    SEGBUS_RETURN_IF_ERROR(result.add_flow(remap[flow.source],
                                           remap[flow.target], flow.data_items,
                                           flow.ordering, flow.compute_ticks));
  }
  return result;
}

std::vector<std::size_t> ModeTable::generate_schedule(
    std::uint64_t seed, std::size_t length) const {
  std::vector<std::size_t> schedule;
  if (modes_.empty()) return schedule;
  Xoshiro256 rng = substream(seed, "modes/schedule");
  schedule.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    schedule.push_back(
        static_cast<std::size_t>(rng.next_below(modes_.size())));
  }
  return schedule;
}

std::string modes_to_xml(const ModeTable& table) {
  xml::Document document;
  xml::Element& root = document.root();
  root.set_name("modes");
  root.set_attribute("control", table.control_process());
  root.set_attribute(
      "transition_delay_ps",
      str_format("%lld",
                 static_cast<long long>(table.transition_delay().count())));
  for (const Mode& mode : table.modes()) {
    xml::Element& mode_element = root.add_child("mode");
    mode_element.set_attribute("name", mode.name);
    for (std::size_t flow_index : mode.flow_indices) {
      xml::Element& flow_element = mode_element.add_child("flow");
      flow_element.set_attribute("index", str_format("%zu", flow_index));
      for (const FlowOverride& override : mode.overrides) {
        if (override.flow_index != flow_index) continue;
        if (override.data_items.has_value()) {
          flow_element.set_attribute(
              "items",
              str_format("%llu",
                         static_cast<unsigned long long>(*override.data_items)));
        }
        if (override.compute_ticks.has_value()) {
          flow_element.set_attribute(
              "compute",
              str_format(
                  "%llu",
                  static_cast<unsigned long long>(*override.compute_ticks)));
        }
      }
    }
  }
  return xml::write_document(document);
}

Result<ModeTable> modes_from_xml(std::string_view xml_text) {
  SEGBUS_ASSIGN_OR_RETURN(xml::Document document,
                          xml::parse_document(xml_text));
  const xml::Element& root = document.root();
  if (root.local_name() != "modes") {
    return parse_error("mode table root element must be <modes>, got <" +
                       root.name() + ">");
  }
  ModeTable table;
  table.set_control_process(root.attribute_or("control", ""));
  SEGBUS_ASSIGN_OR_RETURN(std::string delay_text,
                          root.require_attribute("transition_delay_ps"));
  SEGBUS_ASSIGN_OR_RETURN(
      std::int64_t delay,
      parse_int_or_error(delay_text, "mode-transition delay"));
  table.set_transition_delay(Picoseconds(delay));
  for (const xml::Element* mode_element : root.children_local("mode")) {
    Mode mode;
    SEGBUS_ASSIGN_OR_RETURN(mode.name,
                            mode_element->require_attribute("name"));
    for (const xml::Element* flow_element :
         mode_element->children_local("flow")) {
      SEGBUS_ASSIGN_OR_RETURN(std::string index_text,
                              flow_element->require_attribute("index"));
      SEGBUS_ASSIGN_OR_RETURN(
          std::uint64_t index,
          parse_uint_or_error(index_text, "mode flow index"));
      mode.flow_indices.push_back(static_cast<std::size_t>(index));
      FlowOverride override;
      override.flow_index = static_cast<std::size_t>(index);
      bool has_override = false;
      if (auto items = flow_element->attribute("items"); items.has_value()) {
        SEGBUS_ASSIGN_OR_RETURN(
            std::uint64_t value,
            parse_uint_or_error(*items, "mode flow items override"));
        override.data_items = value;
        has_override = true;
      }
      if (auto compute = flow_element->attribute("compute");
          compute.has_value()) {
        SEGBUS_ASSIGN_OR_RETURN(
            std::uint64_t value,
            parse_uint_or_error(*compute, "mode flow compute override"));
        override.compute_ticks = value;
        has_override = true;
      }
      if (has_override) mode.overrides.push_back(override);
    }
    SEGBUS_RETURN_IF_ERROR(table.add_mode(std::move(mode)).status());
  }
  return table;
}

}  // namespace segbus::psdf
