#include "psdf/comm_matrix.hpp"

#include <numeric>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace segbus::psdf {

CommMatrix CommMatrix::from_model(const PsdfModel& model) {
  CommMatrix matrix(model.process_count());
  for (const Flow& flow : model.flows()) {
    matrix.add(flow.source, flow.target, flow.data_items);
  }
  return matrix;
}

std::uint64_t CommMatrix::row_sum(std::size_t source) const {
  std::uint64_t sum = 0;
  for (std::size_t t = 0; t < n_; ++t) sum += at(source, t);
  return sum;
}

std::uint64_t CommMatrix::column_sum(std::size_t target) const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < n_; ++s) sum += at(s, target);
  return sum;
}

std::uint64_t CommMatrix::total() const {
  return std::accumulate(items_.begin(), items_.end(), std::uint64_t{0});
}

std::size_t CommMatrix::nonzero_count() const {
  std::size_t count = 0;
  for (std::uint64_t v : items_) {
    if (v != 0) ++count;
  }
  return count;
}

std::string CommMatrix::render(const std::vector<std::string>& names) const {
  Table table;
  std::vector<std::string> header = {""};
  for (std::size_t i = 0; i < n_; ++i) {
    header.push_back(i < names.size() ? names[i]
                                      : str_format("P%zu", i));
  }
  table.set_header(std::move(header));
  for (std::size_t s = 0; s < n_; ++s) {
    std::vector<std::string> row;
    row.push_back(s < names.size() ? names[s] : str_format("P%zu", s));
    for (std::size_t t = 0; t < n_; ++t) {
      row.push_back(str_format("%llu",
                               static_cast<unsigned long long>(at(s, t))));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string CommMatrix::render(const PsdfModel& model) const {
  std::vector<std::string> names;
  if (model.process_count() == n_) {
    names.reserve(n_);
    for (const Process& p : model.processes()) names.push_back(p.name);
  }
  return render(names);
}

}  // namespace segbus::psdf
