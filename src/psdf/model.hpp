// Packet Synchronous Data Flow (PSDF) application model — paper §3.1.
//
// A PSDF is a set of processes and packet flows. A flow is the tuple
// (Pt, D, T, C): target process, number of data items, relative ordering
// number, and the clock ticks the source consumes before sending one
// package. Data items are packetized at emulation time according to the
// platform's package size `s` (D items -> ceil(D/s) packages).
//
// The paper specifies C per package *at the configured package size*; the
// package-size experiments (36 vs 18 items) keep the computation-per-item
// constant, so the model records the package size its C values refer to and
// `rescaled_for_package_size()` converts (C=250 @ s=36 -> C=125 @ s=18).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace segbus::psdf {

/// Index of a process within a PsdfModel.
using ProcessId = std::uint32_t;

/// Sentinel for "no process".
inline constexpr ProcessId kInvalidProcess = 0xFFFFFFFFu;

/// An application process (an actor in the dataflow graph). Realized at
/// emulation time by a Functional Unit.
struct Process {
  ProcessId id = kInvalidProcess;
  std::string name;  ///< e.g. "P0"; unique within the model
};

/// A packet flow (Pt, D, T, C) from `source` to `target`.
struct Flow {
  ProcessId source = kInvalidProcess;
  ProcessId target = kInvalidProcess;
  std::uint64_t data_items = 0;     ///< D: items emitted over the flow's life
  std::uint32_t ordering = 0;       ///< T: relative ordering number
  std::uint64_t compute_ticks = 0;  ///< C: source ticks per package

  friend bool operator==(const Flow&, const Flow&) = default;
};

/// Number of packages a flow produces at package size `s` (ceil(D/s)).
/// Precondition: package_size > 0.
std::uint64_t packages_for(std::uint64_t data_items,
                           std::uint32_t package_size);

/// The PSDF model of one application.
class PsdfModel {
 public:
  PsdfModel() = default;
  explicit PsdfModel(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Package size (data items per package) the flow C values refer to.
  std::uint32_t package_size() const noexcept { return package_size_; }
  Status set_package_size(std::uint32_t size);

  // --- processes ------------------------------------------------------
  /// Adds a process; names must be unique non-empty identifiers.
  Result<ProcessId> add_process(std::string name);
  std::size_t process_count() const noexcept { return processes_.size(); }
  const std::vector<Process>& processes() const noexcept {
    return processes_;
  }
  const Process& process(ProcessId id) const { return processes_.at(id); }
  /// Finds a process by name; nullopt when absent.
  std::optional<ProcessId> find_process(std::string_view name) const;
  Result<ProcessId> require_process(std::string_view name) const;

  // --- flows ------------------------------------------------------------
  /// Adds a flow; both endpoints must exist, source != target, D > 0.
  /// Duplicate (source, target, ordering) triples are rejected.
  Status add_flow(ProcessId source, ProcessId target, std::uint64_t data_items,
                  std::uint32_t ordering, std::uint64_t compute_ticks);
  /// Name-based convenience overload.
  Status add_flow(std::string_view source, std::string_view target,
                  std::uint64_t data_items, std::uint32_t ordering,
                  std::uint64_t compute_ticks);
  const std::vector<Flow>& flows() const noexcept { return flows_; }
  /// Flows sorted by (ordering, source, target) — the application schedule
  /// the arbiters implement.
  std::vector<Flow> scheduled_flows() const;
  /// Flows whose source is `id`, in insertion order.
  std::vector<Flow> flows_from(ProcessId id) const;
  /// Flows whose target is `id`, in insertion order.
  std::vector<Flow> flows_into(ProcessId id) const;

  /// Total data items sent from `source` to `target` over all flows.
  std::uint64_t total_items(ProcessId source, ProcessId target) const;

  /// Sum of packages over all flows at this model's package size.
  std::uint64_t total_packages() const;

  /// Highest ordering number used (0 when there are no flows).
  std::uint32_t max_ordering() const;

  /// A copy of the model with C values rescaled to a new package size.
  /// `fixed_ticks` is the per-package component of C that does not scale
  /// with the number of items (package header/setup cost); the remainder
  /// scales proportionally: C' = fixed + round((C - fixed) * s' / s),
  /// clamped to at least 1. With the default fixed_ticks = 0 the compute
  /// cost per data item stays constant (C=250 @ s=36 -> C=125 @ s=18).
  Result<PsdfModel> rescaled_for_package_size(
      std::uint32_t new_package_size, std::uint64_t fixed_ticks = 0) const;

 private:
  std::string name_ = "psdf";
  std::uint32_t package_size_ = 36;
  std::vector<Process> processes_;
  std::vector<Flow> flows_;
};

}  // namespace segbus::psdf
